//! End-to-end observability: recorded simulator runs round-trip through
//! the JSONL log format, carry causally consistent vector clocks, and
//! export valid Chrome `trace_event` JSON.

use predicate_control::deposet::generator::{cs_workload, CsConfig};
use predicate_control::obs::{chrome, jsonl, stats::EventStats, timeline};
use predicate_control::prelude::*;

fn recorded_kmutex_run() -> Vec<Event> {
    let cfg = WorkloadConfig {
        processes: 4,
        entries_per_process: 4,
        seed: 3,
        ..Default::default()
    };
    let r = run_antitoken_recorded(
        &cfg,
        pctl_core::online::PeerSelect::NextInRing,
        Box::new(RingRecorder::new(1 << 18)),
    );
    assert!(!r.deadlocked());
    let events = r.events();
    assert!(!events.is_empty(), "recorded run must produce telemetry");
    events
}

#[test]
fn recorded_run_round_trips_through_jsonl() {
    let events = recorded_kmutex_run();
    let text = jsonl::to_jsonl(&events);
    let parsed = jsonl::parse(&text).expect("own output parses");
    assert_eq!(events, parsed);
}

#[test]
fn vector_clocks_are_monotone_per_lane_and_tick_on_own_component() {
    let events = recorded_kmutex_run();
    let mut last: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    let mut clocked = 0usize;
    for ev in &events {
        let Some(clock) = &ev.clock else { continue };
        clocked += 1;
        if let Some(prev) = last.get(&ev.lane) {
            assert_eq!(prev.len(), clock.len());
            assert!(
                prev.iter().zip(clock).all(|(a, b)| a <= b),
                "lane {} clock went backwards: {prev:?} -> {clock:?}",
                ev.lane
            );
            // The lane's own component strictly advances whenever the clock
            // changes at all.
            if prev != clock {
                assert!(
                    prev[ev.lane as usize] < clock[ev.lane as usize],
                    "lane {} advanced without ticking its own component",
                    ev.lane
                );
            }
        }
        last.insert(ev.lane, clock.clone());
    }
    assert!(clocked > 0, "simulator events must carry vector clocks");
}

#[test]
fn message_sends_happen_before_their_receives() {
    let events = recorded_kmutex_run();
    let mut sends: std::collections::BTreeMap<u64, &Event> = Default::default();
    let mut matched = 0usize;
    for ev in &events {
        match ev.kind {
            EventKind::MsgSend { id, .. } => {
                sends.insert(id, ev);
            }
            EventKind::MsgRecv { id, .. } => {
                let send = sends[&id];
                matched += 1;
                assert!(send.ts <= ev.ts, "recv before its send");
                let (sc, rc) = (send.clock.as_ref().unwrap(), ev.clock.as_ref().unwrap());
                // The receive's clock dominates the send's (merge + tick).
                assert!(
                    sc.iter().zip(rc).all(|(a, b)| a <= b) && sc != rc,
                    "flow {id}: send clock {sc:?} not < recv clock {rc:?}"
                );
            }
            _ => {}
        }
    }
    assert!(matched > 0, "the protocol exchanged control messages");
}

#[test]
fn recorded_replay_exports_valid_chrome_trace() {
    // The acceptance path: a k-mutex style trace, controlled, replayed
    // with a recorder, exported — the Chrome JSON must validate.
    let dep = cs_workload(
        &CsConfig {
            processes: 3,
            sections_per_process: 4,
            max_cs_len: 3,
            max_gap_len: 3,
        },
        11,
    );
    let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
    let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).expect("feasible");
    let out = replay_recorded(
        &dep,
        &rel,
        &ReplayConfig::default(),
        Box::new(RingRecorder::new(1 << 18)),
    );
    assert!(out.completed() && out.fidelity(&dep));
    let events = out.sim.events();
    let json = chrome::chrome_trace(&events, &timeline::lane_names(&dep));
    chrome::validate_chrome_trace(&json).expect("replay telemetry renders as valid Chrome trace");
}

#[test]
fn deposet_timeline_exports_valid_chrome_trace_with_control_arrows() {
    let dep = cs_workload(
        &CsConfig {
            processes: 3,
            sections_per_process: 3,
            max_cs_len: 2,
            max_gap_len: 2,
        },
        5,
    );
    let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
    let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).expect("feasible");
    let events = timeline::deposet_events(&dep, rel.pairs());
    let json = chrome::chrome_trace(&events, &timeline::lane_names(&dep));
    chrome::validate_chrome_trace(&json).expect("deposet timeline renders as valid Chrome trace");
}

#[test]
fn event_stats_summarize_spans_and_latencies() {
    let events = recorded_kmutex_run();
    let stats = EventStats::from_events(&events);
    assert!(
        stats.span_durations.contains_key("cs"),
        "driver cs spans recorded: {:?}",
        stats.span_durations.keys().collect::<Vec<_>>()
    );
    assert_eq!(stats.open_spans, 0, "a quiescent run closes every span");
    assert_eq!(stats.unmatched_sends, 0, "reliable channels: no lost sends");
    assert!(stats.msg_latencies.values().any(|v| !v.is_empty()));
    let report = stats.report();
    assert!(report.contains("events by kind"));
}

#[test]
fn ft_run_records_fault_and_recovery_telemetry() {
    let cfg = WorkloadConfig {
        processes: 3,
        entries_per_process: 3,
        seed: 1,
        ..Default::default()
    };
    let plan = FaultPlan::none().with_crash(
        predicate_control::deposet::ProcessId(0),
        SimTime(25),
        Some(200),
    );
    let r = run_ft_antitoken_recorded(
        &cfg,
        pctl_core::online::PeerSelect::NextInRing,
        FtParams::default(),
        plan,
        Box::new(RingRecorder::new(1 << 18)),
    );
    assert!(!r.deadlocked());
    let events = r.events();
    let names: std::collections::BTreeSet<&str> = events.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains("crash"), "crash instant recorded: {names:?}");
    assert!(
        names.contains("rejoin"),
        "rejoin instant recorded: {names:?}"
    );
}

/// One HTTP GET against a `/metrics` endpoint, returning (status line,
/// body). Plain `TcpStream`, like curl would do.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let request = format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut resp = String::new();
    stream.read_to_string(&mut resp).expect("read response");
    let status = resp.lines().next().unwrap_or("").to_owned();
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// The faulty_mutex example's `--metrics` path, driven through the same
/// library APIs: run the hardened workload with live publishing, then GET
/// /metrics and parse the exposition.
#[test]
fn live_metrics_endpoint_serves_parseable_prometheus_exposition() {
    use predicate_control::obs::prom::{validate_exposition, MetricsServer};

    let live = LiveMetrics::new();
    let srv = MetricsServer::spawn("127.0.0.1:0", live.renderer()).expect("bind");
    let addr = srv.local_addr();

    let cfg = WorkloadConfig {
        processes: 4,
        entries_per_process: 6,
        think: (20, 60),
        cs: (5, 15),
        seed: 3,
        delay: 10,
    };
    let plan = FaultPlan::uniform_loss(0.05)
        .with_partition(SimTime(120), SimTime(200), vec![ProcessId(1)])
        .with_crash(ProcessId(0), SimTime(25), Some(350));
    let r = run_ft_antitoken_with(
        &cfg,
        pctl_core::online::PeerSelect::NextInRing,
        FtParams::default(),
        plan,
        Box::new(NullRecorder),
        Some((live.clone(), 16)),
    );
    assert!(!r.deadlocked());

    // The endpoint serves whatever the simulation last published (its
    // final registry at minimum), in valid text exposition format 0.0.4.
    let (status, body) = http_get(addr, "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    let samples = validate_exposition(&body).expect("parseable exposition");
    assert!(samples > 0);
    assert!(
        body.contains("pctl_sim_entries_total 24"),
        "final entry count exposed:\n{body}"
    );
    assert!(
        body.contains("# TYPE pctl_sim_entries_total counter"),
        "{body}"
    );
    // Fault counters from the faulty run appear too.
    assert!(body.contains("pctl_sim_crashes_total"), "{body}");

    // Unknown paths 404 without killing the server.
    let (status, _) = http_get(addr, "/other");
    assert!(status.starts_with("HTTP/1.1 404"), "{status}");
    let (status, _) = http_get(addr, "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");

    srv.shutdown();
}

/// The same cell, read mid-run: publishing every few events means the cell
/// is non-empty long before the run finishes, so an in-flight scrape sees
/// a monotonically-growing registry rather than nothing.
#[test]
fn live_metrics_cell_is_populated_during_the_run_not_only_at_the_end() {
    let live = LiveMetrics::new();
    assert!(live.read().is_empty(), "nothing published before the run");
    let cfg = WorkloadConfig {
        processes: 3,
        entries_per_process: 2,
        seed: 7,
        ..Default::default()
    };
    let r = run_ft_antitoken_with(
        &cfg,
        pctl_core::online::PeerSelect::NextInRing,
        FtParams::default(),
        FaultPlan::none(),
        Box::new(NullRecorder),
        Some((live.clone(), 1)),
    );
    assert!(!r.deadlocked());
    let text = live.read();
    assert!(!text.is_empty());
    // Live publishing must not have perturbed the run: same metrics as an
    // unpublished run of the same seed.
    let r2 = run_ft_antitoken(
        &cfg,
        pctl_core::online::PeerSelect::NextInRing,
        FtParams::default(),
        FaultPlan::none(),
    );
    assert_eq!(
        serde_json::to_string(&r.metrics).unwrap(),
        serde_json::to_string(&r2.metrics).unwrap(),
        "live publishing is observational"
    );
}
