//! End-to-end observability: recorded simulator runs round-trip through
//! the JSONL log format, carry causally consistent vector clocks, and
//! export valid Chrome `trace_event` JSON.

use predicate_control::deposet::generator::{cs_workload, CsConfig};
use predicate_control::obs::{chrome, jsonl, stats::EventStats, timeline};
use predicate_control::prelude::*;

fn recorded_kmutex_run() -> Vec<Event> {
    let cfg = WorkloadConfig {
        processes: 4,
        entries_per_process: 4,
        seed: 3,
        ..Default::default()
    };
    let r = run_antitoken_recorded(
        &cfg,
        pctl_core::online::PeerSelect::NextInRing,
        Box::new(RingRecorder::new(1 << 18)),
    );
    assert!(!r.deadlocked());
    let events = r.events();
    assert!(!events.is_empty(), "recorded run must produce telemetry");
    events
}

#[test]
fn recorded_run_round_trips_through_jsonl() {
    let events = recorded_kmutex_run();
    let text = jsonl::to_jsonl(&events);
    let parsed = jsonl::parse(&text).expect("own output parses");
    assert_eq!(events, parsed);
}

#[test]
fn vector_clocks_are_monotone_per_lane_and_tick_on_own_component() {
    let events = recorded_kmutex_run();
    let mut last: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    let mut clocked = 0usize;
    for ev in &events {
        let Some(clock) = &ev.clock else { continue };
        clocked += 1;
        if let Some(prev) = last.get(&ev.lane) {
            assert_eq!(prev.len(), clock.len());
            assert!(
                prev.iter().zip(clock).all(|(a, b)| a <= b),
                "lane {} clock went backwards: {prev:?} -> {clock:?}",
                ev.lane
            );
            // The lane's own component strictly advances whenever the clock
            // changes at all.
            if prev != clock {
                assert!(
                    prev[ev.lane as usize] < clock[ev.lane as usize],
                    "lane {} advanced without ticking its own component",
                    ev.lane
                );
            }
        }
        last.insert(ev.lane, clock.clone());
    }
    assert!(clocked > 0, "simulator events must carry vector clocks");
}

#[test]
fn message_sends_happen_before_their_receives() {
    let events = recorded_kmutex_run();
    let mut sends: std::collections::BTreeMap<u64, &Event> = Default::default();
    let mut matched = 0usize;
    for ev in &events {
        match ev.kind {
            EventKind::MsgSend { id, .. } => {
                sends.insert(id, ev);
            }
            EventKind::MsgRecv { id, .. } => {
                let send = sends[&id];
                matched += 1;
                assert!(send.ts <= ev.ts, "recv before its send");
                let (sc, rc) = (send.clock.as_ref().unwrap(), ev.clock.as_ref().unwrap());
                // The receive's clock dominates the send's (merge + tick).
                assert!(
                    sc.iter().zip(rc).all(|(a, b)| a <= b) && sc != rc,
                    "flow {id}: send clock {sc:?} not < recv clock {rc:?}"
                );
            }
            _ => {}
        }
    }
    assert!(matched > 0, "the protocol exchanged control messages");
}

#[test]
fn recorded_replay_exports_valid_chrome_trace() {
    // The acceptance path: a k-mutex style trace, controlled, replayed
    // with a recorder, exported — the Chrome JSON must validate.
    let dep = cs_workload(
        &CsConfig {
            processes: 3,
            sections_per_process: 4,
            max_cs_len: 3,
            max_gap_len: 3,
        },
        11,
    );
    let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
    let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).expect("feasible");
    let out = replay_recorded(
        &dep,
        &rel,
        &ReplayConfig::default(),
        Box::new(RingRecorder::new(1 << 18)),
    );
    assert!(out.completed() && out.fidelity(&dep));
    let events = out.sim.events();
    let json = chrome::chrome_trace(&events, &timeline::lane_names(&dep));
    chrome::validate_chrome_trace(&json).expect("replay telemetry renders as valid Chrome trace");
}

#[test]
fn deposet_timeline_exports_valid_chrome_trace_with_control_arrows() {
    let dep = cs_workload(
        &CsConfig {
            processes: 3,
            sections_per_process: 3,
            max_cs_len: 2,
            max_gap_len: 2,
        },
        5,
    );
    let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
    let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).expect("feasible");
    let events = timeline::deposet_events(&dep, rel.pairs());
    let json = chrome::chrome_trace(&events, &timeline::lane_names(&dep));
    chrome::validate_chrome_trace(&json).expect("deposet timeline renders as valid Chrome trace");
}

#[test]
fn event_stats_summarize_spans_and_latencies() {
    let events = recorded_kmutex_run();
    let stats = EventStats::from_events(&events);
    assert!(
        stats.span_durations.contains_key("cs"),
        "driver cs spans recorded: {:?}",
        stats.span_durations.keys().collect::<Vec<_>>()
    );
    assert_eq!(stats.open_spans, 0, "a quiescent run closes every span");
    assert_eq!(stats.unmatched_sends, 0, "reliable channels: no lost sends");
    assert!(stats.msg_latencies.values().any(|v| !v.is_empty()));
    let report = stats.report();
    assert!(report.contains("events by kind"));
}

#[test]
fn ft_run_records_fault_and_recovery_telemetry() {
    let cfg = WorkloadConfig {
        processes: 3,
        entries_per_process: 3,
        seed: 1,
        ..Default::default()
    };
    let plan = FaultPlan::none().with_crash(
        predicate_control::deposet::ProcessId(0),
        SimTime(25),
        Some(200),
    );
    let r = run_ft_antitoken_recorded(
        &cfg,
        pctl_core::online::PeerSelect::NextInRing,
        FtParams::default(),
        plan,
        Box::new(RingRecorder::new(1 << 18)),
    );
    assert!(!r.deadlocked());
    let events = r.events();
    let names: std::collections::BTreeSet<&str> = events.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains("crash"), "crash instant recorded: {names:?}");
    assert!(
        names.contains("rejoin"),
        "rejoin instant recorded: {names:?}"
    );
}
