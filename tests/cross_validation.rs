//! Cross-crate validation: the fast algorithms agree with the exhaustive
//! oracles on randomized instances.

use predicate_control::control::offline::{Engine, SelectPolicy};
use predicate_control::control::verify::agrees_with_oracle;
use predicate_control::deposet::generator::{
    pipelined_workload, random_deposet, CsConfig, RandomConfig,
};
use predicate_control::deposet::sequences::find_satisfying_interleaving;
use predicate_control::prelude::*;

fn all_opts() -> Vec<OfflineOptions> {
    vec![
        OfflineOptions {
            policy: SelectPolicy::First,
            engine: Engine::Optimized,
        },
        OfflineOptions {
            policy: SelectPolicy::First,
            engine: Engine::Naive,
        },
        OfflineOptions {
            policy: SelectPolicy::Random { seed: 5 },
            engine: Engine::Optimized,
        },
        OfflineOptions {
            policy: SelectPolicy::Random { seed: 5 },
            engine: Engine::Naive,
        },
    ]
}

#[test]
fn offline_algorithm_agrees_with_oracle_on_random_traces() {
    for seed in 0..25u64 {
        let dep = random_deposet(
            &RandomConfig {
                processes: 3,
                events: 16,
                send_prob: 0.35,
                flip_prob: 0.45,
            },
            seed,
        );
        let pred = DisjunctivePredicate::at_least_one(3, "ok");
        for opts in all_opts() {
            assert!(
                agrees_with_oracle(&dep, &pred, opts, 3_000_000).unwrap(),
                "seed {seed} opts {opts:?}: feasibility disagreement"
            );
        }
    }
}

#[test]
fn every_feasible_random_instance_verifies_exhaustively() {
    for seed in 0..25u64 {
        let dep = random_deposet(
            &RandomConfig {
                processes: 3,
                events: 18,
                send_prob: 0.3,
                flip_prob: 0.4,
            },
            seed,
        );
        let pred = DisjunctivePredicate::at_least_one(3, "ok");
        for opts in all_opts() {
            if let Ok(rel) = control_disjunctive(&dep, &pred, opts) {
                verify_disjunctive(&dep, &pred, &rel, 3_000_000)
                    .unwrap_or_else(|e| panic!("seed {seed} opts {opts:?}: {e}"));
                let structure = chain_structure(&dep, &pred, &rel);
                assert!(structure.holds(), "seed {seed}: bad chain {structure:?}");
            }
        }
    }
}

#[test]
fn infeasibility_certificates_are_genuine_overlaps() {
    use predicate_control::control::overlap::is_overlapping;
    let mut found = 0;
    for seed in 0..60u64 {
        let dep = random_deposet(
            &RandomConfig {
                processes: 3,
                events: 14,
                send_prob: 0.5,
                flip_prob: 0.5,
            },
            seed,
        );
        let pred = DisjunctivePredicate::at_least_one(3, "ok");
        if let Err(inf) = control_disjunctive(&dep, &pred, OfflineOptions::default()) {
            found += 1;
            assert!(is_overlapping(&dep, &inf.witness), "seed {seed}");
            // And no satisfying interleaving exists (exhaustive).
            let p2 = pred.clone();
            let seq =
                find_satisfying_interleaving(&dep, 3_000_000, move |d, g| p2.eval(d, g)).unwrap();
            assert!(
                seq.is_none(),
                "seed {seed}: certificate for a feasible instance"
            );
        }
    }
    assert!(
        found >= 3,
        "workload too easy: only {found} infeasible instances"
    );
}

#[test]
fn strong_detector_matches_control_feasibility() {
    // detect::definitely_all_false ⟺ control infeasible (Lemma 2 closure).
    for seed in 0..30u64 {
        let cfg = CsConfig {
            processes: 3,
            sections_per_process: 3,
            max_cs_len: 2,
            max_gap_len: 2,
        };
        let dep = pipelined_workload(&cfg, seed);
        let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
        let infeasible = control_disjunctive(&dep, &pred, OfflineOptions::default()).is_err();
        let overlap = definitely_all_false(&dep, &pred).is_some();
        assert_eq!(infeasible, overlap, "seed {seed}");
    }
}

#[test]
fn weak_detector_agrees_with_verification_failure() {
    // If GW finds no violation, the empty relation already verifies; if it
    // finds one, verification of the empty relation must fail at some cut.
    for seed in 0..25u64 {
        let dep = random_deposet(
            &RandomConfig {
                processes: 3,
                events: 15,
                send_prob: 0.3,
                flip_prob: 0.4,
            },
            seed,
        );
        let pred = DisjunctivePredicate::at_least_one(3, "ok");
        let gw = detect_disjunctive_violation(&dep, &pred);
        let empty_ok =
            verify_disjunctive(&dep, &pred, &ControlRelation::empty(), 3_000_000).is_ok();
        assert_eq!(gw.is_none(), empty_ok, "seed {seed}");
    }
}

#[test]
fn sat_reduction_matches_dpll_full_pipeline() {
    use predicate_control::control::reduction::{extract_assignment, reduce_sat_to_sgsd};
    use predicate_control::control::sat::{satisfiable, Cnf};
    for seed in 0..15u64 {
        let cnf = Cnf::random_ksat(5, 21, 3, seed);
        let inst = reduce_sat_to_sgsd(&cnf);
        match sgsd(&inst.deposet, &inst.predicate, usize::MAX).unwrap() {
            SgsdOutcome::Satisfiable(seq) => {
                assert!(satisfiable(&cnf), "seed {seed}: SGSD sat but DPLL unsat");
                let a = extract_assignment(&seq, 5).unwrap();
                assert!(cnf.eval(&a), "seed {seed}: extracted non-model");
            }
            SgsdOutcome::Unsatisfiable => {
                assert!(!satisfiable(&cnf), "seed {seed}: SGSD unsat but DPLL sat");
            }
        }
    }
}
