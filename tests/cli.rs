//! End-to-end tests of the `pctl` command-line tool: a full debugging
//! session through the binary interface (gen → info → detect → control →
//! verify → replay → dot).

use std::path::PathBuf;
use std::process::{Command, Output};

fn pctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pctl"))
        .args(args)
        .output()
        .expect("spawn pctl")
}

fn tmpfile(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pctl-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_session_through_the_cli() {
    let trace = tmpfile("c1.json");
    let control = tmpfile("ctl.json");

    // gen
    let out = pctl(&[
        "gen",
        "--workload",
        "cs",
        "--processes",
        "3",
        "--sections",
        "4",
        "--seed",
        "11",
    ]);
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::write(&trace, &out.stdout).unwrap();

    // info
    let out = pctl(&["info", trace.to_str().unwrap()]);
    assert!(out.status.success());
    let info = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(info.contains("processes : 3"), "{info}");
    assert!(info.contains("vars {cs}"), "{info}");
    assert!(info.contains("store     : 1 shard(s)"), "{info}");

    // info --shards: same computation under an explicit shard plan; the
    // derived facts (consistent-cut count) must not change.
    let out = pctl(&["info", trace.to_str().unwrap(), "--shards", "3"]);
    assert!(out.status.success());
    let sharded = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(sharded.contains("store     : 3 shard(s)"), "{sharded}");
    assert!(sharded.contains("shard 0: processes 0..1"), "{sharded}");
    let cuts = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("consistent global states"))
            .map(str::to_owned)
    };
    assert_eq!(cuts(&info), cuts(&sharded), "plan must be unobservable");

    // detect: overlapping critical sections exist in this workload
    let out = pctl(&[
        "detect",
        trace.to_str().unwrap(),
        "--at-least-one-not",
        "cs",
    ]);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("VIOLATION possible"),
        "expected a detectable violation"
    );

    // control
    let out = pctl(&[
        "control",
        trace.to_str().unwrap(),
        "--at-least-one-not",
        "cs",
    ]);
    assert!(
        out.status.success(),
        "control failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::write(&control, &out.stdout).unwrap();

    // verify
    let out = pctl(&[
        "verify",
        trace.to_str().unwrap(),
        "--control",
        control.to_str().unwrap(),
        "--at-least-one-not",
        "cs",
    ]);
    assert!(
        out.status.success(),
        "verify failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    // replay under control: bug gone
    let out = pctl(&[
        "replay",
        trace.to_str().unwrap(),
        "--control",
        control.to_str().unwrap(),
        "--at-least-one-not",
        "cs",
    ]);
    assert!(
        out.status.success(),
        "replay failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("completed=true faithful=true"), "{text}");
    assert!(text.contains("satisfies the property"), "{text}");

    // dot renders with control edges
    let out = pctl(&[
        "dot",
        trace.to_str().unwrap(),
        "--control",
        control.to_str().unwrap(),
        "--vars",
    ]);
    assert!(out.status.success());
    let dotsrc = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(dotsrc.contains("digraph deposet"), "{dotsrc}");
    assert!(
        dotsrc.contains("style=dashed"),
        "control edge rendered: {dotsrc}"
    );

    let _ = std::fs::remove_file(trace);
    let _ = std::fs::remove_file(control);
}

#[test]
fn cli_reports_infeasibility_cleanly() {
    // A 1-process trace where the variable is never true — infeasible.
    let trace = tmpfile("bad.json");
    let out = pctl(&[
        "gen",
        "--workload",
        "random",
        "--processes",
        "2",
        "--events",
        "10",
        "--seed",
        "3",
    ]);
    assert!(out.status.success());
    std::fs::write(&trace, &out.stdout).unwrap();
    // 'never' is unset everywhere ⇒ at-least-one never ⇒ infeasible.
    let out = pctl(&[
        "control",
        trace.to_str().unwrap(),
        "--at-least-one",
        "never",
    ]);
    assert!(
        !out.status.success(),
        "expected failure for an infeasible property"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no controller exists"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(trace);
}

#[test]
fn cli_usage_and_errors() {
    let out = pctl(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = pctl(&["frobnicate"]);
    assert!(!out.status.success());

    let out = pctl(&["detect", "/nonexistent.json", "--at-least-one", "x"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    // Missing predicate flag.
    let out = pctl(&["gen", "--workload", "cs"]);
    assert!(out.status.success());
    let trace = tmpfile("nopred.json");
    std::fs::write(&trace, &out.stdout).unwrap();
    let out = pctl(&["detect", trace.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing predicate"));
    let _ = std::fs::remove_file(trace);
}

#[test]
fn cli_telemetry_session() {
    // gen → control → replay --trace-out/--events-out → trace → stats:
    // every export must be valid and mutually consistent.
    let trace = tmpfile("obs-c1.json");
    let control = tmpfile("obs-ctl.json");
    let chrome_out = tmpfile("obs-chrome.json");
    let jsonl_out = tmpfile("obs-run.jsonl");

    let out = pctl(&[
        "gen",
        "--workload",
        "cs",
        "--processes",
        "3",
        "--sections",
        "4",
        "--seed",
        "11",
    ]);
    assert!(out.status.success());
    std::fs::write(&trace, &out.stdout).unwrap();

    let out = pctl(&[
        "control",
        trace.to_str().unwrap(),
        "--at-least-one-not",
        "cs",
        "--quiet",
    ]);
    assert!(out.status.success());
    assert!(
        out.stderr.is_empty(),
        "--quiet leaves stderr empty: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::write(&control, &out.stdout).unwrap();

    let out = pctl(&[
        "replay",
        trace.to_str().unwrap(),
        "--control",
        control.to_str().unwrap(),
        "--trace-out",
        chrome_out.to_str().unwrap(),
        "--events-out",
        jsonl_out.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        out.status.success(),
        "replay failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stderr.is_empty());

    // The exported Chrome trace validates against the trace_event schema.
    let chrome_json = std::fs::read_to_string(&chrome_out).unwrap();
    predicate_control::obs::chrome::validate_chrome_trace(&chrome_json)
        .expect("replay --trace-out emits valid Chrome trace JSON");

    // `pctl trace` on the JSONL telemetry emits the same kind of document.
    let out = pctl(&["trace", jsonl_out.to_str().unwrap()]);
    assert!(out.status.success());
    predicate_control::obs::chrome::validate_chrome_trace(&String::from_utf8_lossy(&out.stdout))
        .expect("pctl trace emits valid Chrome trace JSON");

    // `pctl trace` straight off the deposet, with control arrows.
    let out = pctl(&[
        "trace",
        trace.to_str().unwrap(),
        "--control",
        control.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let doc = String::from_utf8_lossy(&out.stdout);
    predicate_control::obs::chrome::validate_chrome_trace(&doc)
        .expect("deposet timeline emits valid Chrome trace JSON");
    assert!(
        doc.contains("C\\u2192") || doc.contains("C→"),
        "control arrows present"
    );

    // `pctl stats` summarizes the telemetry log.
    let out = pctl(&["stats", jsonl_out.to_str().unwrap()]);
    assert!(out.status.success());
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("events by kind"), "{report}");

    // `pctl stats --prom` renders the same log as valid Prometheus text.
    let out = pctl(&["stats", jsonl_out.to_str().unwrap(), "--prom"]);
    assert!(out.status.success());
    let prom = String::from_utf8_lossy(&out.stdout);
    predicate_control::obs::prom::validate_exposition(&prom)
        .expect("pctl stats --prom emits parseable exposition");
    assert!(prom.contains("# TYPE pctl_events_total counter"), "{prom}");
    assert!(prom.contains("pctl_msg_latency_ticks"), "{prom}");

    for f in [trace, control, chrome_out, jsonl_out] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn cli_stats_keeps_percentile_sections_on_zero_sample_logs() {
    // An instant-only log has no span durations and no message latencies;
    // the report must still print both sections with an explicit
    // zero-sample line instead of silently omitting them.
    use predicate_control::obs::{jsonl, Event};
    let log = tmpfile("obs-instants.jsonl");
    let events = vec![Event::instant(1, 0, "tick"), Event::instant(5, 1, "tick")];
    std::fs::write(&log, jsonl::to_jsonl(&events)).unwrap();

    let out = pctl(&["stats", log.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(
        report.contains("span durations:\n  (no samples) n=0"),
        "{report}"
    );
    assert!(
        report.contains("message latencies:\n  (no samples) n=0"),
        "{report}"
    );

    // And the --prom view of the same log is still a valid document.
    let out = pctl(&["stats", log.to_str().unwrap(), "--prom"]);
    assert!(out.status.success());
    let prom = String::from_utf8_lossy(&out.stdout);
    predicate_control::obs::prom::validate_exposition(&prom).expect("valid exposition");
    assert!(
        prom.contains("pctl_instants_total{name=\"tick\"} 2"),
        "{prom}"
    );

    let _ = std::fs::remove_file(log);
}
