//! Acceptance tests for the fault-injection layer and the hardened
//! scapegoat protocol, end to end.
//!
//! The contract (see ISSUE/DESIGN "Deviations from Figure 3 under
//! faults"): under ≥5% message loss *plus* a scheduled crash of the
//! initial scapegoat, the protocol still drives the k-mutex workload to
//! completion on every seed — no deadlock, full entry quota, `k = n−1`
//! respected — and the post-run sweep proves `B` was never violated on a
//! cut with every process up. With an empty `FaultPlan`, behavior is
//! byte-identical to the fault-free simulator.

use pctl_core::online::ft::FtParams;
use pctl_core::online::PeerSelect;
use pctl_core::verify::sweep_faulty_run;
use pctl_deposet::{LocalPredicate, ProcessId};
use pctl_mutex::driver::{max_concurrent, WorkloadConfig};
use pctl_mutex::{run_antitoken, run_ft_antitoken};
use pctl_sim::{FaultPlan, SimResult, SimTime, StopReason};

const SEEDS: u64 = 20;

fn workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        processes: 4,
        seed,
        ..WorkloadConfig::default()
    }
}

#[test]
fn scapegoat_protocol_completes_under_loss_plus_scapegoat_crash() {
    // ≥5% loss on every link AND the initial scapegoat crashes at t=15
    // (before its first handover can complete) and restarts later.
    for seed in 0..SEEDS {
        let plan = FaultPlan::uniform_loss(0.05).with_crash(ProcessId(0), SimTime(15), Some(350));
        let r = run_ft_antitoken(
            &workload(seed),
            PeerSelect::NextInRing,
            FtParams::default(),
            plan,
        );
        assert!(!r.deadlocked(), "seed {seed}: deadlock");
        assert_eq!(
            r.stopped,
            StopReason::Quiescent,
            "seed {seed}: {:?}",
            r.stopped
        );
        assert_eq!(
            r.metrics.counter("entries"),
            20,
            "seed {seed}: entry quota missed (aborted CS entries count)"
        );
        assert_eq!(r.metrics.counter("rejoins"), 1, "seed {seed}");
        assert!(
            max_concurrent(&r.metrics, 4) <= 3,
            "seed {seed}: k-mutex broken"
        );
        let report = sweep_faulty_run(&r.deposet, &LocalPredicate::not_var("cs"));
        assert!(
            report.safe_modulo_crashes(),
            "seed {seed}: B violated on an all-up cut: {report:?}"
        );
        assert!(
            !report.down_windows.is_empty(),
            "seed {seed}: crash left no trace"
        );
    }
}

#[test]
fn loss_only_runs_preserve_the_paper_guarantee_outright() {
    for seed in 0..SEEDS {
        let r = run_ft_antitoken(
            &workload(seed),
            PeerSelect::NextInRing,
            FtParams::default(),
            FaultPlan::uniform_loss(0.08),
        );
        assert!(!r.deadlocked(), "seed {seed}");
        assert_eq!(r.metrics.counter("entries"), 20, "seed {seed}");
        let report = sweep_faulty_run(&r.deposet, &LocalPredicate::not_var("cs"));
        assert!(report.fully_safe(), "seed {seed}: {report:?}");
    }
}

fn fingerprint(r: &SimResult) -> String {
    format!(
        "{}\n{}\n{:?}\n{:?}\n{:?}",
        pctl_deposet::trace::to_json(&r.deposet),
        serde_json::to_string(&r.metrics).unwrap(),
        r.end_time,
        r.done,
        r.stopped,
    )
}

#[test]
fn empty_fault_plan_reproduces_seed_behavior_bit_for_bit() {
    // The baseline (pre-hardening) protocol run through the simulator's
    // default config must be byte-identical to a freshly constructed run —
    // threading the fault layer through `SimConfig` must not perturb
    // fault-free executions, and an all-zero plan counts as empty.
    assert!(FaultPlan::uniform_loss(0.0).is_empty());
    for seed in 0..SEEDS {
        let a = run_antitoken(&workload(seed), PeerSelect::NextInRing);
        let b = run_antitoken(&workload(seed), PeerSelect::NextInRing);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "seed {seed}: nondeterminism"
        );
    }
    // And the hardened runner with an explicitly empty plan is itself
    // reproducible from the seed alone.
    for seed in 0..4 {
        let a = run_ft_antitoken(
            &workload(seed),
            PeerSelect::NextInRing,
            FtParams::default(),
            FaultPlan::none(),
        );
        let b = run_ft_antitoken(
            &workload(seed),
            PeerSelect::NextInRing,
            FtParams::default(),
            FaultPlan::uniform_loss(0.0),
        );
        assert_eq!(fingerprint(&a), fingerprint(&b), "seed {seed}");
    }
}
