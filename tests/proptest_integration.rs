//! Cross-crate property-based tests: the paper's theorems as properties
//! over random computations.

use predicate_control::control::offline::{Engine, SelectPolicy};
use predicate_control::deposet::generator::{random_deposet, RandomConfig};
use predicate_control::deposet::sequences::find_satisfying_interleaving;
use predicate_control::prelude::*;
use proptest::prelude::*;

fn arb_world() -> impl Strategy<Value = (RandomConfig, u64)> {
    (2usize..5, 6usize..24, 0u64..100_000, 2u32..6).prop_map(|(n, ev, seed, flip)| {
        (
            RandomConfig {
                processes: n,
                events: ev,
                send_prob: 0.35,
                flip_prob: f64::from(flip) / 10.0,
            },
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 2 (soundness): whenever the off-line algorithm returns a
    /// relation, the controlled computation satisfies B on every consistent
    /// global state — checked exhaustively.
    #[test]
    fn theorem2_soundness((cfg, seed) in arb_world()) {
        let dep = random_deposet(&cfg, seed);
        let pred = DisjunctivePredicate::at_least_one(cfg.processes, "ok");
        for engine in [Engine::Optimized, Engine::Naive] {
            let opts = OfflineOptions { policy: SelectPolicy::Random { seed }, engine };
            if let Ok(rel) = control_disjunctive(&dep, &pred, opts) {
                prop_assert!(verify_disjunctive(&dep, &pred, &rel, 3_000_000).is_ok());
            }
        }
    }

    /// Theorem 2 (completeness against the interleaving oracle — the
    /// enforceable semantics): the algorithm says "No Controller Exists"
    /// exactly when no satisfying interleaving exists.
    #[test]
    fn theorem2_completeness((cfg, seed) in arb_world()) {
        let dep = random_deposet(&cfg, seed);
        let pred = DisjunctivePredicate::at_least_one(cfg.processes, "ok");
        let algo = control_disjunctive(&dep, &pred, OfflineOptions::default());
        let p2 = pred.clone();
        let oracle = find_satisfying_interleaving(&dep, 3_000_000, move |d, g| p2.eval(d, g));
        let Ok(oracle) = oracle else { return Ok(()); }; // budget: skip
        prop_assert_eq!(algo.is_ok(), oracle.is_some());
        if let Err(inf) = algo {
            prop_assert!(predicate_control::control::overlap::is_overlapping(
                &dep,
                &inf.witness
            ));
        }
    }

    /// Lemma 2 both ways via the detect crate's independent implementation
    /// (interleaving / enforceable semantics).
    #[test]
    fn lemma2_overlap_iff_infeasible((cfg, seed) in arb_world()) {
        let dep = random_deposet(&cfg, seed);
        let pred = DisjunctivePredicate::at_least_one(cfg.processes, "ok");
        let overlap = definitely_all_false(&dep, &pred).is_some();
        let p2 = pred.clone();
        let Ok(seq) = find_satisfying_interleaving(&dep, 3_000_000, move |d, g| p2.eval(d, g))
        else { return Ok(()); };
        prop_assert_eq!(overlap, seq.is_none());
    }

    /// Replay of any traced computation (no control) is faithful and
    /// reproduces the message structure.
    #[test]
    fn replay_identity((cfg, seed) in arb_world()) {
        let dep = random_deposet(&cfg, seed);
        let out = replay(&dep, &ControlRelation::empty(), &ReplayConfig::default());
        prop_assert!(out.completed());
        prop_assert!(out.fidelity(&dep));
        prop_assert_eq!(
            out.sim.metrics.counter("msgs_app") as usize,
            dep.messages().len()
        );
    }

    /// Controlled replay: enforce any synthesized relation; the replay
    /// completes (non-interference ⇒ no deadlock), stays faithful, and the
    /// replayed trace satisfies B on every consistent cut (via GW).
    #[test]
    fn controlled_replay_safety((cfg, seed) in arb_world()) {
        let dep = random_deposet(&cfg, seed);
        let pred = DisjunctivePredicate::at_least_one(cfg.processes, "ok");
        if let Ok(rel) = control_disjunctive(&dep, &pred, OfflineOptions::default()) {
            let out = replay(&dep, &rel, &ReplayConfig::default());
            prop_assert!(out.completed(), "replay deadlocked");
            prop_assert!(out.fidelity(&dep));
            prop_assert!(detect_disjunctive_violation(out.deposet(), &pred).is_none());
        }
    }

    /// The GW weak detector agrees with exhaustive search over the lattice
    /// on arbitrary mixed-polarity conjunctions.
    #[test]
    fn gw_detection_exact((cfg, seed) in arb_world()) {
        use predicate_control::deposet::lattice::find_all_consistent;
        let dep = random_deposet(&cfg, seed);
        let n = cfg.processes;
        let locals: Vec<LocalPredicate> = (0..n)
            .map(|i| {
                if (seed as usize + i).is_multiple_of(2) {
                    LocalPredicate::var("ok")
                } else {
                    LocalPredicate::not_var("ok")
                }
            })
            .collect();
        let fast = possibly_conjunction(&dep, &locals);
        let slow = find_all_consistent(&dep, 3_000_000, |d, g| {
            locals
                .iter()
                .enumerate()
                .all(|(i, l)| l.eval(d.state(g.state_of(pctl_ids::pid(i)))))
        });
        let Ok(slow) = slow else { return Ok(()); };
        prop_assert_eq!(fast.is_some(), !slow.is_empty());
        if let Some(g) = fast {
            prop_assert!(slow.contains(&g));
        }
    }
}

mod pctl_ids {
    pub fn pid(i: usize) -> predicate_control::causality::ProcessId {
        predicate_control::causality::ProcessId(i as u32)
    }
}
