//! System-level tests of the on-line strategy and the mutex algorithms:
//! safety on consistent cuts of real simulated traces, liveness, and the
//! Theorem 3 impossibility boundary.

use predicate_control::control::online::{phased_system, PeerSelect, Phase};
use predicate_control::deposet::LocalPredicate;
use predicate_control::prelude::*;
use predicate_control::sim::Simulation;

fn scripts(n: usize, phases: usize) -> Vec<Vec<Phase>> {
    (0..n)
        .map(|i| {
            (0..phases)
                .map(|k| Phase {
                    true_len: 12 + 5 * i as u64 + 2 * k as u64,
                    false_len: Some(6 + (k as u64 % 3)),
                })
                .collect()
        })
        .collect()
}

#[test]
fn online_strategy_safe_across_policies_sizes_and_delays() {
    for n in [2usize, 3, 5, 8] {
        for select in [
            PeerSelect::NextInRing,
            PeerSelect::Random,
            PeerSelect::Broadcast,
        ] {
            for (seed, delay) in [
                (0u64, DelayModel::Fixed(5)),
                (1, DelayModel::Uniform { min: 1, max: 20 }),
            ] {
                let procs = phased_system(n, scripts(n, 4), select);
                let cfg = SimConfig {
                    seed,
                    delay,
                    ..SimConfig::default()
                };
                let r = Simulation::new(cfg, procs).run();
                assert!(!r.deadlocked(), "n={n} {select:?} seed={seed}");
                let all_false: Vec<LocalPredicate> =
                    (0..n).map(|_| LocalPredicate::not_var("ok")).collect();
                assert_eq!(
                    possibly_conjunction(&r.deposet, &all_false),
                    None,
                    "n={n} {select:?} seed={seed}: some consistent cut is all-false"
                );
            }
        }
    }
}

#[test]
fn online_traces_can_be_recontrolled_offline() {
    // Close the loop: trace an on-line run, then run the OFF-LINE algorithm
    // on the produced deposet. The predicate already holds, so the offline
    // answer must be feasible and its output must verify.
    let procs = phased_system(3, scripts(3, 3), PeerSelect::NextInRing);
    let cfg = SimConfig {
        seed: 3,
        delay: DelayModel::Fixed(5),
        ..SimConfig::default()
    };
    let r = Simulation::new(cfg, procs).run();
    let pred = DisjunctivePredicate::at_least_one(3, "ok");
    let rel = control_disjunctive(&r.deposet, &pred, OfflineOptions::default())
        .expect("already-safe trace is feasible");
    verify_disjunctive(&r.deposet, &pred, &rel, 3_000_000).unwrap();
}

#[test]
fn impossibility_without_a1_but_safety_never_broken() {
    // Theorem 3's boundary: violating A1 (a process stays false forever)
    // deadlocks the strategy — but the strategy fails *safe*.
    let scripts = vec![
        vec![Phase {
            true_len: 40,
            false_len: Some(10),
        }],
        vec![Phase {
            true_len: 8,
            false_len: None,
        }], // violates A1
    ];
    let procs = phased_system(2, scripts, PeerSelect::NextInRing);
    let cfg = SimConfig {
        seed: 0,
        delay: DelayModel::Fixed(5),
        ..SimConfig::default()
    };
    let r = Simulation::new(cfg, procs).run();
    assert!(r.deadlocked());
    let all_false: Vec<LocalPredicate> = (0..2).map(|_| LocalPredicate::not_var("ok")).collect();
    assert_eq!(possibly_conjunction(&r.deposet, &all_false), None);
}

#[test]
fn mutex_algorithms_all_safe_and_comparable() {
    for seed in 0..3u64 {
        let cfg = WorkloadConfig {
            processes: 5,
            entries_per_process: 6,
            think: (15, 50),
            cs: (5, 12),
            seed,
            delay: 8,
        };
        let reports = compare_all(&cfg);
        assert_eq!(reports.len(), 4);
        let total_entries = 5 * 6;
        for rep in &reports {
            assert!(!rep.deadlocked, "{} seed {seed}", rep.algo);
            assert_eq!(rep.entries, total_entries, "{} seed {seed}", rep.algo);
            assert!(rep.max_concurrent <= rep.k, "{} seed {seed}", rep.algo);
        }
        // The headline comparison: anti-token strictly cheapest in messages.
        let anti = reports.iter().find(|r| r.algo == "anti-token").unwrap();
        let central = reports.iter().find(|r| r.algo == "centralized").unwrap();
        let suzuki = reports
            .iter()
            .find(|r| r.algo == "suzuki-kasami-k")
            .unwrap();
        assert!(anti.msgs_per_entry < central.msgs_per_entry, "seed {seed}");
        assert!(anti.msgs_per_entry < suzuki.msgs_per_entry, "seed {seed}");
    }
}

#[test]
fn antitoken_trace_is_valid_deposet_and_roundtrips() {
    use predicate_control::deposet::trace;
    let cfg = WorkloadConfig {
        processes: 4,
        entries_per_process: 5,
        think: (10, 30),
        cs: (4, 10),
        seed: 2,
        delay: 6,
    };
    let r = run_antitoken(&cfg, PeerSelect::Random);
    let json = trace::to_json(&r.deposet);
    let back = trace::from_json(&json).unwrap();
    assert_eq!(back.total_states(), r.deposet.total_states());
    assert_eq!(back.messages().len(), r.deposet.messages().len());
}

#[test]
fn snapshot_on_simulator_is_consistent() {
    use predicate_control::detect::snapshot::run_snapshot;
    for seed in 0..5u64 {
        let run = run_snapshot(4, 6, 5, 30, seed);
        assert!(run.completed, "seed {seed}");
        assert_eq!(run.snapshot_token_count(), run.total_tokens, "seed {seed}");
        let cut = run.recorded_cut().unwrap();
        assert!(cut.is_consistent(&run.deposet), "seed {seed}");
    }
}
