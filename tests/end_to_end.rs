//! End-to-end integration: the full active-debugging cycle across crates
//! (deposet → detect → control → replay → detect again), on the paper's
//! Figure 4 scenario and beyond.

use predicate_control::deposet::scenarios::replicated_servers;
use predicate_control::deposet::{lattice, trace};
use predicate_control::prelude::*;

#[test]
fn figure4_full_cycle() {
    let fig = replicated_servers();
    let c1 = &fig.deposet;
    let opts = OfflineOptions::default();

    // bug1 detectable at exactly G and H.
    let first = detect_disjunctive_violation(c1, &fig.availability).unwrap();
    assert_eq!(first, fig.g);
    let all =
        lattice::find_all_consistent(c1, 100_000, |d, g| !fig.availability.eval(d, g)).unwrap();
    assert_eq!(all, vec![fig.g.clone(), fig.h.clone()]);

    // C2: availability control removes G and H, keeps e ∥ f.
    let rel_avail = control_disjunctive(c1, &fig.availability, opts).unwrap();
    verify_disjunctive(c1, &fig.availability, &rel_avail, 100_000).unwrap();
    let c2 = ControlledDeposet::new(c1, rel_avail.clone()).unwrap();
    assert!(!c2.is_consistent(&fig.g));
    assert!(!c2.is_consistent(&fig.h));
    assert!(c2.concurrent(fig.e, fig.f));

    // Controlled replay of C1: runs, faithful, bug-free.
    let rp = replay(c1, &rel_avail, &ReplayConfig::default());
    assert!(rp.completed());
    assert!(rp.fidelity(c1));
    assert_eq!(
        detect_disjunctive_violation(rp.deposet(), &fig.availability),
        None
    );

    // C3/C4: ordering control; the single control message travels in the
    // event *producing* e (i.e. "from e to f" in the paper's event
    // reading), and it also removes bug1 from the original computation.
    let rel_order = control_disjunctive(c1, &fig.order_e_before_f, opts).unwrap();
    assert_eq!(rel_order.pairs(), &[(fig.e.predecessor().unwrap(), fig.f)]);
    let c4 = ControlledDeposet::new(c1, rel_order).unwrap();
    assert!(!c4.is_consistent(&fig.g));
    assert!(!c4.is_consistent(&fig.h));
}

#[test]
fn figure4_survives_trace_serialization() {
    // The cycle still works after writing the computation to its JSON
    // trace format and reading it back (debug sessions span processes).
    let fig = replicated_servers();
    let json = trace::to_json(&fig.deposet);
    let reloaded = trace::from_json(&json).unwrap();
    let rel = control_disjunctive(&reloaded, &fig.availability, OfflineOptions::default()).unwrap();
    verify_disjunctive(&reloaded, &fig.availability, &rel, 100_000).unwrap();
    let rp = replay(&reloaded, &rel, &ReplayConfig::default());
    assert!(rp.completed() && rp.fidelity(&reloaded));
}

#[test]
fn infeasible_property_reports_certificate_and_replay_still_reproduces() {
    // Servers that are never available: control must refuse with an
    // overlap witness; the *uncontrolled* replay still reproduces the bug.
    let mut b = DeposetBuilder::new(2);
    b.internal(0, &[]);
    b.internal(1, &[]);
    let dep = b.finish().unwrap();
    let pred = DisjunctivePredicate::at_least_one(2, "avail");
    let err = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap_err();
    assert_eq!(err.witness.len(), 2);
    // Cross-crate agreement: detect's strong detector finds the same fact.
    assert!(definitely_all_false(&dep, &pred).is_some());
    let rp = replay(&dep, &ControlRelation::empty(), &ReplayConfig::default());
    assert!(rp.completed());
    assert!(detect_disjunctive_violation(rp.deposet(), &pred).is_some());
}

#[test]
fn double_control_compose_order_then_availability() {
    // Applying both Figure-4 relations together still verifies both
    // properties (merged relations stay non-interfering here).
    let fig = replicated_servers();
    let opts = OfflineOptions::default();
    let a = control_disjunctive(&fig.deposet, &fig.availability, opts).unwrap();
    let o = control_disjunctive(&fig.deposet, &fig.order_e_before_f, opts).unwrap();
    let merged = a.merged(&o);
    verify_disjunctive(&fig.deposet, &fig.availability, &merged, 100_000).unwrap();
    verify_disjunctive(&fig.deposet, &fig.order_e_before_f, &merged, 100_000).unwrap();
    let rp = replay(&fig.deposet, &merged, &ReplayConfig::default());
    assert!(rp.completed() && rp.fidelity(&fig.deposet));
}

#[test]
fn replayed_trace_can_be_debugged_again() {
    // A second-generation debugging session: replay a controlled trace,
    // then run detection and control on the *replayed* computation.
    let fig = replicated_servers();
    let rel =
        control_disjunctive(&fig.deposet, &fig.availability, OfflineOptions::default()).unwrap();
    let rp = replay(&fig.deposet, &rel, &ReplayConfig::default());
    let second = rp.deposet();
    // The availability predicate arity matches (same process count).
    assert_eq!(second.process_count(), 3);
    assert_eq!(
        detect_disjunctive_violation(second, &fig.availability),
        None
    );
    // Controlling an already-safe computation yields a verifiable (possibly
    // empty) relation.
    let rel2 = control_disjunctive(second, &fig.availability, OfflineOptions::default())
        .expect("still feasible");
    verify_disjunctive(second, &fig.availability, &rel2, 500_000).unwrap();
}
