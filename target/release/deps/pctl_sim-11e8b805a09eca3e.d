/root/repo/target/release/deps/pctl_sim-11e8b805a09eca3e.d: crates/sim/src/lib.rs crates/sim/src/faults.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libpctl_sim-11e8b805a09eca3e.rlib: crates/sim/src/lib.rs crates/sim/src/faults.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libpctl_sim-11e8b805a09eca3e.rmeta: crates/sim/src/lib.rs crates/sim/src/faults.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/faults.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
