/root/repo/target/release/deps/pctl_causality-26a3735873b1aee3.d: crates/causality/src/lib.rs crates/causality/src/graph.rs crates/causality/src/ids.rs crates/causality/src/lamport.rs crates/causality/src/order.rs crates/causality/src/vclock.rs

/root/repo/target/release/deps/libpctl_causality-26a3735873b1aee3.rlib: crates/causality/src/lib.rs crates/causality/src/graph.rs crates/causality/src/ids.rs crates/causality/src/lamport.rs crates/causality/src/order.rs crates/causality/src/vclock.rs

/root/repo/target/release/deps/libpctl_causality-26a3735873b1aee3.rmeta: crates/causality/src/lib.rs crates/causality/src/graph.rs crates/causality/src/ids.rs crates/causality/src/lamport.rs crates/causality/src/order.rs crates/causality/src/vclock.rs

crates/causality/src/lib.rs:
crates/causality/src/graph.rs:
crates/causality/src/ids.rs:
crates/causality/src/lamport.rs:
crates/causality/src/order.rs:
crates/causality/src/vclock.rs:
