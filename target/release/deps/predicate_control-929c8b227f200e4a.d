/root/repo/target/release/deps/predicate_control-929c8b227f200e4a.d: src/lib.rs

/root/repo/target/release/deps/libpredicate_control-929c8b227f200e4a.rlib: src/lib.rs

/root/repo/target/release/deps/libpredicate_control-929c8b227f200e4a.rmeta: src/lib.rs

src/lib.rs:
