/root/repo/target/release/deps/fig3_faults-836ddf09ac7d3f33.d: crates/bench/src/bin/fig3_faults.rs

/root/repo/target/release/deps/fig3_faults-836ddf09ac7d3f33: crates/bench/src/bin/fig3_faults.rs

crates/bench/src/bin/fig3_faults.rs:
