/root/repo/target/release/deps/pctl_core-f3fe82dbcb67f69d.d: crates/core/src/lib.rs crates/core/src/cnf_control.rs crates/core/src/control.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/online/ft.rs crates/core/src/overlap.rs crates/core/src/reduction.rs crates/core/src/sat.rs crates/core/src/sgsd.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libpctl_core-f3fe82dbcb67f69d.rlib: crates/core/src/lib.rs crates/core/src/cnf_control.rs crates/core/src/control.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/online/ft.rs crates/core/src/overlap.rs crates/core/src/reduction.rs crates/core/src/sat.rs crates/core/src/sgsd.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libpctl_core-f3fe82dbcb67f69d.rmeta: crates/core/src/lib.rs crates/core/src/cnf_control.rs crates/core/src/control.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/online/ft.rs crates/core/src/overlap.rs crates/core/src/reduction.rs crates/core/src/sat.rs crates/core/src/sgsd.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/cnf_control.rs:
crates/core/src/control.rs:
crates/core/src/offline.rs:
crates/core/src/online.rs:
crates/core/src/online/ft.rs:
crates/core/src/overlap.rs:
crates/core/src/reduction.rs:
crates/core/src/sat.rs:
crates/core/src/sgsd.rs:
crates/core/src/verify.rs:
