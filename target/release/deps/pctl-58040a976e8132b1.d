/root/repo/target/release/deps/pctl-58040a976e8132b1.d: src/bin/pctl.rs

/root/repo/target/release/deps/pctl-58040a976e8132b1: src/bin/pctl.rs

src/bin/pctl.rs:
