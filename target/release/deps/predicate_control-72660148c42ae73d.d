/root/repo/target/release/deps/predicate_control-72660148c42ae73d.d: src/lib.rs

/root/repo/target/release/deps/libpredicate_control-72660148c42ae73d.rlib: src/lib.rs

/root/repo/target/release/deps/libpredicate_control-72660148c42ae73d.rmeta: src/lib.rs

src/lib.rs:
