/root/repo/target/release/deps/pctl_mutex-02c537bd903ee3a0.d: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

/root/repo/target/release/deps/libpctl_mutex-02c537bd903ee3a0.rlib: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

/root/repo/target/release/deps/libpctl_mutex-02c537bd903ee3a0.rmeta: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

crates/mutex/src/lib.rs:
crates/mutex/src/antitoken.rs:
crates/mutex/src/central.rs:
crates/mutex/src/compare.rs:
crates/mutex/src/driver.rs:
crates/mutex/src/multi.rs:
crates/mutex/src/suzuki.rs:
