/root/repo/target/release/deps/fig3_online-0ca18814bc8f104d.d: crates/bench/src/bin/fig3_online.rs

/root/repo/target/release/deps/fig3_online-0ca18814bc8f104d: crates/bench/src/bin/fig3_online.rs

crates/bench/src/bin/fig3_online.rs:
