/root/repo/target/release/deps/pctl_mutex-b5e601d15dc0935a.d: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/ft_antitoken.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

/root/repo/target/release/deps/libpctl_mutex-b5e601d15dc0935a.rlib: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/ft_antitoken.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

/root/repo/target/release/deps/libpctl_mutex-b5e601d15dc0935a.rmeta: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/ft_antitoken.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

crates/mutex/src/lib.rs:
crates/mutex/src/antitoken.rs:
crates/mutex/src/central.rs:
crates/mutex/src/compare.rs:
crates/mutex/src/driver.rs:
crates/mutex/src/ft_antitoken.rs:
crates/mutex/src/multi.rs:
crates/mutex/src/suzuki.rs:
