/root/repo/target/release/deps/pctl_replay-9fb54e0f98f817ac.d: crates/replay/src/lib.rs crates/replay/src/reduction.rs

/root/repo/target/release/deps/libpctl_replay-9fb54e0f98f817ac.rlib: crates/replay/src/lib.rs crates/replay/src/reduction.rs

/root/repo/target/release/deps/libpctl_replay-9fb54e0f98f817ac.rmeta: crates/replay/src/lib.rs crates/replay/src/reduction.rs

crates/replay/src/lib.rs:
crates/replay/src/reduction.rs:
