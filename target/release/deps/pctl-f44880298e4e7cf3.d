/root/repo/target/release/deps/pctl-f44880298e4e7cf3.d: src/bin/pctl.rs

/root/repo/target/release/deps/pctl-f44880298e4e7cf3: src/bin/pctl.rs

src/bin/pctl.rs:
