/root/repo/target/release/deps/pctl_replay-e899ddc06a78440e.d: crates/replay/src/lib.rs crates/replay/src/reduction.rs

/root/repo/target/release/deps/libpctl_replay-e899ddc06a78440e.rlib: crates/replay/src/lib.rs crates/replay/src/reduction.rs

/root/repo/target/release/deps/libpctl_replay-e899ddc06a78440e.rmeta: crates/replay/src/lib.rs crates/replay/src/reduction.rs

crates/replay/src/lib.rs:
crates/replay/src/reduction.rs:
