/root/repo/target/release/deps/pctl_bench-1c605ea1753a18a0.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpctl_bench-1c605ea1753a18a0.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpctl_bench-1c605ea1753a18a0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
