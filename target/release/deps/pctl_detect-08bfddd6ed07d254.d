/root/repo/target/release/deps/pctl_detect-08bfddd6ed07d254.d: crates/detect/src/lib.rs crates/detect/src/conjunctive.rs crates/detect/src/lattice_check.rs crates/detect/src/online_checker.rs crates/detect/src/snapshot.rs crates/detect/src/strong.rs

/root/repo/target/release/deps/libpctl_detect-08bfddd6ed07d254.rlib: crates/detect/src/lib.rs crates/detect/src/conjunctive.rs crates/detect/src/lattice_check.rs crates/detect/src/online_checker.rs crates/detect/src/snapshot.rs crates/detect/src/strong.rs

/root/repo/target/release/deps/libpctl_detect-08bfddd6ed07d254.rmeta: crates/detect/src/lib.rs crates/detect/src/conjunctive.rs crates/detect/src/lattice_check.rs crates/detect/src/online_checker.rs crates/detect/src/snapshot.rs crates/detect/src/strong.rs

crates/detect/src/lib.rs:
crates/detect/src/conjunctive.rs:
crates/detect/src/lattice_check.rs:
crates/detect/src/online_checker.rs:
crates/detect/src/snapshot.rs:
crates/detect/src/strong.rs:
