/root/repo/target/debug/examples/active_debugging-6bfd4a91b1f273d5.d: examples/active_debugging.rs

/root/repo/target/debug/examples/active_debugging-6bfd4a91b1f273d5: examples/active_debugging.rs

examples/active_debugging.rs:
