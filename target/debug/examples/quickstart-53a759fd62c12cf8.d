/root/repo/target/debug/examples/quickstart-53a759fd62c12cf8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-53a759fd62c12cf8: examples/quickstart.rs

examples/quickstart.rs:
