/root/repo/target/debug/examples/faulty_mutex-2de969e9a2818cf6.d: examples/faulty_mutex.rs

/root/repo/target/debug/examples/faulty_mutex-2de969e9a2818cf6: examples/faulty_mutex.rs

examples/faulty_mutex.rs:
