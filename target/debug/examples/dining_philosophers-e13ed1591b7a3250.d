/root/repo/target/debug/examples/dining_philosophers-e13ed1591b7a3250.d: examples/dining_philosophers.rs

/root/repo/target/debug/examples/dining_philosophers-e13ed1591b7a3250: examples/dining_philosophers.rs

examples/dining_philosophers.rs:
