/root/repo/target/debug/examples/mutual_exclusion-f521a173f51f0eba.d: examples/mutual_exclusion.rs Cargo.toml

/root/repo/target/debug/examples/libmutual_exclusion-f521a173f51f0eba.rmeta: examples/mutual_exclusion.rs Cargo.toml

examples/mutual_exclusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
