/root/repo/target/debug/examples/mutual_exclusion-27855a69ea552420.d: examples/mutual_exclusion.rs

/root/repo/target/debug/examples/mutual_exclusion-27855a69ea552420: examples/mutual_exclusion.rs

examples/mutual_exclusion.rs:
