/root/repo/target/debug/examples/dining_philosophers-9a644f0a1b7f6176.d: examples/dining_philosophers.rs

/root/repo/target/debug/examples/dining_philosophers-9a644f0a1b7f6176: examples/dining_philosophers.rs

examples/dining_philosophers.rs:
