/root/repo/target/debug/examples/primary_backup-a764238bb2bc5ee9.d: examples/primary_backup.rs Cargo.toml

/root/repo/target/debug/examples/libprimary_backup-a764238bb2bc5ee9.rmeta: examples/primary_backup.rs Cargo.toml

examples/primary_backup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
