/root/repo/target/debug/examples/primary_backup-ff95f5e753c72d51.d: examples/primary_backup.rs

/root/repo/target/debug/examples/primary_backup-ff95f5e753c72d51: examples/primary_backup.rs

examples/primary_backup.rs:
