/root/repo/target/debug/examples/quickstart-3c1113c1737e9428.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3c1113c1737e9428: examples/quickstart.rs

examples/quickstart.rs:
