/root/repo/target/debug/examples/primary_backup-b74b82c5806de82c.d: examples/primary_backup.rs

/root/repo/target/debug/examples/primary_backup-b74b82c5806de82c: examples/primary_backup.rs

examples/primary_backup.rs:
