/root/repo/target/debug/examples/dining_philosophers-ca5ce2d45f58ff07.d: examples/dining_philosophers.rs Cargo.toml

/root/repo/target/debug/examples/libdining_philosophers-ca5ce2d45f58ff07.rmeta: examples/dining_philosophers.rs Cargo.toml

examples/dining_philosophers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
