/root/repo/target/debug/examples/mutual_exclusion-83e300ebba8780fc.d: examples/mutual_exclusion.rs

/root/repo/target/debug/examples/mutual_exclusion-83e300ebba8780fc: examples/mutual_exclusion.rs

examples/mutual_exclusion.rs:
