/root/repo/target/debug/examples/active_debugging-481ebf54eb7aefca.d: examples/active_debugging.rs Cargo.toml

/root/repo/target/debug/examples/libactive_debugging-481ebf54eb7aefca.rmeta: examples/active_debugging.rs Cargo.toml

examples/active_debugging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
