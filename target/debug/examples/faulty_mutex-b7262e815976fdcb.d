/root/repo/target/debug/examples/faulty_mutex-b7262e815976fdcb.d: examples/faulty_mutex.rs Cargo.toml

/root/repo/target/debug/examples/libfaulty_mutex-b7262e815976fdcb.rmeta: examples/faulty_mutex.rs Cargo.toml

examples/faulty_mutex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
