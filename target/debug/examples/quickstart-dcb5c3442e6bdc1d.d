/root/repo/target/debug/examples/quickstart-dcb5c3442e6bdc1d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-dcb5c3442e6bdc1d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
