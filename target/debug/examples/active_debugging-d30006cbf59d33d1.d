/root/repo/target/debug/examples/active_debugging-d30006cbf59d33d1.d: examples/active_debugging.rs

/root/repo/target/debug/examples/active_debugging-d30006cbf59d33d1: examples/active_debugging.rs

examples/active_debugging.rs:
