/root/repo/target/debug/deps/fig3_online-3cd011e0711ae122.d: crates/bench/src/bin/fig3_online.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_online-3cd011e0711ae122.rmeta: crates/bench/src/bin/fig3_online.rs Cargo.toml

crates/bench/src/bin/fig3_online.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
