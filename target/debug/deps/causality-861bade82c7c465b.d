/root/repo/target/debug/deps/causality-861bade82c7c465b.d: crates/bench/benches/causality.rs Cargo.toml

/root/repo/target/debug/deps/libcausality-861bade82c7c465b.rmeta: crates/bench/benches/causality.rs Cargo.toml

crates/bench/benches/causality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
