/root/repo/target/debug/deps/pctl_sim-7006dfc808dc5290.d: crates/sim/src/lib.rs crates/sim/src/faults.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/pctl_sim-7006dfc808dc5290: crates/sim/src/lib.rs crates/sim/src/faults.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/faults.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
