/root/repo/target/debug/deps/fig4_debugging-5c40f8646629aad1.d: crates/bench/src/bin/fig4_debugging.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_debugging-5c40f8646629aad1.rmeta: crates/bench/src/bin/fig4_debugging.rs Cargo.toml

crates/bench/src/bin/fig4_debugging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
