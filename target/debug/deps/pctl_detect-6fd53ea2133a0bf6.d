/root/repo/target/debug/deps/pctl_detect-6fd53ea2133a0bf6.d: crates/detect/src/lib.rs crates/detect/src/conjunctive.rs crates/detect/src/lattice_check.rs crates/detect/src/online_checker.rs crates/detect/src/snapshot.rs crates/detect/src/strong.rs

/root/repo/target/debug/deps/libpctl_detect-6fd53ea2133a0bf6.rlib: crates/detect/src/lib.rs crates/detect/src/conjunctive.rs crates/detect/src/lattice_check.rs crates/detect/src/online_checker.rs crates/detect/src/snapshot.rs crates/detect/src/strong.rs

/root/repo/target/debug/deps/libpctl_detect-6fd53ea2133a0bf6.rmeta: crates/detect/src/lib.rs crates/detect/src/conjunctive.rs crates/detect/src/lattice_check.rs crates/detect/src/online_checker.rs crates/detect/src/snapshot.rs crates/detect/src/strong.rs

crates/detect/src/lib.rs:
crates/detect/src/conjunctive.rs:
crates/detect/src/lattice_check.rs:
crates/detect/src/online_checker.rs:
crates/detect/src/snapshot.rs:
crates/detect/src/strong.rs:
