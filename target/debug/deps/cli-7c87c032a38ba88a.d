/root/repo/target/debug/deps/cli-7c87c032a38ba88a.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-7c87c032a38ba88a.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_pctl=placeholder:pctl
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
