/root/repo/target/debug/deps/fig4_debugging-9667bee95b313d96.d: crates/bench/src/bin/fig4_debugging.rs

/root/repo/target/debug/deps/fig4_debugging-9667bee95b313d96: crates/bench/src/bin/fig4_debugging.rs

crates/bench/src/bin/fig4_debugging.rs:
