/root/repo/target/debug/deps/fig3_faults-ceff23f0e301a6a7.d: crates/bench/src/bin/fig3_faults.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_faults-ceff23f0e301a6a7.rmeta: crates/bench/src/bin/fig3_faults.rs Cargo.toml

crates/bench/src/bin/fig3_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
