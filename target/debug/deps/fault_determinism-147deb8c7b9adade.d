/root/repo/target/debug/deps/fault_determinism-147deb8c7b9adade.d: crates/sim/tests/fault_determinism.rs

/root/repo/target/debug/deps/fault_determinism-147deb8c7b9adade: crates/sim/tests/fault_determinism.rs

crates/sim/tests/fault_determinism.rs:
