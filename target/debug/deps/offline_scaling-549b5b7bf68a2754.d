/root/repo/target/debug/deps/offline_scaling-549b5b7bf68a2754.d: crates/bench/benches/offline_scaling.rs Cargo.toml

/root/repo/target/debug/deps/liboffline_scaling-549b5b7bf68a2754.rmeta: crates/bench/benches/offline_scaling.rs Cargo.toml

crates/bench/benches/offline_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
