/root/repo/target/debug/deps/pctl_replay-4cf9878a6d8ede97.d: crates/replay/src/lib.rs crates/replay/src/reduction.rs

/root/repo/target/debug/deps/pctl_replay-4cf9878a6d8ede97: crates/replay/src/lib.rs crates/replay/src/reduction.rs

crates/replay/src/lib.rs:
crates/replay/src/reduction.rs:
