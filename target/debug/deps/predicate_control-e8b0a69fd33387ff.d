/root/repo/target/debug/deps/predicate_control-e8b0a69fd33387ff.d: src/lib.rs

/root/repo/target/debug/deps/predicate_control-e8b0a69fd33387ff: src/lib.rs

src/lib.rs:
