/root/repo/target/debug/deps/proptest_integration-8fbaf3896674ffbc.d: tests/proptest_integration.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_integration-8fbaf3896674ffbc.rmeta: tests/proptest_integration.rs Cargo.toml

tests/proptest_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
