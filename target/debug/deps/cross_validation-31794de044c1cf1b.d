/root/repo/target/debug/deps/cross_validation-31794de044c1cf1b.d: tests/cross_validation.rs Cargo.toml

/root/repo/target/debug/deps/libcross_validation-31794de044c1cf1b.rmeta: tests/cross_validation.rs Cargo.toml

tests/cross_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
