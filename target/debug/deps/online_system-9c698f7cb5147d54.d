/root/repo/target/debug/deps/online_system-9c698f7cb5147d54.d: tests/online_system.rs

/root/repo/target/debug/deps/online_system-9c698f7cb5147d54: tests/online_system.rs

tests/online_system.rs:
