/root/repo/target/debug/deps/pctl-ba237e31ee7cc554.d: src/bin/pctl.rs

/root/repo/target/debug/deps/pctl-ba237e31ee7cc554: src/bin/pctl.rs

src/bin/pctl.rs:
