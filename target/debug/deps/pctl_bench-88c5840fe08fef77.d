/root/repo/target/debug/deps/pctl_bench-88c5840fe08fef77.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpctl_bench-88c5840fe08fef77.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
