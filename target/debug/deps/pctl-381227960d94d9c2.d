/root/repo/target/debug/deps/pctl-381227960d94d9c2.d: src/bin/pctl.rs Cargo.toml

/root/repo/target/debug/deps/libpctl-381227960d94d9c2.rmeta: src/bin/pctl.rs Cargo.toml

src/bin/pctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
