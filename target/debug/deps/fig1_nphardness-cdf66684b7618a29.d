/root/repo/target/debug/deps/fig1_nphardness-cdf66684b7618a29.d: crates/bench/src/bin/fig1_nphardness.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_nphardness-cdf66684b7618a29.rmeta: crates/bench/src/bin/fig1_nphardness.rs Cargo.toml

crates/bench/src/bin/fig1_nphardness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
