/root/repo/target/debug/deps/proptests-a78d1c75414d10b2.d: crates/deposet/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a78d1c75414d10b2: crates/deposet/tests/proptests.rs

crates/deposet/tests/proptests.rs:
