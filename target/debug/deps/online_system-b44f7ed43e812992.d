/root/repo/target/debug/deps/online_system-b44f7ed43e812992.d: tests/online_system.rs Cargo.toml

/root/repo/target/debug/deps/libonline_system-b44f7ed43e812992.rmeta: tests/online_system.rs Cargo.toml

tests/online_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
