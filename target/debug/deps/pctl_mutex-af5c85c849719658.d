/root/repo/target/debug/deps/pctl_mutex-af5c85c849719658.d: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/ft_antitoken.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

/root/repo/target/debug/deps/libpctl_mutex-af5c85c849719658.rlib: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/ft_antitoken.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

/root/repo/target/debug/deps/libpctl_mutex-af5c85c849719658.rmeta: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/ft_antitoken.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

crates/mutex/src/lib.rs:
crates/mutex/src/antitoken.rs:
crates/mutex/src/central.rs:
crates/mutex/src/compare.rs:
crates/mutex/src/driver.rs:
crates/mutex/src/ft_antitoken.rs:
crates/mutex/src/multi.rs:
crates/mutex/src/suzuki.rs:
