/root/repo/target/debug/deps/pctl_replay-a60825a1c050d788.d: crates/replay/src/lib.rs crates/replay/src/reduction.rs

/root/repo/target/debug/deps/libpctl_replay-a60825a1c050d788.rlib: crates/replay/src/lib.rs crates/replay/src/reduction.rs

/root/repo/target/debug/deps/libpctl_replay-a60825a1c050d788.rmeta: crates/replay/src/lib.rs crates/replay/src/reduction.rs

crates/replay/src/lib.rs:
crates/replay/src/reduction.rs:
