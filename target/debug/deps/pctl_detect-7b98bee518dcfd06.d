/root/repo/target/debug/deps/pctl_detect-7b98bee518dcfd06.d: crates/detect/src/lib.rs crates/detect/src/conjunctive.rs crates/detect/src/lattice_check.rs crates/detect/src/online_checker.rs crates/detect/src/snapshot.rs crates/detect/src/strong.rs

/root/repo/target/debug/deps/pctl_detect-7b98bee518dcfd06: crates/detect/src/lib.rs crates/detect/src/conjunctive.rs crates/detect/src/lattice_check.rs crates/detect/src/online_checker.rs crates/detect/src/snapshot.rs crates/detect/src/strong.rs

crates/detect/src/lib.rs:
crates/detect/src/conjunctive.rs:
crates/detect/src/lattice_check.rs:
crates/detect/src/online_checker.rs:
crates/detect/src/snapshot.rs:
crates/detect/src/strong.rs:
