/root/repo/target/debug/deps/pctl_sim-a84267ab46245dbb.d: crates/sim/src/lib.rs crates/sim/src/faults.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/pctl_sim-a84267ab46245dbb: crates/sim/src/lib.rs crates/sim/src/faults.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/faults.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
