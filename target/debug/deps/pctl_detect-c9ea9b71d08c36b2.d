/root/repo/target/debug/deps/pctl_detect-c9ea9b71d08c36b2.d: crates/detect/src/lib.rs crates/detect/src/conjunctive.rs crates/detect/src/lattice_check.rs crates/detect/src/online_checker.rs crates/detect/src/snapshot.rs crates/detect/src/strong.rs Cargo.toml

/root/repo/target/debug/deps/libpctl_detect-c9ea9b71d08c36b2.rmeta: crates/detect/src/lib.rs crates/detect/src/conjunctive.rs crates/detect/src/lattice_check.rs crates/detect/src/online_checker.rs crates/detect/src/snapshot.rs crates/detect/src/strong.rs Cargo.toml

crates/detect/src/lib.rs:
crates/detect/src/conjunctive.rs:
crates/detect/src/lattice_check.rs:
crates/detect/src/online_checker.rs:
crates/detect/src/snapshot.rs:
crates/detect/src/strong.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
