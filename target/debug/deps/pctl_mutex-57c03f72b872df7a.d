/root/repo/target/debug/deps/pctl_mutex-57c03f72b872df7a.d: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/ft_antitoken.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs Cargo.toml

/root/repo/target/debug/deps/libpctl_mutex-57c03f72b872df7a.rmeta: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/ft_antitoken.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs Cargo.toml

crates/mutex/src/lib.rs:
crates/mutex/src/antitoken.rs:
crates/mutex/src/central.rs:
crates/mutex/src/compare.rs:
crates/mutex/src/driver.rs:
crates/mutex/src/ft_antitoken.rs:
crates/mutex/src/multi.rs:
crates/mutex/src/suzuki.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
