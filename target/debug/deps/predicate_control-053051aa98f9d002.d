/root/repo/target/debug/deps/predicate_control-053051aa98f9d002.d: src/lib.rs

/root/repo/target/debug/deps/libpredicate_control-053051aa98f9d002.rlib: src/lib.rs

/root/repo/target/debug/deps/libpredicate_control-053051aa98f9d002.rmeta: src/lib.rs

src/lib.rs:
