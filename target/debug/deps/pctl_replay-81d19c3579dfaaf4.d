/root/repo/target/debug/deps/pctl_replay-81d19c3579dfaaf4.d: crates/replay/src/lib.rs crates/replay/src/reduction.rs

/root/repo/target/debug/deps/libpctl_replay-81d19c3579dfaaf4.rlib: crates/replay/src/lib.rs crates/replay/src/reduction.rs

/root/repo/target/debug/deps/libpctl_replay-81d19c3579dfaaf4.rmeta: crates/replay/src/lib.rs crates/replay/src/reduction.rs

crates/replay/src/lib.rs:
crates/replay/src/reduction.rs:
