/root/repo/target/debug/deps/predicate_control-1e129ebc43822023.d: src/lib.rs

/root/repo/target/debug/deps/libpredicate_control-1e129ebc43822023.rlib: src/lib.rs

/root/repo/target/debug/deps/libpredicate_control-1e129ebc43822023.rmeta: src/lib.rs

src/lib.rs:
