/root/repo/target/debug/deps/fig1_nphardness-eb4eee616b92fabe.d: crates/bench/src/bin/fig1_nphardness.rs

/root/repo/target/debug/deps/fig1_nphardness-eb4eee616b92fabe: crates/bench/src/bin/fig1_nphardness.rs

crates/bench/src/bin/fig1_nphardness.rs:
