/root/repo/target/debug/deps/pctl_causality-0e7527464e5458c3.d: crates/causality/src/lib.rs crates/causality/src/graph.rs crates/causality/src/ids.rs crates/causality/src/lamport.rs crates/causality/src/order.rs crates/causality/src/vclock.rs

/root/repo/target/debug/deps/libpctl_causality-0e7527464e5458c3.rlib: crates/causality/src/lib.rs crates/causality/src/graph.rs crates/causality/src/ids.rs crates/causality/src/lamport.rs crates/causality/src/order.rs crates/causality/src/vclock.rs

/root/repo/target/debug/deps/libpctl_causality-0e7527464e5458c3.rmeta: crates/causality/src/lib.rs crates/causality/src/graph.rs crates/causality/src/ids.rs crates/causality/src/lamport.rs crates/causality/src/order.rs crates/causality/src/vclock.rs

crates/causality/src/lib.rs:
crates/causality/src/graph.rs:
crates/causality/src/ids.rs:
crates/causality/src/lamport.rs:
crates/causality/src/order.rs:
crates/causality/src/vclock.rs:
