/root/repo/target/debug/deps/fault_determinism-974150ca71eeab48.d: crates/sim/tests/fault_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libfault_determinism-974150ca71eeab48.rmeta: crates/sim/tests/fault_determinism.rs Cargo.toml

crates/sim/tests/fault_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
