/root/repo/target/debug/deps/cli-9b221d71f2c0b98b.d: tests/cli.rs

/root/repo/target/debug/deps/cli-9b221d71f2c0b98b: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_pctl=/root/repo/target/debug/pctl
