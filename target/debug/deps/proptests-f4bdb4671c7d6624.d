/root/repo/target/debug/deps/proptests-f4bdb4671c7d6624.d: crates/causality/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-f4bdb4671c7d6624.rmeta: crates/causality/tests/proptests.rs Cargo.toml

crates/causality/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
