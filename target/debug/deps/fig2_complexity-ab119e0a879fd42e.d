/root/repo/target/debug/deps/fig2_complexity-ab119e0a879fd42e.d: crates/bench/src/bin/fig2_complexity.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_complexity-ab119e0a879fd42e.rmeta: crates/bench/src/bin/fig2_complexity.rs Cargo.toml

crates/bench/src/bin/fig2_complexity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
