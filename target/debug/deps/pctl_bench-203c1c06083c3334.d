/root/repo/target/debug/deps/pctl_bench-203c1c06083c3334.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pctl_bench-203c1c06083c3334: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
