/root/repo/target/debug/deps/pctl_deposet-467bcabb5cea406a.d: crates/deposet/src/lib.rs crates/deposet/src/builder.rs crates/deposet/src/dot.rs crates/deposet/src/event.rs crates/deposet/src/generator.rs crates/deposet/src/global.rs crates/deposet/src/intervals.rs crates/deposet/src/lattice.rs crates/deposet/src/model.rs crates/deposet/src/predicate.rs crates/deposet/src/scenarios.rs crates/deposet/src/sequences.rs crates/deposet/src/state.rs crates/deposet/src/trace.rs

/root/repo/target/debug/deps/pctl_deposet-467bcabb5cea406a: crates/deposet/src/lib.rs crates/deposet/src/builder.rs crates/deposet/src/dot.rs crates/deposet/src/event.rs crates/deposet/src/generator.rs crates/deposet/src/global.rs crates/deposet/src/intervals.rs crates/deposet/src/lattice.rs crates/deposet/src/model.rs crates/deposet/src/predicate.rs crates/deposet/src/scenarios.rs crates/deposet/src/sequences.rs crates/deposet/src/state.rs crates/deposet/src/trace.rs

crates/deposet/src/lib.rs:
crates/deposet/src/builder.rs:
crates/deposet/src/dot.rs:
crates/deposet/src/event.rs:
crates/deposet/src/generator.rs:
crates/deposet/src/global.rs:
crates/deposet/src/intervals.rs:
crates/deposet/src/lattice.rs:
crates/deposet/src/model.rs:
crates/deposet/src/predicate.rs:
crates/deposet/src/scenarios.rs:
crates/deposet/src/sequences.rs:
crates/deposet/src/state.rs:
crates/deposet/src/trace.rs:
