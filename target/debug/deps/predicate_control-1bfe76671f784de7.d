/root/repo/target/debug/deps/predicate_control-1bfe76671f784de7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpredicate_control-1bfe76671f784de7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
