/root/repo/target/debug/deps/fig4_debugging-11d1b9aaafe7b996.d: crates/bench/src/bin/fig4_debugging.rs

/root/repo/target/debug/deps/fig4_debugging-11d1b9aaafe7b996: crates/bench/src/bin/fig4_debugging.rs

crates/bench/src/bin/fig4_debugging.rs:
