/root/repo/target/debug/deps/cross_validation-56646a52e1b158bf.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-56646a52e1b158bf: tests/cross_validation.rs

tests/cross_validation.rs:
