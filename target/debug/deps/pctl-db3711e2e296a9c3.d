/root/repo/target/debug/deps/pctl-db3711e2e296a9c3.d: src/bin/pctl.rs

/root/repo/target/debug/deps/pctl-db3711e2e296a9c3: src/bin/pctl.rs

src/bin/pctl.rs:
