/root/repo/target/debug/deps/sgsd_np-73f753cd22116ba3.d: crates/bench/benches/sgsd_np.rs Cargo.toml

/root/repo/target/debug/deps/libsgsd_np-73f753cd22116ba3.rmeta: crates/bench/benches/sgsd_np.rs Cargo.toml

crates/bench/benches/sgsd_np.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
