/root/repo/target/debug/deps/end_to_end-fcb7d87324027c18.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-fcb7d87324027c18: tests/end_to_end.rs

tests/end_to_end.rs:
