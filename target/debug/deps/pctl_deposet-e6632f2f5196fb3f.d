/root/repo/target/debug/deps/pctl_deposet-e6632f2f5196fb3f.d: crates/deposet/src/lib.rs crates/deposet/src/builder.rs crates/deposet/src/dot.rs crates/deposet/src/event.rs crates/deposet/src/generator.rs crates/deposet/src/global.rs crates/deposet/src/intervals.rs crates/deposet/src/lattice.rs crates/deposet/src/model.rs crates/deposet/src/predicate.rs crates/deposet/src/scenarios.rs crates/deposet/src/sequences.rs crates/deposet/src/state.rs crates/deposet/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libpctl_deposet-e6632f2f5196fb3f.rmeta: crates/deposet/src/lib.rs crates/deposet/src/builder.rs crates/deposet/src/dot.rs crates/deposet/src/event.rs crates/deposet/src/generator.rs crates/deposet/src/global.rs crates/deposet/src/intervals.rs crates/deposet/src/lattice.rs crates/deposet/src/model.rs crates/deposet/src/predicate.rs crates/deposet/src/scenarios.rs crates/deposet/src/sequences.rs crates/deposet/src/state.rs crates/deposet/src/trace.rs Cargo.toml

crates/deposet/src/lib.rs:
crates/deposet/src/builder.rs:
crates/deposet/src/dot.rs:
crates/deposet/src/event.rs:
crates/deposet/src/generator.rs:
crates/deposet/src/global.rs:
crates/deposet/src/intervals.rs:
crates/deposet/src/lattice.rs:
crates/deposet/src/model.rs:
crates/deposet/src/predicate.rs:
crates/deposet/src/scenarios.rs:
crates/deposet/src/sequences.rs:
crates/deposet/src/state.rs:
crates/deposet/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
