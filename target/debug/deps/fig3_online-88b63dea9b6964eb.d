/root/repo/target/debug/deps/fig3_online-88b63dea9b6964eb.d: crates/bench/src/bin/fig3_online.rs

/root/repo/target/debug/deps/fig3_online-88b63dea9b6964eb: crates/bench/src/bin/fig3_online.rs

crates/bench/src/bin/fig3_online.rs:
