/root/repo/target/debug/deps/proptests-6d8233e282cb623d.d: crates/causality/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6d8233e282cb623d: crates/causality/tests/proptests.rs

crates/causality/tests/proptests.rs:
