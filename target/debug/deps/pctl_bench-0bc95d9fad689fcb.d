/root/repo/target/debug/deps/pctl_bench-0bc95d9fad689fcb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpctl_bench-0bc95d9fad689fcb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpctl_bench-0bc95d9fad689fcb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
