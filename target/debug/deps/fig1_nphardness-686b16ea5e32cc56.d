/root/repo/target/debug/deps/fig1_nphardness-686b16ea5e32cc56.d: crates/bench/src/bin/fig1_nphardness.rs

/root/repo/target/debug/deps/fig1_nphardness-686b16ea5e32cc56: crates/bench/src/bin/fig1_nphardness.rs

crates/bench/src/bin/fig1_nphardness.rs:
