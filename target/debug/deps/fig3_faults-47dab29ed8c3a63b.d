/root/repo/target/debug/deps/fig3_faults-47dab29ed8c3a63b.d: crates/bench/src/bin/fig3_faults.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_faults-47dab29ed8c3a63b.rmeta: crates/bench/src/bin/fig3_faults.rs Cargo.toml

crates/bench/src/bin/fig3_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
