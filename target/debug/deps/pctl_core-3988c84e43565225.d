/root/repo/target/debug/deps/pctl_core-3988c84e43565225.d: crates/core/src/lib.rs crates/core/src/cnf_control.rs crates/core/src/control.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/online/ft.rs crates/core/src/overlap.rs crates/core/src/reduction.rs crates/core/src/sat.rs crates/core/src/sgsd.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libpctl_core-3988c84e43565225.rlib: crates/core/src/lib.rs crates/core/src/cnf_control.rs crates/core/src/control.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/online/ft.rs crates/core/src/overlap.rs crates/core/src/reduction.rs crates/core/src/sat.rs crates/core/src/sgsd.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libpctl_core-3988c84e43565225.rmeta: crates/core/src/lib.rs crates/core/src/cnf_control.rs crates/core/src/control.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/online/ft.rs crates/core/src/overlap.rs crates/core/src/reduction.rs crates/core/src/sat.rs crates/core/src/sgsd.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/cnf_control.rs:
crates/core/src/control.rs:
crates/core/src/offline.rs:
crates/core/src/online.rs:
crates/core/src/online/ft.rs:
crates/core/src/overlap.rs:
crates/core/src/reduction.rs:
crates/core/src/sat.rs:
crates/core/src/sgsd.rs:
crates/core/src/verify.rs:
