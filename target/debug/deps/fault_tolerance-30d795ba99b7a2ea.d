/root/repo/target/debug/deps/fault_tolerance-30d795ba99b7a2ea.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-30d795ba99b7a2ea: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
