/root/repo/target/debug/deps/pctl-3e00f53f626665d8.d: src/bin/pctl.rs Cargo.toml

/root/repo/target/debug/deps/libpctl-3e00f53f626665d8.rmeta: src/bin/pctl.rs Cargo.toml

src/bin/pctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
