/root/repo/target/debug/deps/proptest_integration-b1fe64f2f589ed81.d: tests/proptest_integration.rs

/root/repo/target/debug/deps/proptest_integration-b1fe64f2f589ed81: tests/proptest_integration.rs

tests/proptest_integration.rs:
