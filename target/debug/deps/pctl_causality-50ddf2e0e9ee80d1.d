/root/repo/target/debug/deps/pctl_causality-50ddf2e0e9ee80d1.d: crates/causality/src/lib.rs crates/causality/src/graph.rs crates/causality/src/ids.rs crates/causality/src/lamport.rs crates/causality/src/order.rs crates/causality/src/vclock.rs

/root/repo/target/debug/deps/pctl_causality-50ddf2e0e9ee80d1: crates/causality/src/lib.rs crates/causality/src/graph.rs crates/causality/src/ids.rs crates/causality/src/lamport.rs crates/causality/src/order.rs crates/causality/src/vclock.rs

crates/causality/src/lib.rs:
crates/causality/src/graph.rs:
crates/causality/src/ids.rs:
crates/causality/src/lamport.rs:
crates/causality/src/order.rs:
crates/causality/src/vclock.rs:
