/root/repo/target/debug/deps/pctl_core-0ebe39096b1c0319.d: crates/core/src/lib.rs crates/core/src/cnf_control.rs crates/core/src/control.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/online/ft.rs crates/core/src/overlap.rs crates/core/src/reduction.rs crates/core/src/sat.rs crates/core/src/sgsd.rs crates/core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libpctl_core-0ebe39096b1c0319.rmeta: crates/core/src/lib.rs crates/core/src/cnf_control.rs crates/core/src/control.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/online/ft.rs crates/core/src/overlap.rs crates/core/src/reduction.rs crates/core/src/sat.rs crates/core/src/sgsd.rs crates/core/src/verify.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cnf_control.rs:
crates/core/src/control.rs:
crates/core/src/offline.rs:
crates/core/src/online.rs:
crates/core/src/online/ft.rs:
crates/core/src/overlap.rs:
crates/core/src/reduction.rs:
crates/core/src/sat.rs:
crates/core/src/sgsd.rs:
crates/core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
