/root/repo/target/debug/deps/cli-50e21ee13e36d19d.d: tests/cli.rs

/root/repo/target/debug/deps/cli-50e21ee13e36d19d: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_pctl=/root/repo/target/debug/pctl
