/root/repo/target/debug/deps/proptest_integration-1024bfe7c9b4e567.d: tests/proptest_integration.rs

/root/repo/target/debug/deps/proptest_integration-1024bfe7c9b4e567: tests/proptest_integration.rs

tests/proptest_integration.rs:
