/root/repo/target/debug/deps/pctl-9691e60a45872151.d: src/bin/pctl.rs

/root/repo/target/debug/deps/pctl-9691e60a45872151: src/bin/pctl.rs

src/bin/pctl.rs:
