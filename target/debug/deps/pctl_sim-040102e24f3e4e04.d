/root/repo/target/debug/deps/pctl_sim-040102e24f3e4e04.d: crates/sim/src/lib.rs crates/sim/src/faults.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libpctl_sim-040102e24f3e4e04.rmeta: crates/sim/src/lib.rs crates/sim/src/faults.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/faults.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
