/root/repo/target/debug/deps/pctl_sim-7e89d7ee6073e5f7.d: crates/sim/src/lib.rs crates/sim/src/faults.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libpctl_sim-7e89d7ee6073e5f7.rlib: crates/sim/src/lib.rs crates/sim/src/faults.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libpctl_sim-7e89d7ee6073e5f7.rmeta: crates/sim/src/lib.rs crates/sim/src/faults.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/faults.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
