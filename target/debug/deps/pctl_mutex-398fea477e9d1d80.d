/root/repo/target/debug/deps/pctl_mutex-398fea477e9d1d80.d: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

/root/repo/target/debug/deps/pctl_mutex-398fea477e9d1d80: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

crates/mutex/src/lib.rs:
crates/mutex/src/antitoken.rs:
crates/mutex/src/central.rs:
crates/mutex/src/compare.rs:
crates/mutex/src/driver.rs:
crates/mutex/src/multi.rs:
crates/mutex/src/suzuki.rs:
