/root/repo/target/debug/deps/pctl_bench-88ac62fb8a672564.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pctl_bench-88ac62fb8a672564: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
