/root/repo/target/debug/deps/pctl_causality-247874e3e987d090.d: crates/causality/src/lib.rs crates/causality/src/graph.rs crates/causality/src/ids.rs crates/causality/src/lamport.rs crates/causality/src/order.rs crates/causality/src/vclock.rs Cargo.toml

/root/repo/target/debug/deps/libpctl_causality-247874e3e987d090.rmeta: crates/causality/src/lib.rs crates/causality/src/graph.rs crates/causality/src/ids.rs crates/causality/src/lamport.rs crates/causality/src/order.rs crates/causality/src/vclock.rs Cargo.toml

crates/causality/src/lib.rs:
crates/causality/src/graph.rs:
crates/causality/src/ids.rs:
crates/causality/src/lamport.rs:
crates/causality/src/order.rs:
crates/causality/src/vclock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
