/root/repo/target/debug/deps/pctl-a2b0eeabd64fbb55.d: src/bin/pctl.rs

/root/repo/target/debug/deps/pctl-a2b0eeabd64fbb55: src/bin/pctl.rs

src/bin/pctl.rs:
