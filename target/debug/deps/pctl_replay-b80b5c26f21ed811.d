/root/repo/target/debug/deps/pctl_replay-b80b5c26f21ed811.d: crates/replay/src/lib.rs crates/replay/src/reduction.rs

/root/repo/target/debug/deps/pctl_replay-b80b5c26f21ed811: crates/replay/src/lib.rs crates/replay/src/reduction.rs

crates/replay/src/lib.rs:
crates/replay/src/reduction.rs:
