/root/repo/target/debug/deps/fig2_complexity-689e5651456a8daa.d: crates/bench/src/bin/fig2_complexity.rs

/root/repo/target/debug/deps/fig2_complexity-689e5651456a8daa: crates/bench/src/bin/fig2_complexity.rs

crates/bench/src/bin/fig2_complexity.rs:
