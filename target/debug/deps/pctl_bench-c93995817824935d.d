/root/repo/target/debug/deps/pctl_bench-c93995817824935d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpctl_bench-c93995817824935d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpctl_bench-c93995817824935d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
