/root/repo/target/debug/deps/online_system-b097e60e2abe223d.d: tests/online_system.rs

/root/repo/target/debug/deps/online_system-b097e60e2abe223d: tests/online_system.rs

tests/online_system.rs:
