/root/repo/target/debug/deps/proptests-05670a1111ff2850.d: crates/deposet/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-05670a1111ff2850.rmeta: crates/deposet/tests/proptests.rs Cargo.toml

crates/deposet/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
