/root/repo/target/debug/deps/fig2_complexity-4a556e4e576ac142.d: crates/bench/src/bin/fig2_complexity.rs

/root/repo/target/debug/deps/fig2_complexity-4a556e4e576ac142: crates/bench/src/bin/fig2_complexity.rs

crates/bench/src/bin/fig2_complexity.rs:
