/root/repo/target/debug/deps/fig2_complexity-6ef5779b749d2542.d: crates/bench/src/bin/fig2_complexity.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_complexity-6ef5779b749d2542.rmeta: crates/bench/src/bin/fig2_complexity.rs Cargo.toml

crates/bench/src/bin/fig2_complexity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
