/root/repo/target/debug/deps/pctl_mutex-57e809f0d4fe2e1f.d: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/ft_antitoken.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

/root/repo/target/debug/deps/pctl_mutex-57e809f0d4fe2e1f: crates/mutex/src/lib.rs crates/mutex/src/antitoken.rs crates/mutex/src/central.rs crates/mutex/src/compare.rs crates/mutex/src/driver.rs crates/mutex/src/ft_antitoken.rs crates/mutex/src/multi.rs crates/mutex/src/suzuki.rs

crates/mutex/src/lib.rs:
crates/mutex/src/antitoken.rs:
crates/mutex/src/central.rs:
crates/mutex/src/compare.rs:
crates/mutex/src/driver.rs:
crates/mutex/src/ft_antitoken.rs:
crates/mutex/src/multi.rs:
crates/mutex/src/suzuki.rs:
