/root/repo/target/debug/deps/cross_validation-c7dc450fb3db225b.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-c7dc450fb3db225b: tests/cross_validation.rs

tests/cross_validation.rs:
