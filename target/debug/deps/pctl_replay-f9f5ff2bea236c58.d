/root/repo/target/debug/deps/pctl_replay-f9f5ff2bea236c58.d: crates/replay/src/lib.rs crates/replay/src/reduction.rs Cargo.toml

/root/repo/target/debug/deps/libpctl_replay-f9f5ff2bea236c58.rmeta: crates/replay/src/lib.rs crates/replay/src/reduction.rs Cargo.toml

crates/replay/src/lib.rs:
crates/replay/src/reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
