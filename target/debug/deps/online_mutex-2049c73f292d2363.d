/root/repo/target/debug/deps/online_mutex-2049c73f292d2363.d: crates/bench/benches/online_mutex.rs Cargo.toml

/root/repo/target/debug/deps/libonline_mutex-2049c73f292d2363.rmeta: crates/bench/benches/online_mutex.rs Cargo.toml

crates/bench/benches/online_mutex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
