/root/repo/target/debug/deps/fig1_nphardness-ecbf8b7519c024b8.d: crates/bench/src/bin/fig1_nphardness.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_nphardness-ecbf8b7519c024b8.rmeta: crates/bench/src/bin/fig1_nphardness.rs Cargo.toml

crates/bench/src/bin/fig1_nphardness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
