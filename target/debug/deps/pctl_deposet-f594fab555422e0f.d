/root/repo/target/debug/deps/pctl_deposet-f594fab555422e0f.d: crates/deposet/src/lib.rs crates/deposet/src/builder.rs crates/deposet/src/dot.rs crates/deposet/src/event.rs crates/deposet/src/generator.rs crates/deposet/src/global.rs crates/deposet/src/intervals.rs crates/deposet/src/lattice.rs crates/deposet/src/model.rs crates/deposet/src/predicate.rs crates/deposet/src/scenarios.rs crates/deposet/src/sequences.rs crates/deposet/src/state.rs crates/deposet/src/trace.rs

/root/repo/target/debug/deps/libpctl_deposet-f594fab555422e0f.rlib: crates/deposet/src/lib.rs crates/deposet/src/builder.rs crates/deposet/src/dot.rs crates/deposet/src/event.rs crates/deposet/src/generator.rs crates/deposet/src/global.rs crates/deposet/src/intervals.rs crates/deposet/src/lattice.rs crates/deposet/src/model.rs crates/deposet/src/predicate.rs crates/deposet/src/scenarios.rs crates/deposet/src/sequences.rs crates/deposet/src/state.rs crates/deposet/src/trace.rs

/root/repo/target/debug/deps/libpctl_deposet-f594fab555422e0f.rmeta: crates/deposet/src/lib.rs crates/deposet/src/builder.rs crates/deposet/src/dot.rs crates/deposet/src/event.rs crates/deposet/src/generator.rs crates/deposet/src/global.rs crates/deposet/src/intervals.rs crates/deposet/src/lattice.rs crates/deposet/src/model.rs crates/deposet/src/predicate.rs crates/deposet/src/scenarios.rs crates/deposet/src/sequences.rs crates/deposet/src/state.rs crates/deposet/src/trace.rs

crates/deposet/src/lib.rs:
crates/deposet/src/builder.rs:
crates/deposet/src/dot.rs:
crates/deposet/src/event.rs:
crates/deposet/src/generator.rs:
crates/deposet/src/global.rs:
crates/deposet/src/intervals.rs:
crates/deposet/src/lattice.rs:
crates/deposet/src/model.rs:
crates/deposet/src/predicate.rs:
crates/deposet/src/scenarios.rs:
crates/deposet/src/sequences.rs:
crates/deposet/src/state.rs:
crates/deposet/src/trace.rs:
