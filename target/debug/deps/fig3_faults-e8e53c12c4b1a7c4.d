/root/repo/target/debug/deps/fig3_faults-e8e53c12c4b1a7c4.d: crates/bench/src/bin/fig3_faults.rs

/root/repo/target/debug/deps/fig3_faults-e8e53c12c4b1a7c4: crates/bench/src/bin/fig3_faults.rs

crates/bench/src/bin/fig3_faults.rs:
