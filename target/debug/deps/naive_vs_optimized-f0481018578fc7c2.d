/root/repo/target/debug/deps/naive_vs_optimized-f0481018578fc7c2.d: crates/bench/benches/naive_vs_optimized.rs Cargo.toml

/root/repo/target/debug/deps/libnaive_vs_optimized-f0481018578fc7c2.rmeta: crates/bench/benches/naive_vs_optimized.rs Cargo.toml

crates/bench/benches/naive_vs_optimized.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
