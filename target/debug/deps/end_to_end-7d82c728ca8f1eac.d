/root/repo/target/debug/deps/end_to_end-7d82c728ca8f1eac.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7d82c728ca8f1eac: tests/end_to_end.rs

tests/end_to_end.rs:
