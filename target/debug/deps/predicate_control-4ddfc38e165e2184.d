/root/repo/target/debug/deps/predicate_control-4ddfc38e165e2184.d: src/lib.rs

/root/repo/target/debug/deps/predicate_control-4ddfc38e165e2184: src/lib.rs

src/lib.rs:
