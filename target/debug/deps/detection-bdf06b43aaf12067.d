/root/repo/target/debug/deps/detection-bdf06b43aaf12067.d: crates/bench/benches/detection.rs Cargo.toml

/root/repo/target/debug/deps/libdetection-bdf06b43aaf12067.rmeta: crates/bench/benches/detection.rs Cargo.toml

crates/bench/benches/detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
