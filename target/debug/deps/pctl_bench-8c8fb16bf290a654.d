/root/repo/target/debug/deps/pctl_bench-8c8fb16bf290a654.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpctl_bench-8c8fb16bf290a654.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
