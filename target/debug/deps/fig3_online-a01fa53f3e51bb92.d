/root/repo/target/debug/deps/fig3_online-a01fa53f3e51bb92.d: crates/bench/src/bin/fig3_online.rs

/root/repo/target/debug/deps/fig3_online-a01fa53f3e51bb92: crates/bench/src/bin/fig3_online.rs

crates/bench/src/bin/fig3_online.rs:
