/root/repo/target/debug/deps/predicate_control-63b39e72b2c42ec1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpredicate_control-63b39e72b2c42ec1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
