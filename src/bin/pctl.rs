//! `pctl` — command-line active debugging for traced distributed
//! computations.
//!
//! Operates on the JSON trace format of `pctl-deposet` (see
//! `trace::to_json`). Typical session:
//!
//! ```text
//! pctl gen --workload pipelined --processes 4 --sections 6 --seed 7 > c1.json
//! pctl info c1.json
//! pctl detect c1.json --at-least-one-not cs
//! pctl control c1.json --at-least-one-not cs > control.json
//! pctl replay c1.json --control control.json --at-least-one-not cs
//! pctl dot c1.json > c1.dot
//! ```

use predicate_control::control::offline::{Engine, SelectPolicy};
use predicate_control::deposet::generator::{
    cs_workload, pipelined_workload, random_deposet, CsConfig, RandomConfig,
};
use predicate_control::deposet::{dot, lattice, trace, Deposet};
use predicate_control::obs::{chrome, jsonl, stats::EventStats, timeline, RingRecorder};
use predicate_control::prelude::*;
use predicate_control::replay::replay_recorded;
use std::process::ExitCode;

const USAGE: &str = "\
pctl — predicate control for active debugging of distributed programs

USAGE:
  pctl info <trace.json> [--shards N]       (N: rebuild the store under an
               explicit shard plan and print its shape)
  pctl detect <trace.json> (--at-least-one VAR | --at-least-one-not VAR |
               --conjunct PROC:VAR ... [--channels-empty])
  pctl control <trace.json> (--at-least-one VAR | --at-least-one-not VAR |
               --conjunct PROC:VAR ... [--channels-empty])
               [--naive] [--random-seed N]   (control relation JSON on stdout)
  pctl verify <trace.json> --control <control.json>
               (--at-least-one VAR | --at-least-one-not VAR |
               --conjunct PROC:VAR ...) [--limit N]
  pctl replay <trace.json> [--control <control.json>]
              [--at-least-one VAR | --at-least-one-not VAR]
              [--trace-out <chrome.json>] [--events-out <run.jsonl>]
                                            (export telemetry of the replay)
  pctl trace <input> [--control <control.json>] [--out <chrome.json>]
              (input: deposet trace JSON or telemetry JSONL; emits Chrome
               trace_event JSON for chrome://tracing or ui.perfetto.dev)
  pctl trace --remote HOST:PORT --session NAME [--out <chrome.json>]
              (pull a live daemon session's recent events — the Trace verb's
               bounded ring — and export them as a Chrome trace)
  pctl stats <input> [--prom]               (event-log statistics: per-kind
              counts, span durations, message latency percentiles;
              --prom emits Prometheus text exposition instead)
  pctl dot <trace.json> [--control <control.json>] [--vars]
  pctl gen --workload (cs|pipelined|random|ring) [--processes N]
           [--sections N] [--events N] [--seed N] [--fanout N] [--hops N]
           [--trace-out <chrome.json>]      (trace JSON on stdout; `ring`
            runs the actor-core ring_flood scenario through the simulator
            and exports its recorded deposet — processes × fanout × hops
            deliveries)
  pctl serve [--addr HOST:PORT] [--metrics HOST:PORT] [--max-sessions N]
             [--memory-budget BYTES] [--queue-depth N] [--idle-timeout-ms N]
             [--snapshot-dir DIR] [--fault-injection] [--no-telemetry]
             [--trace-ring N] [--slow-log FILE] [--slow-ms N]
             [--slow-log-max-bytes N] [--no-flight] [--flight-interval-ms N]
             [--flight-history N] [--postmortem-dir DIR]
             [--anomaly-window-ms N] [--slo-p95-us N] [--busy-spike-per-sec N]
                                            (run the streaming daemon in the
              foreground; stops on stdin EOF or a client Shutdown;
              --fault-injection enables the Crash/Sleep chaos verbs;
              --slow-log appends a JSONL record for every request slower
              than --slow-ms, rotating to FILE.1 past --slow-log-max-bytes;
              --trace-ring sizes the per-session event ring the Trace verb
              serves, 0 disables; --no-telemetry turns all request
              telemetry off. The flight recorder snapshots daemon state
              every --flight-interval-ms into a --flight-history-deep ring
              and, on each anomaly (worker poison, eviction, Busy spike
              over --busy-spike-per-sec, append p95 over --slo-p95-us,
              budget breach, rejected frame; one per kind per
              --anomaly-window-ms), dumps a postmortem bundle under
              --postmortem-dir; --no-flight disables it. With --metrics,
              /healthz and /readyz ride on the same endpoint)
  pctl postmortem <bundle-dir>              (validate a postmortem bundle
              dumped by the daemon and print its incident report: trigger,
              anomaly timeline, p50/p95 trajectory, top sessions)
  pctl stream <trace.json> --addr HOST:PORT
              (--at-least-one VAR | --at-least-one-not VAR |
               --conjunct PROC:VAR ...)
              [--session NAME] [--limit N] [--keep-open]
              (stream the trace into a daemon session event by event, then
               ask it to detect/control/verify at the final prefix; progress
               — events sent, Busy bounces, append p50 — goes to stderr)
  pctl top --addr HOST:PORT [--interval-ms N] [--once]
              (live per-session daemon dashboard over the Stats verb:
               appends, per-interval append/busy rates from poll deltas,
               bytes, queue depth, idle age, append p50/p95, query
               cache hit-rate; --once prints a single snapshot and exits)

The predicate flags build the disjunctive property  B = ∨ᵢ lᵢ  with
lᵢ = VAR (at-least-one) or lᵢ = ¬VAR (at-least-one-not) on every process.

Repeatable --conjunct PROC:VAR flags instead build the *regular* violation
∧ (VAR on process PROC) — a conjunction of locals the disjunctive wire form
cannot express — optionally ∧ channels-empty; queries then run through the
computation-slicing engine (detect is exact, control slice-then-delegates).
--quiet suppresses diagnostic output on stderr.";

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => Some(it.next().unwrap().clone()),
                    _ => None,
                };
                flags.push((name.to_owned(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&Option<String>> {
        self.flags.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    fn value(&self, name: &str) -> Result<Option<&str>, String> {
        match self.flag(name) {
            None => Ok(None),
            Some(Some(v)) => Ok(Some(v)),
            Some(None) => Err(format!("--{name} requires a value")),
        }
    }

    /// Every value of a repeatable flag, in order (`--conjunct 0:cs
    /// --conjunct 1:cs`). Each occurrence must carry a value.
    fn values(&self, name: &str) -> Result<Vec<&str>, String> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| {
                v.as_deref()
                    .ok_or_else(|| format!("--{name} requires a value"))
            })
            .collect()
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name)? {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number '{v}'")),
        }
    }
}

fn load_trace(path: &str) -> Result<Deposet, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    trace::from_json(&json).map_err(|e| format!("{path}: {e}"))
}

fn load_control(path: &str) -> Result<ControlRelation, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("{path}: {e}"))
}

fn predicate(args: &Args, dep: &Deposet) -> Result<DisjunctivePredicate, String> {
    let n = dep.process_count();
    match (args.value("at-least-one")?, args.value("at-least-one-not")?) {
        (Some(v), None) => Ok(DisjunctivePredicate::at_least_one(n, v)),
        (None, Some(v)) => Ok(DisjunctivePredicate::at_least_one_not(n, v)),
        (None, None) => Err(
            "missing predicate: --at-least-one VAR, --at-least-one-not VAR, \
             or --conjunct PROC:VAR"
                .into(),
        ),
        _ => Err("give exactly one of --at-least-one / --at-least-one-not".into()),
    }
}

/// Parse the predicate-class flags. Repeatable `--conjunct PROC:VAR`
/// (plus optional `--channels-empty`) builds a regular class; without
/// them the classic disjunctive flags apply and this returns the
/// disjunctive class. Exactly one family may be used.
fn predicate_class(args: &Args, dep: &Deposet) -> Result<PredicateClass, String> {
    let conjuncts = args.values("conjunct")?;
    let channels = args.flag("channels-empty").is_some();
    if conjuncts.is_empty() && !channels {
        return Ok(PredicateClass::disjunctive(predicate(args, dep)?));
    }
    if args.flag("at-least-one").is_some() || args.flag("at-least-one-not").is_some() {
        return Err(
            "--conjunct/--channels-empty (regular class) cannot be combined with \
             --at-least-one/--at-least-one-not (disjunctive class)"
                .into(),
        );
    }
    let mut parts = Vec::new();
    for c in &conjuncts {
        let (proc, var) = c
            .split_once(':')
            .ok_or_else(|| format!("--conjunct: expected PROC:VAR, got '{c}'"))?;
        let proc: usize = proc
            .parse()
            .map_err(|_| format!("--conjunct: bad process index '{proc}'"))?;
        parts.push(RegularPredicate::local(proc, LocalPredicate::var(var)));
    }
    if channels {
        parts.push(RegularPredicate::ChannelsEmpty);
    }
    let violation = if parts.len() == 1 {
        parts.pop().expect("one part")
    } else {
        RegularPredicate::And(parts)
    };
    let class = PredicateClass::regular(dep.process_count() as u32, violation);
    class
        .validate(dep.process_count())
        .map_err(|e| format!("bad predicate class: {e}"))?;
    Ok(class)
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("info: missing trace path")?;
    let mut dep = load_trace(path)?;
    // --shards N rebuilds the computation store under an explicit shard
    // plan so its shape (rounds, per-shard slabs) can be inspected; the
    // clocks are bit-identical to the default plan by construction.
    if args.flag("shards").is_some() {
        let k: usize = args.num("shards", 1)?;
        if k == 0 {
            return Err("--shards: must be at least 1".into());
        }
        let n = dep.process_count();
        let (st, ev, ms) = dep.into_parts();
        dep = predicate_control::deposet::Deposet::from_parts_with_plan(
            st,
            ev,
            ms,
            Some(predicate_control::deposet::ShardPlan::with_shards(n, k)),
        )
        .map_err(|e| format!("{path}: {e}"))?;
    }
    println!("processes : {}", dep.process_count());
    println!("states    : {}", dep.total_states());
    println!("messages  : {}", dep.messages().len());
    for p in dep.processes() {
        let vars: std::collections::BTreeSet<&str> = dep
            .states_of(p)
            .iter()
            .flat_map(|s| s.vars.iter().map(|(k, _)| k))
            .collect();
        println!(
            "  {p}: {} states, vars {{{}}}",
            dep.len_of(p),
            vars.into_iter().collect::<Vec<_>>().join(", ")
        );
    }
    let sc = dep.sharded_clocks();
    println!(
        "store     : {} shard(s), {} fill round(s), {} clock words total",
        sc.shard_count(),
        sc.rounds(),
        sc.total_allocated_words()
    );
    if sc.shard_count() > 1 {
        for s in 0..sc.shard_count() {
            let procs = dep.shard_plan().processes_of(s);
            println!(
                "  shard {s}: processes {}..{}, {} words",
                procs.start,
                procs.end,
                sc.arena(s).allocated_words()
            );
        }
    }
    match lattice::count_consistent_global_states(&dep, 2_000_000) {
        Ok(c) => println!("consistent global states: {c}"),
        Err(_) => println!("consistent global states: > 2,000,000 (not enumerated)"),
    }
    Ok(())
}

fn cmd_detect(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("detect: missing trace path")?;
    let dep = load_trace(path)?;
    let class = predicate_class(args, &dep)?;
    if let PredicateClass::Regular { .. } = &class {
        let engine = PredicateEngine::for_class(&dep, &class).map_err(|e| format!("{e}"))?;
        let slice = engine.slice().expect("regular engine carries a slice");
        if args.flag("quiet").is_none() {
            eprintln!(
                "slice: {}/{} state(s) survive in {} join-irreducible class(es)",
                slice.surviving_states(),
                dep.total_states(),
                slice.class_count()
            );
        }
        match engine.detect_violation() {
            Some(g) => {
                println!("VIOLATION possible at consistent global state {g}");
                for p in dep.processes() {
                    let s = g.state_of(p);
                    println!("  {p} @ state {}: {}", s.index, dep.state(s));
                }
            }
            None => println!("no consistent global state violates the property"),
        }
        return Ok(());
    }
    let pred = predicate(args, &dep)?;
    match detect_disjunctive_violation(&dep, &pred) {
        Some(g) => {
            println!("VIOLATION possible at consistent global state {g}");
            for p in dep.processes() {
                let s = g.state_of(p);
                println!("  {p} @ state {}: {}", s.index, dep.state(s));
            }
            if let Some(w) = definitely_all_false(&dep, &pred) {
                println!("moreover the property is INFEASIBLE (overlapping intervals):");
                for iv in w {
                    println!("  {} states [{}..{}]", iv.process, iv.lo, iv.hi);
                }
            }
        }
        None => println!("no consistent global state violates the property"),
    }
    Ok(())
}

fn cmd_control(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("control: missing trace path")?;
    let dep = load_trace(path)?;
    let class = predicate_class(args, &dep)?;
    let engine = if args.flag("naive").is_some() {
        Engine::Naive
    } else {
        Engine::Optimized
    };
    let policy = match args.value("random-seed")? {
        Some(s) => SelectPolicy::Random {
            seed: s.parse().map_err(|_| "--random-seed: bad number")?,
        },
        None => SelectPolicy::First,
    };
    if let PredicateClass::Regular { .. } = &class {
        let eng = PredicateEngine::for_class(&dep, &class).map_err(|e| format!("{e}"))?;
        return match eng.control(OfflineOptions { policy, engine }) {
            Ok(rel) => {
                if args.flag("quiet").is_none() {
                    eprintln!("control relation with {} tuple(s): {rel}", rel.len());
                }
                println!(
                    "{}",
                    serde_json::to_string_pretty(&rel).expect("serializable")
                );
                Ok(())
            }
            Err(inf) => Err(format!("{inf}")),
        };
    }
    let pred = predicate(args, &dep)?;
    match control_disjunctive(&dep, &pred, OfflineOptions { policy, engine }) {
        Ok(rel) => {
            if args.flag("quiet").is_none() {
                eprintln!("control relation with {} tuple(s): {rel}", rel.len());
            }
            println!(
                "{}",
                serde_json::to_string_pretty(&rel).expect("serializable")
            );
            Ok(())
        }
        Err(inf) => Err(format!("{inf}")),
    }
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("verify: missing trace path")?;
    let dep = load_trace(path)?;
    let class = predicate_class(args, &dep)?;
    let cpath = args.value("control")?.ok_or("verify: missing --control")?;
    let rel = load_control(cpath)?;
    let limit = args.num("limit", 2_000_000usize)?;
    if let PredicateClass::Regular { .. } = &class {
        let eng = PredicateEngine::for_class(&dep, &class).map_err(|e| format!("{e}"))?;
        eng.verify(&rel, limit).map_err(|e| format!("{e}"))?;
        println!(
            "OK: every consistent global state of the controlled computation satisfies the property"
        );
        return Ok(());
    }
    let pred = predicate(args, &dep)?;
    verify_disjunctive(&dep, &pred, &rel, limit).map_err(|e| format!("{e}"))?;
    println!(
        "OK: every consistent global state of the controlled computation satisfies the property"
    );
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("replay: missing trace path")?;
    let dep = load_trace(path)?;
    let rel = match args.value("control")? {
        Some(p) => load_control(p)?,
        None => ControlRelation::empty(),
    };
    let trace_out = args.value("trace-out")?.map(str::to_owned);
    let events_out = args.value("events-out")?.map(str::to_owned);
    let out = if trace_out.is_some() || events_out.is_some() {
        // 2^20 events is plenty for CLI-sized traces; RingRecorder drops
        // oldest beyond that rather than growing unboundedly.
        replay_recorded(
            &dep,
            &rel,
            &ReplayConfig::default(),
            Box::new(RingRecorder::new(1 << 20)),
        )
    } else {
        replay(&dep, &rel, &ReplayConfig::default())
    };
    if trace_out.is_some() || events_out.is_some() {
        let events = out.sim.events();
        if let Some(f) = &trace_out {
            let json = chrome::chrome_trace(&events, &timeline::lane_names(&dep));
            std::fs::write(f, json).map_err(|e| format!("{f}: {e}"))?;
            if args.flag("quiet").is_none() {
                eprintln!("wrote Chrome trace ({} events) to {f}", events.len());
            }
        }
        if let Some(f) = &events_out {
            std::fs::write(f, jsonl::to_jsonl(&events)).map_err(|e| format!("{f}: {e}"))?;
            if args.flag("quiet").is_none() {
                eprintln!("wrote telemetry JSONL ({} events) to {f}", events.len());
            }
        }
    }
    println!(
        "replay: completed={} faithful={} control messages={} stalls={}",
        out.completed(),
        out.fidelity(&dep),
        out.sim.metrics.counter("msgs_ctrl"),
        out.sim.metrics.counter("replay_stalls"),
    );
    if !out.completed() {
        return Err("replay did not complete".into());
    }
    if args.flag("at-least-one").is_some() || args.flag("at-least-one-not").is_some() {
        let pred = predicate(args, &dep)?;
        match detect_disjunctive_violation(out.deposet(), &pred) {
            Some(g) => println!("replayed computation still violates the property at {g}"),
            None => println!("replayed computation satisfies the property on every consistent cut"),
        }
    }
    Ok(())
}

fn cmd_dot(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("dot: missing trace path")?;
    let dep = load_trace(path)?;
    let extra = match args.value("control")? {
        Some(p) => load_control(p)?.pairs().to_vec(),
        None => Vec::new(),
    };
    let opts = dot::DotOptions {
        extra_edges: extra,
        highlights: vec![],
        show_vars: args.flag("vars").is_some(),
    };
    print!("{}", dot::to_dot(&dep, &opts));
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let workload = args
        .value("workload")?
        .ok_or("gen: missing --workload")?
        .to_owned();
    let processes = args.num("processes", 4usize)?;
    let sections = args.num("sections", 6usize)?;
    let events = args.num("events", 40usize)?;
    let seed = args.num("seed", 0u64)?;
    let dep = match workload.as_str() {
        "cs" => cs_workload(
            &CsConfig {
                processes,
                sections_per_process: sections,
                max_cs_len: 3,
                max_gap_len: 3,
            },
            seed,
        ),
        "pipelined" => pipelined_workload(
            &CsConfig {
                processes,
                sections_per_process: sections,
                max_cs_len: 3,
                max_gap_len: 3,
            },
            seed,
        ),
        "random" => random_deposet(
            &RandomConfig {
                processes,
                events,
                send_prob: 0.35,
                flip_prob: 0.35,
            },
            seed,
        ),
        "ring" => {
            // Drive the actor-model simulator core itself: ring_flood keeps
            // processes × fanout messages in flight for the whole run, so
            // this is also the cheapest way to produce a genuinely
            // message-dense trace for the downstream tools.
            use predicate_control::sim::scenarios::ring_flood;
            use predicate_control::sim::{DelayModel, SimConfig, SimTime};
            let fanout = args.num("fanout", 4u32)?;
            let hops = args.num("hops", 8u32)?;
            let procs = u32::try_from(processes)
                .map_err(|_| format!("gen: --processes {processes} exceeds u32"))?;
            let cfg = SimConfig {
                seed,
                delay: DelayModel::Uniform { min: 1, max: 20 },
                max_events: usize::MAX,
                max_time: SimTime(u64::MAX),
                ..SimConfig::default()
            };
            let r = ring_flood(procs, fanout, hops, cfg).run();
            r.deposet
        }
        other => {
            return Err(format!(
                "gen: unknown workload '{other}' (cs|pipelined|random|ring)"
            ))
        }
    };
    if let Some(f) = args.value("trace-out")? {
        let events = timeline::deposet_events(&dep, &[]);
        let json = chrome::chrome_trace(&events, &timeline::lane_names(&dep));
        std::fs::write(f, json).map_err(|e| format!("{f}: {e}"))?;
        if args.flag("quiet").is_none() {
            eprintln!("wrote Chrome trace ({} events) to {f}", events.len());
        }
    }
    println!("{}", trace::to_json(&dep));
    Ok(())
}

/// Load events from `path`: a telemetry JSONL log, or a deposet trace JSON
/// rendered through [`timeline::deposet_events`] (with `C→` arrows from
/// `control` when given).
fn load_events(
    args: &Args,
    path: &str,
) -> Result<(Vec<predicate_control::obs::Event>, Vec<String>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if let Ok(events) = jsonl::parse(&text) {
        let max_lane = events.iter().map(|e| e.lane).max().unwrap_or(0);
        let lanes = (0..=max_lane).map(|i| format!("p{i}")).collect();
        return Ok((events, lanes));
    }
    let dep = trace::from_json(&text)
        .map_err(|e| format!("{path}: neither a telemetry JSONL log nor a deposet trace: {e}"))?;
    let pairs = match args.value("control")? {
        Some(p) => load_control(p)?.pairs().to_vec(),
        None => Vec::new(),
    };
    Ok((
        timeline::deposet_events(&dep, &pairs),
        timeline::lane_names(&dep),
    ))
}

/// Pull a live session's recent events from a daemon (the `Trace` verb's
/// bounded ring). The ring drops oldest, so a receive whose matching send
/// has been evicted is pruned before export — Chrome flow events must
/// arrive in start/finish pairs.
fn load_remote_events(
    args: &Args,
    addr: &str,
) -> Result<(Vec<predicate_control::obs::Event>, Vec<String>), String> {
    let session = args
        .value("session")?
        .ok_or("trace: --remote needs --session NAME")?;
    let mut client =
        pctld::Client::connect(addr).map_err(|e| format!("trace: connect {addr}: {e}"))?;
    match client.trace(session).map_err(|e| format!("trace: {e}"))? {
        pctld::Response::Trace {
            mut events,
            dropped,
            processes,
        } => {
            if dropped > 0 && args.flag("quiet").is_none() {
                eprintln!(
                    "session '{session}': ring dropped {dropped} older event(s); \
                     exporting the most recent {}",
                    events.len()
                );
            }
            chrome::prune_orphan_flows(&mut events);
            let lanes = (0..processes.max(1)).map(|i| format!("p{i}")).collect();
            Ok((events, lanes))
        }
        other => Err(format!("trace: unexpected Trace answer {other:?}")),
    }
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let (events, lanes) = match args.value("remote")? {
        Some(addr) => load_remote_events(args, addr)?,
        None => {
            let path = args.positional.first().ok_or("trace: missing input path")?;
            load_events(args, path)?
        }
    };
    let json = chrome::chrome_trace(&events, &lanes);
    match args.value("out")? {
        Some(f) => {
            std::fs::write(f, &json).map_err(|e| format!("{f}: {e}"))?;
            if args.flag("quiet").is_none() {
                eprintln!("wrote Chrome trace ({} events) to {f}", events.len());
            }
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("stats: missing input path")?;
    let (events, _) = load_events(args, path)?;
    let stats = EventStats::from_events(&events);
    if args.flag("prom").is_some() {
        print!("{}", stats.to_prometheus());
    } else {
        print!("{}", stats.report());
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let defaults = pctld::Config::default();
    let cfg = pctld::Config {
        addr: args.value("addr")?.unwrap_or("127.0.0.1:7878").to_owned(),
        max_sessions: args.num("max-sessions", defaults.max_sessions)?,
        memory_budget: args.num("memory-budget", defaults.memory_budget)?,
        queue_depth: args.num("queue-depth", defaults.queue_depth)?,
        idle_timeout: std::time::Duration::from_millis(
            args.num("idle-timeout-ms", defaults.idle_timeout.as_millis() as u64)?,
        ),
        snapshot_dir: args.value("snapshot-dir")?.map(Into::into),
        fault_injection: args.flag("fault-injection").is_some(),
        telemetry: args.flag("no-telemetry").is_none(),
        trace_ring: args.num("trace-ring", defaults.trace_ring)?,
        slow_log: args.value("slow-log")?.map(Into::into),
        slow_ms: args.num("slow-ms", defaults.slow_ms)?,
        slow_log_max_bytes: args.num("slow-log-max-bytes", defaults.slow_log_max_bytes)?,
        flight: args.flag("no-flight").is_none(),
        flight_interval: std::time::Duration::from_millis(args.num(
            "flight-interval-ms",
            defaults.flight_interval.as_millis() as u64,
        )?),
        flight_history: args.num("flight-history", defaults.flight_history)?,
        postmortem_dir: args.value("postmortem-dir")?.map(Into::into),
        anomaly_window: std::time::Duration::from_millis(args.num(
            "anomaly-window-ms",
            defaults.anomaly_window.as_millis() as u64,
        )?),
        slo_p95_us: args.num("slo-p95-us", defaults.slo_p95_us)?,
        busy_spike_per_sec: args.num("busy-spike-per-sec", defaults.busy_spike_per_sec)?,
        ..defaults
    };
    let daemon = pctld::Daemon::spawn(cfg).map_err(|e| format!("serve: {e}"))?;
    eprintln!("pctld listening on {}", daemon.local_addr());
    let _metrics = match args.value("metrics")? {
        Some(addr) => {
            let m = daemon
                .spawn_metrics(addr)
                .map_err(|e| format!("serve: metrics on {addr}: {e}"))?;
            eprintln!(
                "metrics on http://{0}/metrics, health on http://{0}/healthz and /readyz",
                m.local_addr()
            );
            Some(m)
        }
        None => None,
    };
    // Foreground until stdin closes (Ctrl-D / pipe EOF) or a client sends
    // Shutdown. The stdin reader is a detached thread: if the daemon stops
    // remotely first, the thread dies with the process.
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    std::thread::spawn(move || {
        use std::io::Read;
        let mut sink = Vec::new();
        let _ = std::io::stdin().lock().read_to_end(&mut sink);
        let _ = tx.send(());
    });
    loop {
        if daemon.is_stopped() {
            eprintln!("shutdown requested by a client; draining");
            break;
        }
        match rx.recv_timeout(std::time::Duration::from_millis(200)) {
            Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                eprintln!("stdin closed; draining");
                break;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
        }
    }
    let leaked = daemon.shutdown();
    if leaked > 0 {
        return Err(format!("drain leaked {leaked} session(s)"));
    }
    eprintln!("drained cleanly, zero leaked sessions");
    Ok(())
}

fn cmd_stream(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("stream: missing trace path")?;
    let dep = load_trace(path)?;
    let class = predicate_class(args, &dep)?;
    let addr = args.value("addr")?.ok_or("stream: missing --addr")?;
    let session = args.value("session")?.unwrap_or("cli").to_owned();
    let limit: u64 = args.num("limit", 200_000u64)?;
    let mut client =
        pctld::Client::connect(addr).map_err(|e| format!("stream: connect {addr}: {e}"))?;
    let quiet = args.flag("quiet").is_some();
    let report = match &class {
        PredicateClass::Disjunctive(pred) => pctld::stream_deposet_with(
            &mut client,
            &session,
            pred.locals().to_vec(),
            &dep,
            pctld::RetryPolicy::default(),
            |p: &pctld::StreamProgress| {
                if !quiet {
                    eprintln!(
                        "stream: {}/{} event(s) sent, {} busy bounce(s), append p50 {}µs",
                        p.sent, p.total, p.busy_bounces, p.append_p50_us
                    );
                }
            },
        ),
        // The class rides in the Hello: the daemon routes this session's
        // queries through the slicing engine.
        PredicateClass::Regular { .. } => pctld::stream_deposet_class(
            &mut client,
            &session,
            class.clone(),
            &dep,
            pctld::RetryPolicy::default(),
        ),
    }
    .map_err(|e| format!("stream: {e}"))?;
    println!(
        "streamed {} event(s) into session '{session}' ({} busy bounce(s), append p50 {}µs)",
        report.appends, report.busy_bounces, report.append_p50_us
    );
    match client
        .detect(&session)
        .map_err(|e| format!("stream: {e}"))?
    {
        pctld::Response::Detect {
            violation: Some(cut),
        } => println!("detect : VIOLATION possible at cut {cut:?}"),
        pctld::Response::Detect { violation: None } => {
            println!("detect : no consistent global state violates the property")
        }
        other => return Err(format!("stream: unexpected detect answer {other:?}")),
    }
    match client
        .control(&session)
        .map_err(|e| format!("stream: {e}"))?
    {
        pctld::Response::Control {
            relation: Some(rel),
            ..
        } => println!("control: feasible, {} tuple(s): {rel}", rel.len()),
        pctld::Response::Control {
            witness: Some(w), ..
        } => println!(
            "control: INFEASIBLE ({} overlapping false intervals)",
            w.len()
        ),
        other => return Err(format!("stream: unexpected control answer {other:?}")),
    }
    match client
        .verify(&session, limit)
        .map_err(|e| format!("stream: {e}"))?
    {
        pctld::Response::Verify { ok, detail } => {
            println!("verify : {} — {detail}", if ok { "OK" } else { "FAILED" })
        }
        other => return Err(format!("stream: unexpected verify answer {other:?}")),
    }
    if args.flag("keep-open").is_none() {
        match client.close(&session).map_err(|e| format!("stream: {e}"))? {
            pctld::Response::Ok => {}
            other => return Err(format!("stream: close refused: {other:?}")),
        }
    } else {
        println!("session '{session}' left open (--keep-open)");
    }
    Ok(())
}

/// Per-interval rates computed from consecutive `Stats` polls — counters
/// are cumulative on the wire, so the dashboard differentiates them
/// client-side.
struct TopRates {
    appends_per_sec: f64,
    busy_per_sec: f64,
    /// Per-session appends/s, keyed by session name.
    per_session: std::collections::HashMap<String, f64>,
}

fn top_rates(
    prev: &pctld::StatsSnapshot,
    cur: &pctld::StatsSnapshot,
    dt: std::time::Duration,
) -> TopRates {
    let dt_s = dt.as_secs_f64().max(1e-9);
    let rate = |before: u64, now: u64| now.saturating_sub(before) as f64 / dt_s;
    let per_session = cur
        .per_session
        .iter()
        .map(|s| {
            let before = prev
                .per_session
                .iter()
                .find(|p| p.name == s.name)
                .map_or(0, |p| p.appends);
            (s.name.clone(), rate(before, s.appends))
        })
        .collect();
    TopRates {
        appends_per_sec: rate(prev.appends_total, cur.appends_total),
        busy_per_sec: rate(prev.busy_total, cur.busy_total),
        per_session,
    }
}

/// Render one `Stats` snapshot as the `pctl top` dashboard. Returns the
/// formatted screen so `--once` and the redraw loop share one layout.
/// `rates` is `None` on the first poll (and under `--once`): rate columns
/// render as `-` until a second poll gives a delta.
fn render_top(stats: &pctld::StatsSnapshot, rates: Option<&TopRates>, addr: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pctld {addr} — {} session(s), {} append(s), {} busy bounce(s), \
         {}/{} bytes, {} eviction(s), {} poisoned{}",
        stats.sessions,
        stats.appends_total,
        stats.busy_total,
        stats.approx_bytes,
        stats.budget_bytes,
        stats.evictions_total,
        stats.poisoned_total,
        match rates {
            Some(r) => format!(
                " | {:.0} append/s, {:.0} busy/s",
                r.appends_per_sec, r.busy_per_sec
            ),
            None => String::new(),
        },
    );
    let _ = writeln!(
        out,
        "{:<20} {:>9} {:>8} {:>12} {:>6} {:>9} {:>9} {:>9} {:>5}",
        "SESSION", "APPENDS", "APP/s", "BYTES", "QUEUE", "IDLE(ms)", "P50(µs)", "P95(µs)", "HIT%"
    );
    if stats.per_session.is_empty() {
        let _ = writeln!(out, "(no live sessions)");
    }
    for s in &stats.per_session {
        let app_rate = rates
            .and_then(|r| r.per_session.get(&s.name))
            .map_or("-".to_owned(), |r| format!("{r:.0}"));
        let hit = match s.queries {
            0 => "-".to_owned(),
            q => format!("{:.0}", s.cache_hits as f64 * 100.0 / q as f64),
        };
        let _ = writeln!(
            out,
            "{:<20} {:>9} {:>8} {:>12} {:>6} {:>9} {:>9} {:>9} {:>5}",
            s.name,
            s.appends,
            app_rate,
            s.approx_bytes,
            s.queue_depth,
            s.idle_ms,
            s.p50_us,
            s.p95_us,
            hit
        );
    }
    out
}

fn cmd_top(args: &Args) -> Result<(), String> {
    let addr = args.value("addr")?.ok_or("top: missing --addr")?;
    let interval = std::time::Duration::from_millis(args.num("interval-ms", 1000u64)?);
    let once = args.flag("once").is_some();
    let mut client =
        pctld::Client::connect(addr).map_err(|e| format!("top: connect {addr}: {e}"))?;
    let mut prev: Option<(pctld::StatsSnapshot, std::time::Instant)> = None;
    loop {
        let stats = client.stats_snapshot().map_err(|e| format!("top: {e}"))?;
        let now = std::time::Instant::now();
        let rates = prev
            .as_ref()
            .map(|(p, t)| top_rates(p, &stats, now.duration_since(*t)));
        let screen = render_top(&stats, rates.as_ref(), addr);
        if once {
            print!("{screen}");
            return Ok(());
        }
        // ANSI clear + home; plain std, no terminal library.
        print!("\x1b[2J\x1b[H{screen}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = Some((stats, now));
        std::thread::sleep(interval);
    }
}

fn cmd_postmortem(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("postmortem: missing bundle directory")?;
    let bundle = predicate_control::obs::flight::validate_bundle(std::path::Path::new(path))
        .map_err(|e| format!("postmortem: {path}: {e}"))?;
    print!("{}", predicate_control::obs::flight::render_report(&bundle));
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&argv[1..]);
    let result = match cmd.as_str() {
        "info" => cmd_info(&args),
        "detect" => cmd_detect(&args),
        "control" => cmd_control(&args),
        "verify" => cmd_verify(&args),
        "replay" => cmd_replay(&args),
        "trace" => cmd_trace(&args),
        "stats" => cmd_stats(&args),
        "dot" => cmd_dot(&args),
        "gen" => cmd_gen(&args),
        "serve" => cmd_serve(&args),
        "stream" => cmd_stream(&args),
        "top" => cmd_top(&args),
        "postmortem" => cmd_postmortem(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
