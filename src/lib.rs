//! **predicate-control** — active debugging of distributed programs via
//! predicate control.
//!
//! A full reproduction of Tarafdar & Garg, *Predicate Control for Active
//! Debugging of Distributed Programs* (IPPS 1998), as a Rust workspace.
//! This facade crate re-exports every subsystem; see DESIGN.md for the
//! architecture and EXPERIMENTS.md for the reproduced evaluation.
//!
//! # The idea
//!
//! Traditional distributed debugging is passive: observe a traced
//! computation, find a bad global state, re-run and hope. *Predicate
//! control* makes the replay active: given a safety property `B` (e.g.
//! "at least one server is always available"), synthesize extra causal
//! dependencies — control messages — such that **every** execution of the
//! controlled computation satisfies `B`.
//!
//! # Quick start
//!
//! ```
//! use predicate_control::prelude::*;
//!
//! // Trace a computation: two processes with overlapping critical sections.
//! let mut b = DeposetBuilder::new(2);
//! for p in 0..2 {
//!     b.init_vars(p, &[("cs", 0)]);
//!     b.internal(p, &[("cs", 1)]);
//!     b.internal(p, &[("cs", 0)]);
//! }
//! let computation = b.finish().unwrap();
//!
//! // Safety: at least one process outside its critical section.
//! let safety = DisjunctivePredicate::at_least_one_not(2, "cs");
//!
//! // A violation is possible…
//! assert!(detect_disjunctive_violation(&computation, &safety).is_some());
//!
//! // …so synthesize control (the paper's Figure 2 algorithm)…
//! let control = control_disjunctive(&computation, &safety, OfflineOptions::default())
//!     .expect("feasible");
//!
//! // …and replay under control: the bug cannot recur.
//! let outcome = replay(&computation, &control, &ReplayConfig::default());
//! assert!(outcome.completed() && outcome.fidelity(&computation));
//! assert!(detect_disjunctive_violation(outcome.deposet(), &safety).is_none());
//! ```
//!
//! # Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`causality`] | `pctl-causality` | vector/Lamport clocks, DAG utilities |
//! | [`deposet`] | `pctl-deposet` | the computation model, lattice, predicates, traces |
//! | [`sim`] | `pctl-sim` | deterministic discrete-event simulator with tracing |
//! | [`control`] | `pctl-core` | off-line + on-line predicate control, NP-hardness machinery |
//! | [`detect`] | `pctl-detect` | predicate detection (weak/strong conjunctive, snapshots) |
//! | [`mutex`] | `pctl-mutex` | (n−1)-mutex via control + k-mutex baselines |
//! | [`obs`] | `pctl-obs` | structured event log, recorders, hot-path profiler, Prometheus + Chrome-trace export |
//! | [`replay`] | `pctl-replay` | controlled re-execution of traces |
//! | [`pctld`] | `pctld` | streaming daemon: per-session incremental stores, backpressure, graceful degradation |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pctl_causality as causality;
pub use pctl_core as control;
pub use pctl_deposet as deposet;
pub use pctl_detect as detect;
pub use pctl_mutex as mutex;
pub use pctl_obs as obs;
pub use pctl_replay as replay;
pub use pctl_sim as sim;
pub use pctld;

/// Everything a typical debugging session needs.
pub mod prelude {
    pub use pctl_causality::{MsgId, ProcessId, StateId, VectorClock};
    pub use pctl_core::cnf_control::{control_cnf, mutually_separated, CnfPredicate};
    pub use pctl_core::online::ft::{FtController, FtParams};
    pub use pctl_core::online::{PeerSelect, Phase, ScapegoatController};
    pub use pctl_core::verify::{
        chain_structure, sweep_faulty_run, verify_disjunctive, verify_regular, FaultSweepReport,
    };
    pub use pctl_core::{
        control_disjunctive, sgsd, ControlRelation, ControlledDeposet, Engine, Infeasible,
        OfflineOptions, PredicateEngine, SelectPolicy, SgsdOutcome, StreamEngine,
    };
    pub use pctl_deposet::{
        CmpOp, Deposet, DeposetBuilder, DisjunctivePredicate, GlobalPredicate, GlobalState,
        LocalPredicate, LocalState, PredicateClass, RegularPredicate, SlicedDeposet, Variables,
    };
    pub use pctl_detect::{
        definitely_all_false, detect_disjunctive_violation, possibly_conjunction,
    };
    pub use pctl_mutex::{
        compare_all, max_concurrent, run_antitoken, run_antitoken_recorded, run_central,
        run_ft_antitoken, run_ft_antitoken_recorded, run_ft_antitoken_with, run_suzuki,
        WorkloadConfig,
    };
    pub use pctl_obs::{
        Event, EventKind, EventStats, JsonlRecorder, NullRecorder, Recorder, RingRecorder,
    };
    pub use pctl_replay::{replay, replay_recorded, ReplayConfig, ReplayOutcome};
    pub use pctl_sim::{
        DelayModel, FaultPlan, LinkFaults, LiveMetrics, Process, SimConfig, SimTime, Simulation,
    };
}
