//! Golden-file test of the Prometheus text exposition (format 0.0.4):
//! metric-name sanitization, `# HELP`/`# TYPE` lines, label-value
//! escaping, and the stable (sorted) family/sample ordering are pinned
//! byte for byte against `tests/golden/exposition.prom`.
//!
//! If an intentional format change breaks this test, regenerate the golden
//! file by running the test with `UPDATE_GOLDEN=1` and reviewing the diff.

use pctl_obs::prom::{validate_exposition, Exposition, Histogram};

/// Build the document the golden file pins. Exercises every rendering
/// feature: all four kinds, sanitization of an invalid family name,
/// label-value escaping, and out-of-order registration (render sorts).
fn golden_exposition() -> Exposition {
    let mut e = Exposition::new();
    // Registered out of name order on purpose: render() must sort families.
    e.gauge("pctl_sim_queue_depth", "Current queue depth", &[], 7.0);
    e.counter("pctl_sim_msgs_total", "Messages dispatched", &[], 42.0);
    // Invalid family name: dots, dash, bang must sanitize to underscores.
    // The help text carries a literal backslash and newline (escaped).
    e.counter(
        "pctl_sim_weird.name-x!_total",
        "sanitized from \"weird.name-x!\" with a \\ backslash\nand a newline",
        &[("label", "zz-plain")],
        2.0,
    );
    // Label values with every escapable character; registered after
    // "zz-plain" but sorts before it.
    e.counter(
        "pctl_sim_weird.name-x!_total",
        "sanitized from \"weird.name-x!\" with a \\ backslash\nand a newline",
        &[("label", "quote \" backslash \\ newline \n end")],
        1.0,
    );
    e.summary(
        "pctl_sim_latency_us",
        "Latency distribution",
        &[],
        &[(0.5, 20.0), (0.95, 30.0), (0.99, 30.0)],
        60.0,
        3,
    );
    e.gauge(
        "pctl_prof_gauge",
        "Profiler store gauges (arena words, interval counts, ...)",
        &[("name", "arena_allocated_words")],
        4096.0,
    );
    // A histogram with a numeric bound ladder whose le values would
    // misorder under lexicographic label sorting ("10" < "2"), two label
    // sets registered out of order, and an empty series.
    let mut h = Histogram::new(&[0.5, 2.0, 10.0]);
    h.observe(0.25);
    h.observe(1.0);
    h.observe(1.5);
    h.observe(64.0);
    e.histogram(
        "pctl_sim_request_seconds",
        "Request latency by verb",
        &[("verb", "detect")],
        &h,
    );
    e.histogram(
        "pctl_sim_request_seconds",
        "Request latency by verb",
        &[("verb", "append")],
        &Histogram::new(&[0.5, 2.0, 10.0]),
    );
    e
}

#[test]
fn exposition_matches_golden_file() {
    let rendered = golden_exposition().render();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/exposition.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("update golden file");
    }
    let golden = std::fs::read_to_string(path).expect("read golden file");
    assert_eq!(
        rendered, golden,
        "exposition text drifted from tests/golden/exposition.prom \
         (run with UPDATE_GOLDEN=1 to regenerate, then review the diff)"
    );
}

#[test]
fn golden_document_is_structurally_valid() {
    let rendered = golden_exposition().render();
    // 1 prof gauge + 5 summary samples + 1 counter + 1 gauge + 2 labeled
    // + 2 histogram series × (4 buckets + _sum + _count).
    assert_eq!(validate_exposition(&rendered), Ok(22), "{rendered}");
}

#[test]
fn rendering_is_deterministic() {
    assert_eq!(golden_exposition().render(), golden_exposition().render());
}
