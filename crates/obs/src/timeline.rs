//! Render a finished deposet (plus an optional control relation) as an
//! event log, so `pctl trace` can export any saved trace — recorded live or
//! not — to Chrome trace JSON.
//!
//! The mapping follows the paper's model directly: lane = process, logical
//! timestamp = state index, a variable's value over its process's state
//! sequence = a counter track (a boolean predicate variable renders as a
//! truth interval), message `m.from ; m.to` = a flow arrow, and a forced-
//! before pair `x C→ y` = a flow arrow named `C→`. Every event carries the
//! Fidge–Mattern clock of the state it annotates.

use crate::event::{Event, EventKind};
use pctl_causality::StateId;
use pctl_deposet::Deposet;

/// Lane names for a deposet timeline: one per process.
pub fn lane_names(dep: &Deposet) -> Vec<String> {
    (0..dep.process_count()).map(|p| format!("p{p}")).collect()
}

/// Convert a deposet to an event log.
///
/// `control` is a slice of forced-before pairs to overlay as `C→` arrows
/// (pass `ControlRelation::pairs()`; empty for an uncontrolled trace).
pub fn deposet_events(dep: &Deposet, control: &[(StateId, StateId)]) -> Vec<Event> {
    let mut events = Vec::new();
    for p in dep.processes() {
        let lane = p.index() as u32;
        let states = dep.states_of(p);
        for (k, st) in states.iter().enumerate() {
            let id = StateId::new(p, k as u32);
            let clock = dep.clock(id).entries().to_vec();
            if let Some(label) = &st.label {
                events.push(
                    Event::instant(k as u64, lane, &format!("state {label}"))
                        .with_clock(clock.clone()),
                );
            }
            // Emit a counter sample only when the variable changes (or on
            // the initial state), so constant variables cost one event.
            for (name, value) in st.vars.iter() {
                let changed = k == 0 || states[k - 1].vars.get(name) != Some(value);
                if changed {
                    events.push(
                        Event::counter(k as u64, lane, name, value).with_clock(clock.clone()),
                    );
                }
            }
        }
    }
    for m in dep.messages() {
        let flow = m.id.index() as u64;
        events.push(Event {
            ts: m.from.idx() as u64,
            lane: m.from.process.index() as u32,
            name: m.tag.clone(),
            kind: EventKind::MsgSend {
                id: flow,
                to: m.to.process.index() as u32,
            },
            clock: Some(dep.clock(m.from).entries().to_vec()),
        });
        events.push(Event {
            ts: m.to.idx() as u64,
            lane: m.to.process.index() as u32,
            name: m.tag.clone(),
            kind: EventKind::MsgRecv {
                id: flow,
                from: m.from.process.index() as u32,
            },
            clock: Some(dep.clock(m.to).entries().to_vec()),
        });
    }
    let flow_base = dep.messages().len() as u64;
    for (i, (x, y)) in control.iter().enumerate() {
        let flow = flow_base + i as u64;
        events.push(Event {
            ts: x.idx() as u64,
            lane: x.process.index() as u32,
            name: "C→".into(),
            kind: EventKind::MsgSend {
                id: flow,
                to: y.process.index() as u32,
            },
            clock: Some(dep.clock(*x).entries().to_vec()),
        });
        events.push(Event {
            ts: y.idx() as u64,
            lane: y.process.index() as u32,
            name: "C→".into(),
            kind: EventKind::MsgRecv {
                id: flow,
                from: x.process.index() as u32,
            },
            clock: Some(dep.clock(*y).entries().to_vec()),
        });
    }
    events.sort_by_key(|e| e.ts);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome;
    use pctl_deposet::scenarios;

    #[test]
    fn figure4_timeline_exports_and_validates() {
        let dep = scenarios::replicated_servers().deposet;
        let events = deposet_events(&dep, &[]);
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::MsgSend { .. })),
            "figure 4 has messages"
        );
        assert!(events.iter().all(|e| e.clock.is_some()));
        let json = chrome::chrome_trace(&events, &lane_names(&dep));
        chrome::validate_chrome_trace(&json).unwrap();
    }

    #[test]
    fn control_pairs_become_flow_arrows() {
        let dep = scenarios::replicated_servers().deposet;
        let x = StateId::new(pctl_causality::ProcessId(0), 1);
        let y = StateId::new(pctl_causality::ProcessId(1), 1);
        let events = deposet_events(&dep, &[(x, y)]);
        let arrows: Vec<_> = events.iter().filter(|e| e.name == "C→").collect();
        assert_eq!(arrows.len(), 2);
        let json = chrome::chrome_trace(&events, &lane_names(&dep));
        chrome::validate_chrome_trace(&json).unwrap();
    }
}
