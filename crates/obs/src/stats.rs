//! Aggregate statistics over an event log — the engine behind `pctl stats`.

use crate::event::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt;

/// Percentile summary of a duration/value series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Percentiles {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean, rounded down.
    pub mean: u64,
    /// 50th percentile (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
}

/// Nearest-rank percentile over a sorted slice: the smallest sample with at
/// least `p`% of the distribution at or below it.
pub fn nearest_rank(sorted: &[u64], p: u32) -> u64 {
    assert!(!sorted.is_empty() && (1..=100).contains(&p));
    let rank = (sorted.len() as u64 * p as u64).div_ceil(100) as usize;
    sorted[rank - 1]
}

impl Percentiles {
    /// Summarize a series; returns `None` when empty.
    pub fn of(samples: &[u64]) -> Option<Percentiles> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        // Accumulate in u128: a long profiled run of u64 nanosecond samples
        // can exceed u64::MAX in total. The mean is rounded to nearest
        // rather than truncated; it still fits u64 (mean ≤ max).
        let sum: u128 = sorted.iter().map(|&v| v as u128).sum();
        let count = sorted.len() as u128;
        Some(Percentiles {
            count: sorted.len(),
            min: sorted[0],
            max: *sorted.last().unwrap(),
            mean: ((sum + count / 2) / count) as u64,
            p50: nearest_rank(&sorted, 50),
            p95: nearest_rank(&sorted, 95),
            p99: nearest_rank(&sorted, 99),
        })
    }
}

impl fmt::Display for Percentiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} mean={} p50={} p95={} p99={} max={}",
            self.count, self.min, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// Statistics extracted from an event log.
#[derive(Clone, Debug, Default)]
pub struct EventStats {
    /// Total events by kind tag (`instant`, `span`, `counter`, `send`,
    /// `recv`).
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Instant occurrences by name.
    pub instants: BTreeMap<String, u64>,
    /// Completed span durations by name (`end.ts − begin.ts`, per lane,
    /// innermost-first).
    pub span_durations: BTreeMap<String, Vec<u64>>,
    /// Span begins left unmatched at end of log.
    pub open_spans: u64,
    /// Delivered messages by name, with send→recv latency when the matching
    /// send is in the log.
    pub msg_latencies: BTreeMap<String, Vec<u64>>,
    /// Sends whose flow id never saw a recv (dropped or still in flight).
    pub unmatched_sends: u64,
    /// Events per lane.
    pub per_lane: BTreeMap<u32, u64>,
}

impl EventStats {
    /// Scan an event log.
    pub fn from_events(events: &[Event]) -> EventStats {
        let mut st = EventStats::default();
        // (lane, name) → stack of begin timestamps.
        let mut open: BTreeMap<(u32, String), Vec<u64>> = BTreeMap::new();
        // flow id → send timestamp.
        let mut sends: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in events {
            *st.per_lane.entry(ev.lane).or_default() += 1;
            match &ev.kind {
                EventKind::Instant => {
                    *st.by_kind.entry("instant").or_default() += 1;
                    *st.instants.entry(ev.name.clone()).or_default() += 1;
                }
                EventKind::SpanBegin => {
                    *st.by_kind.entry("span").or_default() += 1;
                    open.entry((ev.lane, ev.name.clone()))
                        .or_default()
                        .push(ev.ts);
                }
                EventKind::SpanEnd => {
                    match open.get_mut(&(ev.lane, ev.name.clone())).and_then(Vec::pop) {
                        Some(begin) => st
                            .span_durations
                            .entry(ev.name.clone())
                            .or_default()
                            .push(ev.ts.saturating_sub(begin)),
                        None => st.open_spans += 1, // end without begin
                    }
                }
                EventKind::Counter { .. } => {
                    *st.by_kind.entry("counter").or_default() += 1;
                }
                EventKind::MsgSend { id, .. } => {
                    *st.by_kind.entry("send").or_default() += 1;
                    sends.insert(*id, ev.ts);
                }
                EventKind::MsgRecv { id, .. } => {
                    *st.by_kind.entry("recv").or_default() += 1;
                    if let Some(sent) = sends.remove(id) {
                        st.msg_latencies
                            .entry(ev.name.clone())
                            .or_default()
                            .push(ev.ts.saturating_sub(sent));
                    }
                }
            }
        }
        st.open_spans += open.values().map(|v| v.len() as u64).sum::<u64>();
        st.unmatched_sends = sends.len() as u64;
        st
    }

    /// Human-readable report (the `pctl stats` output).
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("events by kind:\n");
        for (kind, n) in &self.by_kind {
            out.push_str(&format!("  {kind:<8} {n}\n"));
        }
        out.push_str("events by lane:\n");
        for (lane, n) in &self.per_lane {
            out.push_str(&format!("  lane {lane:<4} {n}\n"));
        }
        if !self.instants.is_empty() {
            out.push_str("instants:\n");
            for (name, n) in &self.instants {
                out.push_str(&format!("  {name:<24} {n}\n"));
            }
        }
        // Always print the percentile sections — an empty or instant-only
        // log gets an explicit zero-sample line rather than a silently
        // missing section, so consumers can grep for the header
        // unconditionally.
        out.push_str("span durations:\n");
        if self.span_durations.is_empty() {
            out.push_str("  (no samples) n=0\n");
        }
        for (name, samples) in &self.span_durations {
            if let Some(p) = Percentiles::of(samples) {
                out.push_str(&format!("  {name:<24} {p}\n"));
            }
        }
        out.push_str("message latencies:\n");
        if self.msg_latencies.is_empty() {
            out.push_str("  (no samples) n=0\n");
        }
        for (name, samples) in &self.msg_latencies {
            if let Some(p) = Percentiles::of(samples) {
                out.push_str(&format!("  {name:<24} {p}\n"));
            }
        }
        if self.open_spans > 0 {
            out.push_str(&format!("open/unmatched spans: {}\n", self.open_spans));
        }
        if self.unmatched_sends > 0 {
            out.push_str(&format!("sends without a recv: {}\n", self.unmatched_sends));
        }
        out
    }

    /// The same statistics as Prometheus text exposition (format 0.0.4) —
    /// the `pctl stats --prom` output. Duration/latency series become
    /// summaries with 0.5/0.95/0.99 quantiles; counts become counters.
    /// Simulator timestamps are unitless ticks, hence the `_ticks` suffix.
    pub fn to_prometheus(&self) -> String {
        let mut exp = crate::prom::Exposition::new();
        for (kind, n) in &self.by_kind {
            exp.counter(
                "pctl_events_total",
                "Telemetry events by kind",
                &[("kind", kind)],
                *n as f64,
            );
        }
        for (lane, n) in &self.per_lane {
            exp.counter(
                "pctl_lane_events_total",
                "Telemetry events by lane",
                &[("lane", &lane.to_string())],
                *n as f64,
            );
        }
        for (name, n) in &self.instants {
            exp.counter(
                "pctl_instants_total",
                "Instant occurrences by name",
                &[("name", name)],
                *n as f64,
            );
        }
        for (family, help, series) in [
            (
                "pctl_span_duration_ticks",
                "Completed span durations in sim ticks",
                &self.span_durations,
            ),
            (
                "pctl_msg_latency_ticks",
                "Send-to-receive latencies in sim ticks",
                &self.msg_latencies,
            ),
        ] {
            for (name, samples) in series {
                let Some(p) = Percentiles::of(samples) else {
                    continue;
                };
                // Same overflow hazard as Percentiles::of — sum in u128.
                let sum: u128 = samples.iter().map(|&v| v as u128).sum();
                exp.summary(
                    family,
                    help,
                    &[("name", name)],
                    &[
                        (0.5, p.p50 as f64),
                        (0.95, p.p95 as f64),
                        (0.99, p.p99 as f64),
                    ],
                    sum as f64,
                    p.count as u64,
                );
            }
        }
        exp.gauge(
            "pctl_open_spans",
            "Span begins left unmatched at end of log",
            &[],
            self.open_spans as f64,
        );
        exp.gauge(
            "pctl_unmatched_sends",
            "Sends whose flow never saw a receive",
            &[],
            self.unmatched_sends as f64,
        );
        exp.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_definition() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&s, 50), 50);
        assert_eq!(nearest_rank(&s, 95), 95);
        assert_eq!(nearest_rank(&s, 99), 99);
        assert_eq!(nearest_rank(&s, 100), 100);
        assert_eq!(nearest_rank(&[7], 50), 7);
        assert_eq!(nearest_rank(&[1, 2], 50), 1);
    }

    #[test]
    fn spans_and_latencies_are_paired() {
        let events = vec![
            Event {
                ts: 10,
                lane: 0,
                name: "cs".into(),
                kind: EventKind::SpanBegin,
                clock: None,
            },
            Event {
                ts: 12,
                lane: 1,
                name: "req".into(),
                kind: EventKind::MsgSend { id: 1, to: 0 },
                clock: None,
            },
            Event {
                ts: 17,
                lane: 0,
                name: "req".into(),
                kind: EventKind::MsgRecv { id: 1, from: 1 },
                clock: None,
            },
            Event {
                ts: 25,
                lane: 0,
                name: "cs".into(),
                kind: EventKind::SpanEnd,
                clock: None,
            },
            Event {
                ts: 30,
                lane: 1,
                name: "req".into(),
                kind: EventKind::MsgSend { id: 2, to: 0 },
                clock: None,
            },
        ];
        let st = EventStats::from_events(&events);
        assert_eq!(st.span_durations["cs"], vec![15]);
        assert_eq!(st.msg_latencies["req"], vec![5]);
        assert_eq!(st.unmatched_sends, 1);
        assert_eq!(st.open_spans, 0);
        let report = st.report();
        assert!(report.contains("sends without a recv: 1"), "{report}");
    }

    #[test]
    fn zero_sample_report_keeps_percentile_sections() {
        // Empty log.
        let report = EventStats::from_events(&[]).report();
        assert!(
            report.contains("span durations:\n  (no samples) n=0"),
            "{report}"
        );
        assert!(
            report.contains("message latencies:\n  (no samples) n=0"),
            "{report}"
        );

        // Instant-only log: still no duration/latency samples.
        let events = vec![Event::instant(1, 0, "tick"), Event::instant(2, 0, "tick")];
        let report = EventStats::from_events(&events).report();
        assert!(report.contains("instants:"), "{report}");
        assert!(
            report.contains("span durations:\n  (no samples) n=0"),
            "{report}"
        );
        assert!(
            report.contains("message latencies:\n  (no samples) n=0"),
            "{report}"
        );
    }

    #[test]
    fn prometheus_view_covers_counts_series_and_gauges() {
        let events = vec![
            Event {
                ts: 10,
                lane: 0,
                name: "cs".into(),
                kind: EventKind::SpanBegin,
                clock: None,
            },
            Event {
                ts: 25,
                lane: 0,
                name: "cs".into(),
                kind: EventKind::SpanEnd,
                clock: None,
            },
            Event::instant(30, 1, "crash"),
        ];
        let text = EventStats::from_events(&events).to_prometheus();
        assert!(crate::prom::validate_exposition(&text).is_ok(), "{text}");
        assert!(
            text.contains("pctl_events_total{kind=\"span\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pctl_instants_total{name=\"crash\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pctl_span_duration_ticks{name=\"cs\",quantile=\"0.5\"} 15"),
            "{text}"
        );
        assert!(
            text.contains("pctl_span_duration_ticks_count{name=\"cs\"} 1"),
            "{text}"
        );
        assert!(text.contains("pctl_open_spans 0"), "{text}");

        // Zero-event logs still expose the gauges (never an empty document).
        let text = EventStats::from_events(&[]).to_prometheus();
        assert!(crate::prom::validate_exposition(&text).is_ok(), "{text}");
        assert!(text.contains("pctl_unmatched_sends 0"), "{text}");
    }

    #[test]
    fn percentiles_of_empty_is_none() {
        assert!(Percentiles::of(&[]).is_none());
        let p = Percentiles::of(&[4, 2, 9]).unwrap();
        assert_eq!((p.min, p.max, p.mean, p.p50), (2, 9, 5, 4));
    }

    #[test]
    fn percentiles_survive_near_u64_max_samples() {
        // Three samples near u64::MAX sum far past u64: the old u64
        // accumulator wrapped (or panicked in debug). The u128 path keeps
        // the exact mean.
        let a = u64::MAX - 2;
        let b = u64::MAX - 1;
        let c = u64::MAX;
        let p = Percentiles::of(&[a, b, c]).unwrap();
        assert_eq!(p.count, 3);
        assert_eq!(p.min, a);
        assert_eq!(p.max, c);
        assert_eq!(p.mean, b, "exact mean of three consecutive values");
        assert_eq!(p.p50, b);
    }

    #[test]
    fn mean_is_rounded_not_truncated() {
        // mean(1, 2) = 1.5 → rounds to 2 (the truncating version said 1).
        assert_eq!(Percentiles::of(&[1, 2]).unwrap().mean, 2);
        assert_eq!(Percentiles::of(&[1, 1, 2]).unwrap().mean, 1);
    }
}
