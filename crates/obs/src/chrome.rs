//! Chrome `trace_event` JSON export.
//!
//! [`chrome_trace`] renders an event log as the JSON object format of the
//! Chrome trace-event profiling spec: load the output in `chrome://tracing`
//! or [Perfetto](https://ui.perfetto.dev). Each lane becomes a named thread
//! track; spans become `B`/`E` duration slices, instants become `i` marks,
//! counters become `C` tracks (one per lane — this is how predicate truth
//! intervals render as step functions), and send/recv pairs become `s`/`f`
//! flow arrows (application messages and `C→` control arrows alike).
//!
//! [`validate_chrome_trace`] checks the structural schema the export
//! promises; the trace-export tests run every recorded run through it.

use crate::event::{Event, EventKind};
use serde_json::Value;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn s(v: &str) -> Value {
    Value::String(v.to_owned())
}

fn meta(name: &str, pid: u64, tid: u64, arg: &str) -> Value {
    obj(vec![
        ("name", s(name)),
        ("ph", s("M")),
        ("pid", Value::UInt(pid)),
        ("tid", Value::UInt(tid)),
        ("args", obj(vec![("name", s(arg))])),
    ])
}

/// Render an event log as Chrome trace JSON.
///
/// `lane_names[i]` labels lane `i`; lanes past the end of the slice get a
/// generic `p{i}` label. Timestamps are emitted as microseconds verbatim
/// (simulated ticks are treated as 1 µs each).
pub fn chrome_trace(events: &[Event], lane_names: &[String]) -> String {
    let mut out: Vec<Value> = Vec::with_capacity(events.len() + lane_names.len() + 2);
    out.push(meta("process_name", 0, 0, "pctl"));
    let max_lane = events.iter().map(|e| e.lane).max().unwrap_or(0) as usize;
    let lanes = lane_names.len().max(max_lane + 1);
    for lane in 0..lanes {
        let name = lane_names
            .get(lane)
            .cloned()
            .unwrap_or_else(|| format!("p{lane}"));
        out.push(meta("thread_name", 0, lane as u64, &name));
    }
    for ev in events {
        let lane = ev.lane as u64;
        let base = |ph: &str| {
            vec![
                ("name", s(&ev.name)),
                ("ph", s(ph)),
                ("ts", Value::UInt(ev.ts)),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(lane)),
            ]
        };
        let clock_args = |mut entries: Vec<(&'static str, Value)>| {
            if let Some(clock) = &ev.clock {
                entries.push((
                    "clock",
                    Value::Array(clock.iter().map(|&c| Value::UInt(c as u64)).collect()),
                ));
            }
            entries
        };
        match &ev.kind {
            EventKind::Instant => {
                let mut e = base("i");
                e.push(("s", s("t")));
                e.push(("args", obj(clock_args(vec![]))));
                out.push(obj(e));
            }
            EventKind::SpanBegin => {
                let mut e = base("B");
                e.push(("args", obj(clock_args(vec![]))));
                out.push(obj(e));
            }
            EventKind::SpanEnd => {
                out.push(obj(base("E")));
            }
            EventKind::Counter { value } => {
                // One counter track per lane: counters merge by (pid, name)
                // in trace viewers, so the lane goes into the name.
                let mut e = base("C");
                e[0].1 = s(&format!("{}·{lane}", ev.name));
                e.push(("args", obj(vec![(ev.name.as_str(), Value::Int(*value))])));
                out.push(obj(e));
            }
            EventKind::MsgSend { id, to } => {
                let mut flow = base("s");
                flow.push(("cat", s("flow")));
                flow.push(("id", Value::UInt(*id)));
                out.push(obj(flow));
                let mut mark = base("i");
                mark.push(("s", s("t")));
                mark.push((
                    "args",
                    obj(clock_args(vec![("to", Value::UInt(*to as u64))])),
                ));
                out.push(obj(mark));
            }
            EventKind::MsgRecv { id, from } => {
                let mut flow = base("f");
                flow.push(("cat", s("flow")));
                flow.push(("id", Value::UInt(*id)));
                flow.push(("bp", s("e")));
                out.push(obj(flow));
                let mut mark = base("i");
                mark.push(("s", s("t")));
                mark.push((
                    "args",
                    obj(clock_args(vec![("from", Value::UInt(*from as u64))])),
                ));
                out.push(obj(mark));
            }
        }
    }
    let trace = obj(vec![
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", s("ms")),
    ]);
    serde_json::to_string(&trace).expect("trace serializes")
}

/// Drop `MsgRecv` events whose matching `MsgSend` (same flow id) is not
/// present in `events`.
///
/// Bounded rings drop their oldest entries, so the retained tail of a long
/// run can hold a receive whose send was already evicted; a Chrome flow
/// finish without a start fails [`validate_chrome_trace`], so ring
/// snapshots must be pruned before export.
pub fn prune_orphan_flows(events: &mut Vec<Event>) {
    let sends: std::collections::BTreeSet<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::MsgSend { id, .. } => Some(id),
            _ => None,
        })
        .collect();
    events.retain(|e| match e.kind {
        EventKind::MsgRecv { id, .. } => sends.contains(&id),
        _ => true,
    });
}

fn get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn is_number(v: &Value) -> bool {
    matches!(v, Value::Int(_) | Value::UInt(_) | Value::Float(_))
}

/// Validate the structural schema of [`chrome_trace`] output.
///
/// Checks: top-level object with a `traceEvents` array; every entry is an
/// object with a one-letter known `ph`, a string `name`, and integer
/// `pid`/`tid`; non-metadata entries carry a numeric `ts`; `B`/`E` slices
/// nest properly per lane; counters carry a numeric sample; flow events
/// carry an `id` and every flow finish has a matching start somewhere in
/// the trace (starts need not precede finishes in array order: logical
/// per-lane timestamps are not a global clock).
pub fn validate_chrome_trace(json: &str) -> Result<(), String> {
    let root: Value = serde_json::from_str(json).map_err(|e| format!("not JSON: {e:?}"))?;
    let root = root.as_object().ok_or("top level is not an object")?;
    let events = get(root, "traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    let mut span_stack: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let flow_starts: std::collections::BTreeSet<u64> = events
        .iter()
        .filter_map(Value::as_object)
        .filter(|ev| get(ev, "ph").and_then(Value::as_str) == Some("s"))
        .filter_map(|ev| match get(ev, "id") {
            Some(Value::UInt(id)) => Some(*id),
            _ => None,
        })
        .collect();
    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let ev = ev.as_object().ok_or_else(|| at("not an object"))?;
        let ph = get(ev, "ph")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing ph"))?;
        if !matches!(ph, "M" | "B" | "E" | "i" | "C" | "s" | "f" | "X") {
            return Err(at(&format!("unknown ph {ph:?}")));
        }
        let name = get(ev, "name")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing name"))?;
        let tid = match get(ev, "tid") {
            Some(Value::UInt(t)) => *t,
            Some(Value::Int(t)) if *t >= 0 => *t as u64,
            _ => return Err(at("missing integer tid")),
        };
        if !get(ev, "pid").is_some_and(is_number) {
            return Err(at("missing integer pid"));
        }
        if ph == "M" {
            continue;
        }
        if !get(ev, "ts").is_some_and(is_number) {
            return Err(at("missing numeric ts"));
        }
        match ph {
            "B" => span_stack.entry(tid).or_default().push(name.to_owned()),
            "E" => {
                let top = span_stack.entry(tid).or_default().pop();
                if top.as_deref() != Some(name) {
                    return Err(at(&format!(
                        "span end {name:?} does not match open span {top:?} on tid {tid}"
                    )));
                }
            }
            "C" => {
                let args = get(ev, "args")
                    .and_then(Value::as_object)
                    .ok_or_else(|| at("counter without args"))?;
                if !args.iter().any(|(_, v)| is_number(v)) {
                    return Err(at("counter args carry no numeric sample"));
                }
            }
            "s" | "f" => {
                let id = match get(ev, "id") {
                    Some(Value::UInt(id)) => *id,
                    _ => return Err(at("flow event without id")),
                };
                if ph == "f" && !flow_starts.contains(&id) {
                    return Err(at(&format!("flow finish {id} without a start")));
                }
            }
            _ => {}
        }
    }
    for (tid, stack) in span_stack {
        if let Some(open) = stack.last() {
            return Err(format!("span {open:?} left open on tid {tid}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                ts: 0,
                lane: 0,
                name: "cs".into(),
                kind: EventKind::SpanBegin,
                clock: Some(vec![1, 0]),
            },
            Event {
                ts: 2,
                lane: 0,
                name: "req".into(),
                kind: EventKind::MsgSend { id: 0, to: 1 },
                clock: Some(vec![2, 0]),
            },
            Event {
                ts: 5,
                lane: 1,
                name: "req".into(),
                kind: EventKind::MsgRecv { id: 0, from: 0 },
                clock: Some(vec![2, 1]),
            },
            Event::counter(5, 1, "ok", 1),
            Event {
                ts: 6,
                lane: 0,
                name: "cs".into(),
                kind: EventKind::SpanEnd,
                clock: None,
            },
            Event::instant(7, 1, "watchdog"),
        ]
    }

    #[test]
    fn export_validates() {
        let json = chrome_trace(&sample_events(), &["p0".into(), "p1".into()]);
        validate_chrome_trace(&json).unwrap();
    }

    #[test]
    fn unbalanced_span_rejected() {
        let events = vec![Event {
            ts: 0,
            lane: 0,
            name: "cs".into(),
            kind: EventKind::SpanBegin,
            clock: None,
        }];
        let json = chrome_trace(&events, &[]);
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("left open"), "{err}");
    }

    #[test]
    fn flow_finish_without_start_rejected() {
        let events = vec![Event {
            ts: 0,
            lane: 0,
            name: "req".into(),
            kind: EventKind::MsgRecv { id: 3, from: 1 },
            clock: None,
        }];
        let json = chrome_trace(&events, &[]);
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("without a start"), "{err}");
    }

    #[test]
    fn pruning_orphan_flows_makes_a_ring_tail_exportable() {
        let mut events = vec![
            // Orphan: the matching send (id 3) was dropped by the ring.
            Event {
                ts: 0,
                lane: 0,
                name: "req".into(),
                kind: EventKind::MsgRecv { id: 3, from: 1 },
                clock: None,
            },
            Event {
                ts: 1,
                lane: 0,
                name: "req".into(),
                kind: EventKind::MsgSend { id: 4, to: 1 },
                clock: None,
            },
            Event {
                ts: 2,
                lane: 1,
                name: "req".into(),
                kind: EventKind::MsgRecv { id: 4, from: 0 },
                clock: None,
            },
            Event::instant(3, 0, "mark"),
        ];
        assert!(validate_chrome_trace(&chrome_trace(&events, &[])).is_err());
        prune_orphan_flows(&mut events);
        assert_eq!(events.len(), 3, "only the orphan recv is dropped");
        validate_chrome_trace(&chrome_trace(&events, &[])).unwrap();
    }

    #[test]
    fn garbage_rejected() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(validate_chrome_trace("nope").is_err());
    }
}
