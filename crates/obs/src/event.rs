//! The structured event record.

use serde::{Deserialize, Serialize};

/// What an [`Event`] marks on its lane.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A point-in-time occurrence (fault injection, handoff, watchdog…).
    Instant,
    /// Start of a named span (critical section, blocked wait, engine
    /// phase). Spans of the same name nest per lane.
    SpanBegin,
    /// End of the innermost open span with this name on this lane.
    SpanEnd,
    /// A sampled value (traced variable update, queue depth, latency).
    /// Rendered as a counter track in Chrome trace viewers — predicate
    /// truth intervals come from counters on the predicate variable.
    Counter {
        /// The sampled value.
        value: i64,
    },
    /// A message left this lane. `id` pairs it with the matching
    /// [`EventKind::MsgRecv`]; renders as an arrow in trace viewers.
    MsgSend {
        /// Flow id, unique per simulated message copy.
        id: u64,
        /// Destination lane.
        to: u32,
    },
    /// A message arrived on this lane.
    MsgRecv {
        /// Flow id of the matching send.
        id: u64,
        /// Source lane.
        from: u32,
    },
}

/// One record of the structured event log.
///
/// `ts` is monotonic per lane (simulated ticks for simulator events,
/// microseconds for wall-clock engine phases). `clock` is the emitting
/// process's vector clock *at the event*, maintained by the instrumented
/// runtime; along any single lane it never decreases, and across lanes it
/// orders exactly the events that are causally ordered — the property the
/// trace-export tests assert.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Monotonic timestamp.
    pub ts: u64,
    /// Emitting lane: a process index, or a synthetic lane (e.g. the
    /// offline engine) past the last process.
    pub lane: u32,
    /// Event name (span name, counter name, message tag…).
    pub name: String,
    /// What this record marks.
    pub kind: EventKind,
    /// Vector-clock annotation, when the emitter maintains one.
    pub clock: Option<Vec<u32>>,
}

impl Event {
    /// Shorthand for an instant event without a clock.
    pub fn instant(ts: u64, lane: u32, name: &str) -> Self {
        Event {
            ts,
            lane,
            name: name.to_owned(),
            kind: EventKind::Instant,
            clock: None,
        }
    }

    /// Shorthand for a counter sample without a clock.
    pub fn counter(ts: u64, lane: u32, name: &str, value: i64) -> Self {
        Event {
            ts,
            lane,
            name: name.to_owned(),
            kind: EventKind::Counter { value },
            clock: None,
        }
    }

    /// Attach a vector-clock annotation.
    pub fn with_clock(mut self, clock: Vec<u32>) -> Self {
        self.clock = Some(clock);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serde_roundtrip() {
        let ev = Event {
            ts: 42,
            lane: 3,
            name: "req".into(),
            kind: EventKind::MsgSend { id: 7, to: 1 },
            clock: Some(vec![1, 0, 2]),
        };
        let json = serde_json::to_string(&ev).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn clockless_event_omits_clock_field() {
        let ev = Event::instant(0, 0, "x");
        let json = serde_json::to_string(&ev).unwrap();
        assert!(!json.contains("clock"), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
    }
}
