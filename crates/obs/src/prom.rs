//! Prometheus text exposition (format 0.0.4) and a `/metrics` endpoint.
//!
//! [`Exposition`] is a small builder for the Prometheus text format: callers
//! register counters, gauges and summaries; [`Exposition::render`] emits
//! `# HELP`/`# TYPE` lines, sanitized metric names, escaped label values,
//! and a byte-stable ordering (families sorted by name, samples sorted by
//! labels) so the output can be golden-file tested.
//!
//! [`MetricsServer`] serves any `Fn() -> String` renderer over a plain
//! `std::net::TcpListener` — no HTTP library, no new dependencies — so the
//! sim/online runners can expose live metrics while a run is in flight
//! (`curl http://addr/metrics`).
//!
//! [`prof_families`] bridges the hot-path profiler ([`pctl_prof`]) into an
//! exposition: phase aggregates become `pctl_prof_phase_*` families and
//! profiler gauges become `pctl_prof_gauge`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The metric kinds this writer emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PromKind {
    /// Monotonically increasing count.
    Counter,
    /// Last-write-wins level.
    Gauge,
    /// Precomputed quantiles plus `_sum`/`_count`.
    Summary,
    /// Cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
    Histogram,
}

impl PromKind {
    fn as_str(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
            PromKind::Summary => "summary",
            PromKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
struct Sample {
    /// Appended to the family name (`""`, `"_bucket"`, `"_sum"`, `"_count"`).
    suffix: &'static str,
    labels: Vec<(String, String)>,
    value: f64,
    /// Tie-break within one (suffix, label-set-minus-`le`) group. Histogram
    /// buckets carry their bucket index here so `le="2"` renders before
    /// `le="10"` — the label values sort lexicographically, which would
    /// misorder numeric bounds. Zero everywhere else.
    order: usize,
}

#[derive(Clone, Debug)]
struct Family {
    kind: PromKind,
    help: String,
    samples: Vec<Sample>,
}

/// Builder for one exposition document. See module docs.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    families: BTreeMap<String, Family>,
}

/// Sanitize a metric (family) name to `[a-zA-Z_:][a-zA-Z0-9_:]*`: invalid
/// characters become `_`, and a leading digit gets a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Sanitize a label name to `[a-zA-Z_][a-zA-Z0-9_]*`.
pub fn sanitize_label_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a `# HELP` text: `\` → `\\`, newline → `\n`.
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).into()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Exposition::default()
    }

    fn family(&mut self, name: &str, kind: PromKind, help: &str) -> &mut Family {
        let name = sanitize_metric_name(name);
        self.families.entry(name).or_insert_with(|| Family {
            kind,
            help: help.to_owned(),
            samples: Vec::new(),
        })
    }

    fn push(
        &mut self,
        name: &str,
        kind: PromKind,
        help: &str,
        suffix: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (sanitize_label_name(k), (*v).to_owned()))
            .collect();
        self.push_ordered(name, kind, help, suffix, labels, value, 0);
    }

    #[allow(clippy::too_many_arguments)]
    fn push_ordered(
        &mut self,
        name: &str,
        kind: PromKind,
        help: &str,
        suffix: &'static str,
        labels: Vec<(String, String)>,
        value: f64,
        order: usize,
    ) {
        self.family(name, kind, help).samples.push(Sample {
            suffix,
            labels,
            value,
            order,
        });
    }

    /// Register one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, PromKind::Counter, help, "", labels, value);
    }

    /// Register one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, PromKind::Gauge, help, "", labels, value);
    }

    /// Register a summary: `(quantile, value)` pairs plus `_sum`/`_count`.
    pub fn summary(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        quantiles: &[(f64, f64)],
        sum: f64,
        count: u64,
    ) {
        for &(q, v) in quantiles {
            let mut ls: Vec<(&str, String)> =
                labels.iter().map(|(k, v)| (*k, (*v).to_owned())).collect();
            ls.push(("quantile", format_value(q)));
            let borrowed: Vec<(&str, &str)> = ls.iter().map(|(k, v)| (*k, v.as_str())).collect();
            self.push(name, PromKind::Summary, help, "", &borrowed, v);
        }
        self.push(name, PromKind::Summary, help, "_sum", labels, sum);
        self.push(
            name,
            PromKind::Summary,
            help,
            "_count",
            labels,
            count as f64,
        );
    }

    /// Register a histogram: cumulative `_bucket{le=...}` samples (one per
    /// bound plus `+Inf`) followed by `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        let base: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (sanitize_label_name(k), (*v).to_owned()))
            .collect();
        let mut cumulative = 0u64;
        for (i, (bound, n)) in h.bounds.iter().zip(&h.counts).enumerate() {
            cumulative += n;
            let mut ls = base.clone();
            ls.push(("le".into(), format_value(*bound)));
            self.push_ordered(
                name,
                PromKind::Histogram,
                help,
                "_bucket",
                ls,
                cumulative as f64,
                i,
            );
        }
        let mut ls = base.clone();
        ls.push(("le".into(), "+Inf".into()));
        self.push_ordered(
            name,
            PromKind::Histogram,
            help,
            "_bucket",
            ls,
            h.count as f64,
            h.bounds.len(),
        );
        self.push_ordered(
            name,
            PromKind::Histogram,
            help,
            "_sum",
            base.clone(),
            h.sum,
            0,
        );
        self.push_ordered(
            name,
            PromKind::Histogram,
            help,
            "_count",
            base,
            h.count as f64,
            0,
        );
    }

    /// Render the exposition text (format 0.0.4).
    ///
    /// Families are emitted sorted by name; within a family, samples are
    /// sorted by (suffix, labels-without-`le`, bucket order) so the document
    /// is byte-stable for a given logical content and histogram buckets come
    /// out in increasing-`le` order per series.
    pub fn render(&self) -> String {
        fn key(s: &Sample) -> (&'static str, Vec<&(String, String)>, usize) {
            let group: Vec<&(String, String)> =
                s.labels.iter().filter(|(k, _)| k != "le").collect();
            (s.suffix, group, s.order)
        }
        let mut out = String::new();
        for (name, fam) in &self.families {
            if !fam.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&fam.help));
            }
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
            let mut samples = fam.samples.clone();
            samples.sort_by(|a, b| key(a).cmp(&key(b)));
            for s in samples {
                out.push_str(name);
                out.push_str(s.suffix);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
                    }
                    out.push('}');
                }
                let _ = writeln!(out, " {}", format_value(s.value));
            }
        }
        out
    }
}

/// A fixed-bucket histogram accumulator for [`Exposition::histogram`].
///
/// Buckets are defined by strictly increasing, finite upper bounds; an
/// implicit `+Inf` bucket catches everything above the last bound. Counts
/// are stored per bucket (the renderer cumulates them, as the Prometheus
/// text format requires). Two histograms over the same bounds [`merge`]
/// by element-wise addition, so per-thread or per-session histograms can
/// be folded into one family at scrape time.
///
/// [`merge`]: Histogram::merge
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `counts.len() == bounds.len()`,
    /// with the `+Inf` overflow tracked by `count - counts.sum()`.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A histogram over the given upper bounds, which must be non-empty,
    /// finite, and strictly increasing.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "bounds must be strictly increasing");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bounds must be finite (+Inf is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            sum: 0.0,
            count: 0,
        }
    }

    /// Log-spaced bounds: `start`, `start*factor`, ... (`buckets` of them).
    pub fn log_spaced(start: f64, factor: f64, buckets: usize) -> Histogram {
        assert!(start > 0.0 && factor > 1.0 && buckets >= 1);
        let mut bounds = Vec::with_capacity(buckets);
        let mut b = start;
        for _ in 0..buckets {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(&bounds)
    }

    /// The default request-latency bucket ladder: 1µs doubling to ~8s
    /// (24 buckets), wide enough for both in-memory appends and
    /// fault-injected multi-second stalls.
    pub fn latency_seconds() -> Histogram {
        Histogram::log_spaced(1e-6, 2.0, 24)
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        // partition_point: first bucket whose bound can hold v (le = ≤).
        let idx = self.bounds.partition_point(|b| *b < v);
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        // idx == bounds.len() → +Inf bucket, tracked implicitly by `count`.
        self.sum += v;
        self.count += 1;
    }

    /// Record a duration, in seconds.
    pub fn observe_duration(&mut self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The configured upper bounds (excluding the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Fold `other` into `self`. Errs (leaving `self` unchanged) if the
    /// bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "histogram bounds mismatch: {} vs {} buckets",
                self.bounds.len(),
                other.bounds.len()
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        Ok(())
    }
}

/// Parse a `k="v"` label block (the part between `{` and `}`), undoing the
/// exposition escapes. Used by [`validate_exposition`] to check histogram
/// series; exposed for tests that want to pick apart rendered lines.
pub fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find("=\"")
            .ok_or_else(|| format!("bad labels: '{block}'"))?;
        let key = rest[..eq].trim_start_matches(',').to_owned();
        rest = &rest[eq + 2..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err(format!("dangling escape in '{block}'")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in '{block}'"))?;
        rest = &rest[end + 1..];
        out.push((key, value));
    }
    Ok(out)
}

/// One parsed bucket series, keyed by its non-`le` labels.
struct BucketSeries {
    /// `(le, cumulative count)` in document order.
    buckets: Vec<(f64, f64)>,
    count: Option<f64>,
    has_sum: bool,
}

/// Structurally validate exposition text: every non-comment line must be
/// `name[{labels}] value`, every `# TYPE` names a known kind, no family
/// may appear twice, and histogram families must be internally consistent:
/// per series, `le` bounds strictly increasing, cumulative bucket values
/// monotone, a `+Inf` bucket present and equal to the series' `_count`,
/// and `_sum`/`_count` present. Returns the number of samples on success.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut seen_type: Vec<String> = Vec::new();
    let mut histograms: Vec<String> = Vec::new();
    // (family, series-labels-without-le) → collected bucket/sum/count data.
    let mut series: BTreeMap<(String, String), BucketSeries> = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("").to_owned();
            let kind = it.next().ok_or(format!("line {ln}: TYPE without kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(format!("line {ln}: unknown TYPE kind '{kind}'"));
            }
            if seen_type.contains(&name) {
                return Err(format!("line {ln}: duplicate TYPE for family '{name}'"));
            }
            if kind == "histogram" {
                histograms.push(name.clone());
            }
            seen_type.push(name);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // name{labels} value  |  name value
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {ln}: no value: '{line}'"))?;
        if !(value.parse::<f64>().is_ok() || matches!(value, "NaN" | "+Inf" | "-Inf")) {
            return Err(format!("line {ln}: bad value '{value}'"));
        }
        let name_part = head.split('{').next().unwrap_or("");
        let valid_name = !name_part.is_empty()
            && name_part.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            });
        if !valid_name {
            return Err(format!("line {ln}: bad metric name '{name_part}'"));
        }
        if head.contains('{') && !head.ends_with('}') {
            return Err(format!("line {ln}: unterminated label set: '{head}'"));
        }
        samples += 1;

        // Histogram bookkeeping: attribute `_bucket`/`_sum`/`_count`
        // samples to their declared-histogram family and series.
        let fam = histograms.iter().find(|f| {
            name_part
                .strip_prefix(f.as_str())
                .is_some_and(|sfx| matches!(sfx, "_bucket" | "_sum" | "_count"))
        });
        if let Some(fam) = fam {
            let suffix = &name_part[fam.len()..];
            let labels = match head.split_once('{') {
                Some((_, block)) => parse_labels(block.trim_end_matches('}'))
                    .map_err(|e| format!("line {ln}: {e}"))?,
                None => Vec::new(),
            };
            let mut le = None;
            let mut rest: Vec<String> = Vec::new();
            for (k, v) in labels {
                if k == "le" {
                    le = Some(v);
                } else {
                    rest.push(format!("{k}={v}"));
                }
            }
            rest.sort();
            let key = (fam.clone(), rest.join("\u{1}"));
            let s = series.entry(key).or_insert_with(|| BucketSeries {
                buckets: Vec::new(),
                count: None,
                has_sum: false,
            });
            let num = value.parse::<f64>().unwrap_or(f64::INFINITY);
            match suffix {
                "_bucket" => {
                    let le = le.ok_or(format!("line {ln}: _bucket without le label"))?;
                    let bound = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse::<f64>()
                            .map_err(|_| format!("line {ln}: bad le bound '{le}'"))?
                    };
                    s.buckets.push((bound, num));
                }
                "_sum" => s.has_sum = true,
                "_count" => s.count = Some(num),
                _ => unreachable!(),
            }
        }
    }
    for ((fam, labels), s) in &series {
        let tag = if labels.is_empty() {
            fam.clone()
        } else {
            format!("{fam}{{{}}}", labels.replace('\u{1}', ","))
        };
        if s.buckets.is_empty() {
            return Err(format!("histogram {tag}: no _bucket samples"));
        }
        for w in s.buckets.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!(
                    "histogram {tag}: le bounds out of order ({} then {})",
                    format_value(w[0].0),
                    format_value(w[1].0)
                ));
            }
            if w[0].1 > w[1].1 {
                return Err(format!(
                    "histogram {tag}: bucket counts not cumulative ({} then {})",
                    w[0].1, w[1].1
                ));
            }
        }
        let last = s.buckets.last().unwrap();
        if !last.0.is_infinite() {
            return Err(format!("histogram {tag}: missing +Inf bucket"));
        }
        let count = s
            .count
            .ok_or(format!("histogram {tag}: missing _count sample"))?;
        if last.1 != count {
            return Err(format!(
                "histogram {tag}: +Inf bucket {} != _count {count}",
                last.1
            ));
        }
        if !s.has_sum {
            return Err(format!("histogram {tag}: missing _sum sample"));
        }
    }
    if samples == 0 {
        return Err("no samples in exposition".into());
    }
    Ok(samples)
}

/// Fold a profiler report into an exposition: per-phase span counts and
/// total/self nanoseconds, plus the profiler's store gauges.
pub fn prof_families(report: &pctl_prof::ProfReport, exp: &mut Exposition) {
    for (path, p) in &report.phases {
        let labels = [("phase", path.as_str())];
        exp.counter(
            "pctl_prof_phase_spans_total",
            "Completed profiler spans per phase path",
            &labels,
            p.count as f64,
        );
        exp.counter(
            "pctl_prof_phase_time_ns_total",
            "Total wall time per phase path, nanoseconds",
            &labels,
            p.total_ns as f64,
        );
        exp.counter(
            "pctl_prof_phase_self_time_ns_total",
            "Self (non-child) wall time per phase path, nanoseconds",
            &labels,
            p.self_ns as f64,
        );
    }
    for (name, v) in &report.gauges {
        exp.gauge(
            "pctl_prof_gauge",
            "Profiler store gauges (arena words, interval counts, ...)",
            &[("name", name.as_str())],
            *v as f64,
        );
    }
}

/// One route's answer: HTTP status code, `Content-Type`, body.
pub type RouteResponse = (u16, String, String);

/// A route handler for [`MetricsServer::spawn_routes`]: given the path of
/// a `GET` request, return `Some((status, content_type, body))`, or `None`
/// for a 404.
pub type RouteHandler = Arc<dyn Fn(&str) -> Option<RouteResponse> + Send + Sync>;

/// The Prometheus text exposition content type.
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// A tiny HTTP endpoint on a background thread.
///
/// [`MetricsServer::spawn`] serves `GET /metrics` (and `GET /`) with
/// whatever `render` returns at request time, `Content-Type: text/plain;
/// version=0.0.4`; [`MetricsServer::spawn_routes`] generalizes to any
/// path→response handler (daemon health endpoints ride on the same
/// listener). Anything unhandled gets a 404. One request per connection;
/// the listener thread exits on [`MetricsServer::shutdown`] (also invoked
/// on drop).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `/metrics` and `/` from `render`.
    pub fn spawn(
        addr: &str,
        render: Arc<dyn Fn() -> String + Send + Sync>,
    ) -> std::io::Result<MetricsServer> {
        Self::spawn_routes(
            addr,
            Arc::new(move |path: &str| {
                (path == "/metrics" || path == "/")
                    .then(|| (200, EXPOSITION_CONTENT_TYPE.to_owned(), render()))
            }),
        )
    }

    /// Bind `addr` and answer each `GET` from `routes`; a `None` becomes
    /// a 404.
    pub fn spawn_routes(addr: &str, routes: RouteHandler) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pctl-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = serve_one(stream, routes.as_ref());
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Total time a client gets to deliver its request head. The per-read
/// timeout alone is not enough: a slow-loris client dripping one byte per
/// read keeps resetting it and can wedge the single-threaded accept loop
/// for `500ms × head size`; the wall-clock deadline caps the whole head.
const HEAD_DEADLINE: std::time::Duration = std::time::Duration::from_secs(2);

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        404 => "Not Found",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

fn serve_one(
    mut stream: TcpStream,
    routes: &dyn Fn(&str) -> Option<RouteResponse>,
) -> std::io::Result<()> {
    // Read until the end of the request head (`\r\n\r\n`). A client may
    // deliver the request line in several small writes (e.g. `write_fmt`
    // issues one syscall per formatted fragment), so a single read could
    // see only a prefix like "GET " and mis-parse the path.
    let deadline = std::time::Instant::now() + HEAD_DEADLINE;
    let mut buf = [0u8; 2048];
    let mut n = 0usize;
    let mut timed_out = false;
    while n < buf.len() && !buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            timed_out = true;
            break;
        }
        stream.set_read_timeout(Some(remaining.min(std::time::Duration::from_millis(500))))?;
        match stream.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(_) => break,
        }
    }
    if timed_out {
        let body = "request head deadline exceeded\n";
        write!(
            stream,
            "HTTP/1.1 408 Request Timeout\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
        return stream.flush();
    }
    let head = String::from_utf8_lossy(&buf[..n]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let answer = if method == "GET" { routes(path) } else { None };
    match answer {
        Some((code, content_type, body)) => write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            code,
            status_text(code),
            content_type,
            body.len(),
            body
        )?,
        None => {
            let body = "not found; try /metrics\n";
            write!(
                stream,
                "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            )?;
        }
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_labels_are_sanitized_and_escaped() {
        assert_eq!(sanitize_metric_name("ok.name-x"), "ok_name_x");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_label_name("a.b"), "a_b");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_help("x\ny\\z"), "x\\ny\\\\z");
    }

    #[test]
    fn values_format_stably() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(0.5), "0.5");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NAN), "NaN");
    }

    #[test]
    fn render_orders_families_and_samples() {
        let mut e = Exposition::new();
        e.counter("zzz", "last family", &[], 1.0);
        e.counter("aaa_total", "first family", &[("p", "b")], 2.0);
        e.counter("aaa_total", "first family", &[("p", "a")], 3.0);
        let text = e.render();
        let a = text.find("aaa_total").unwrap();
        let z = text.find("zzz").unwrap();
        assert!(a < z, "families sorted by name:\n{text}");
        let pa = text.find("p=\"a\"").unwrap();
        let pb = text.find("p=\"b\"").unwrap();
        assert!(pa < pb, "samples sorted by labels:\n{text}");
        assert_eq!(validate_exposition(&text), Ok(3));
    }

    #[test]
    fn summary_emits_quantiles_sum_count() {
        let mut e = Exposition::new();
        e.summary(
            "lat_us",
            "latency",
            &[],
            &[(0.5, 10.0), (0.95, 20.0), (0.99, 30.0)],
            60.0,
            3,
        );
        let text = e.render();
        assert!(text.contains("# TYPE lat_us summary"), "{text}");
        assert!(text.contains("lat_us{quantile=\"0.5\"} 10"), "{text}");
        assert!(text.contains("lat_us_sum 60"), "{text}");
        assert!(text.contains("lat_us_count 3"), "{text}");
        assert_eq!(validate_exposition(&text), Ok(5));
    }

    #[test]
    fn histogram_buckets_cumulate_and_render_in_le_order() {
        let mut h = Histogram::new(&[0.25, 0.5, 1.0, 2.0, 4.0]);
        h.observe(0.125); // le=0.25
        h.observe(0.375); // le=0.5
        h.observe(0.375); // le=0.5
        h.observe(1.0); // le=1 (boundary is inclusive)
        h.observe(64.0); // +Inf
        assert_eq!(h.count(), 5);
        let mut e = Exposition::new();
        e.histogram("req_seconds", "request latency", &[("verb", "append")], &h);
        let text = e.render();
        let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(
            lines,
            vec![
                "req_seconds_bucket{verb=\"append\",le=\"0.25\"} 1",
                "req_seconds_bucket{verb=\"append\",le=\"0.5\"} 3",
                "req_seconds_bucket{verb=\"append\",le=\"1\"} 4",
                "req_seconds_bucket{verb=\"append\",le=\"2\"} 4",
                "req_seconds_bucket{verb=\"append\",le=\"4\"} 4",
                "req_seconds_bucket{verb=\"append\",le=\"+Inf\"} 5",
                "req_seconds_count{verb=\"append\"} 5",
                "req_seconds_sum{verb=\"append\"} 65.875",
            ],
            "{text}"
        );
        assert_eq!(validate_exposition(&text), Ok(8), "{text}");
    }

    #[test]
    fn numeric_le_bounds_sort_numerically_not_lexicographically() {
        // "10" < "2" lexicographically — the order field must win.
        let mut h = Histogram::new(&[2.0, 10.0]);
        h.observe(1.0);
        let mut e = Exposition::new();
        e.histogram("x_seconds", "", &[], &h);
        let text = e.render();
        let two = text.find("le=\"2\"").unwrap();
        let ten = text.find("le=\"10\"").unwrap();
        assert!(two < ten, "{text}");
        assert!(validate_exposition(&text).is_ok(), "{text}");
    }

    #[test]
    fn histograms_with_distinct_label_sets_stay_grouped() {
        let mut ha = Histogram::new(&[2.0, 10.0]);
        ha.observe(1.0);
        let mut hb = Histogram::new(&[2.0, 10.0]);
        hb.observe(5.0);
        let mut e = Exposition::new();
        e.histogram("req_seconds", "latency", &[("verb", "detect")], &ha);
        e.histogram("req_seconds", "latency", &[("verb", "append")], &hb);
        let text = e.render();
        // All append buckets precede all detect buckets (series grouped by
        // non-le labels), each internally in le order.
        let order: Vec<usize> = [
            "req_seconds_bucket{verb=\"append\",le=\"2\"}",
            "req_seconds_bucket{verb=\"append\",le=\"10\"}",
            "req_seconds_bucket{verb=\"append\",le=\"+Inf\"}",
            "req_seconds_bucket{verb=\"detect\",le=\"2\"}",
            "req_seconds_bucket{verb=\"detect\",le=\"10\"}",
            "req_seconds_bucket{verb=\"detect\",le=\"+Inf\"}",
        ]
        .iter()
        .map(|needle| {
            text.find(needle)
                .unwrap_or_else(|| panic!("{needle}\n{text}"))
        })
        .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "{text}");
        assert!(validate_exposition(&text).is_ok(), "{text}");
    }

    #[test]
    fn histogram_merge_adds_and_rejects_mismatched_bounds() {
        let mut a = Histogram::log_spaced(1e-6, 2.0, 8);
        let mut b = Histogram::log_spaced(1e-6, 2.0, 8);
        a.observe(1e-5);
        b.observe(1e-3);
        b.observe(100.0);
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 3);
        assert!((a.sum() - (1e-5 + 1e-3 + 100.0)).abs() < 1e-12);
        let c = Histogram::new(&[1.0]);
        assert!(a.merge(&c).is_err());
        assert_eq!(a.count(), 3, "failed merge must not mutate");
    }

    #[test]
    fn observe_duration_lands_in_a_latency_bucket() {
        let mut h = Histogram::latency_seconds();
        h.observe_duration(std::time::Duration::from_micros(3));
        // 3µs ≤ 4µs bound (1µs·2²).
        let mut e = Exposition::new();
        e.histogram("lat", "", &[], &h);
        assert!(e.render().contains("lat_bucket{le=\"0.000004\"} 1"));
    }

    #[test]
    fn validator_checks_histogram_families() {
        // A well-formed histogram passes.
        let good = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n\
                    h_sum 3\nh_count 2\n";
        assert_eq!(validate_exposition(good), Ok(4));
        // Non-cumulative bucket counts.
        let shrink = "# TYPE h histogram\n\
                      h_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 2\n\
                      h_sum 3\nh_count 2\n";
        assert!(validate_exposition(shrink)
            .unwrap_err()
            .contains("not cumulative"));
        // le bounds out of numeric order.
        let misordered = "# TYPE h histogram\n\
                          h_bucket{le=\"10\"} 1\nh_bucket{le=\"2\"} 1\n\
                          h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n";
        assert!(validate_exposition(misordered)
            .unwrap_err()
            .contains("out of order"));
        // +Inf bucket must equal _count.
        let drift = "# TYPE h histogram\n\
                     h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n\
                     h_sum 3\nh_count 5\n";
        assert!(validate_exposition(drift).unwrap_err().contains("+Inf"));
        // Missing +Inf bucket.
        let noinf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 3\nh_count 1\n";
        assert!(validate_exposition(noinf)
            .unwrap_err()
            .contains("missing +Inf"));
        // Missing _sum.
        let nosum = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n";
        assert!(validate_exposition(nosum)
            .unwrap_err()
            .contains("missing _sum"));
        // Series are checked independently per label set.
        let per_series = "# TYPE h histogram\n\
                          h_bucket{v=\"a\",le=\"1\"} 1\nh_bucket{v=\"a\",le=\"+Inf\"} 1\n\
                          h_sum{v=\"a\"} 1\nh_count{v=\"a\"} 1\n\
                          h_bucket{v=\"b\",le=\"1\"} 9\nh_bucket{v=\"b\",le=\"+Inf\"} 2\n\
                          h_sum{v=\"b\"} 1\nh_count{v=\"b\"} 2\n";
        let err = validate_exposition(per_series).unwrap_err();
        assert!(err.contains("v=b"), "{err}");
    }

    #[test]
    fn label_parser_round_trips_escapes() {
        let parsed = parse_labels("a=\"x\",b=\"q\\\"u\\\\o\\nte\"").unwrap();
        assert_eq!(
            parsed,
            vec![("a".into(), "x".into()), ("b".into(), "q\"u\\o\nte".into())]
        );
        assert!(parse_labels("a=\"unterminated").is_err());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_exposition("").is_err());
        assert!(validate_exposition("novalue\n").is_err());
        assert!(validate_exposition("x 1\nx 2\n").is_ok());
        assert!(validate_exposition("# TYPE x wat\nx 1\n").is_err());
        assert!(validate_exposition("# TYPE x counter\n# TYPE x counter\nx 1\n").is_err());
        assert!(validate_exposition("bad-name 1\n").is_err());
    }

    #[test]
    fn metrics_server_serves_render_output() {
        let render: Arc<dyn Fn() -> String + Send + Sync> =
            Arc::new(|| "# TYPE up gauge\nup 1\n".to_owned());
        let srv = MetricsServer::spawn("127.0.0.1:0", render).expect("bind");
        let addr = srv.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("read");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("version=0.0.4"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
        assert_eq!(validate_exposition(body), Ok(1), "{body}");

        // Unknown path → 404.
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /nope HTTP/1.1\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("read");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        srv.shutdown();
    }

    #[test]
    fn slow_loris_client_cannot_wedge_the_endpoint() {
        let render: Arc<dyn Fn() -> String + Send + Sync> =
            Arc::new(|| "# TYPE up gauge\nup 1\n".to_owned());
        let srv = MetricsServer::spawn("127.0.0.1:0", render).expect("bind");
        let addr = srv.local_addr();

        // A slow-loris client: drip one byte per 50ms, never finishing the
        // request head. Each byte used to reset the per-read timeout, so the
        // single-threaded accept loop was held for 500ms × 2048 reads; with
        // the wall-clock head deadline it is cut off after HEAD_DEADLINE.
        let loris = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            for _ in 0..200 {
                if s.write_all(b"G").is_err() {
                    break; // server gave up on us — the point of the test
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        });

        // Give the loris time to be accepted, then measure a real request.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let start = std::time::Instant::now();
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("read");
        let elapsed = start.elapsed();
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(
            elapsed < std::time::Duration::from_secs(8),
            "request behind a slow-loris client took {elapsed:?}"
        );
        loris.join().unwrap();
        srv.shutdown();
    }

    #[test]
    fn prof_report_renders_as_families() {
        let mut report = pctl_prof::ProfReport::default();
        report.gauges.insert("allocated_words".into(), 128);
        let mut e = Exposition::new();
        prof_families(&report, &mut e);
        let text = e.render();
        assert!(
            text.contains("pctl_prof_gauge{name=\"allocated_words\"} 128"),
            "{text}"
        );
        assert_eq!(validate_exposition(&text), Ok(1));
    }
}
