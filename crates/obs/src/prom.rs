//! Prometheus text exposition (format 0.0.4) and a `/metrics` endpoint.
//!
//! [`Exposition`] is a small builder for the Prometheus text format: callers
//! register counters, gauges and summaries; [`Exposition::render`] emits
//! `# HELP`/`# TYPE` lines, sanitized metric names, escaped label values,
//! and a byte-stable ordering (families sorted by name, samples sorted by
//! labels) so the output can be golden-file tested.
//!
//! [`MetricsServer`] serves any `Fn() -> String` renderer over a plain
//! `std::net::TcpListener` — no HTTP library, no new dependencies — so the
//! sim/online runners can expose live metrics while a run is in flight
//! (`curl http://addr/metrics`).
//!
//! [`prof_families`] bridges the hot-path profiler ([`pctl_prof`]) into an
//! exposition: phase aggregates become `pctl_prof_phase_*` families and
//! profiler gauges become `pctl_prof_gauge`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The metric kinds this writer emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PromKind {
    /// Monotonically increasing count.
    Counter,
    /// Last-write-wins level.
    Gauge,
    /// Precomputed quantiles plus `_sum`/`_count`.
    Summary,
}

impl PromKind {
    fn as_str(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
            PromKind::Summary => "summary",
        }
    }
}

#[derive(Clone, Debug)]
struct Sample {
    /// Appended to the family name (`""`, `"_sum"`, `"_count"`).
    suffix: &'static str,
    labels: Vec<(String, String)>,
    value: f64,
}

#[derive(Clone, Debug)]
struct Family {
    kind: PromKind,
    help: String,
    samples: Vec<Sample>,
}

/// Builder for one exposition document. See module docs.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    families: BTreeMap<String, Family>,
}

/// Sanitize a metric (family) name to `[a-zA-Z_:][a-zA-Z0-9_:]*`: invalid
/// characters become `_`, and a leading digit gets a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Sanitize a label name to `[a-zA-Z_][a-zA-Z0-9_]*`.
pub fn sanitize_label_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a `# HELP` text: `\` → `\\`, newline → `\n`.
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).into()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Exposition::default()
    }

    fn family(&mut self, name: &str, kind: PromKind, help: &str) -> &mut Family {
        let name = sanitize_metric_name(name);
        self.families.entry(name).or_insert_with(|| Family {
            kind,
            help: help.to_owned(),
            samples: Vec::new(),
        })
    }

    fn push(
        &mut self,
        name: &str,
        kind: PromKind,
        help: &str,
        suffix: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (sanitize_label_name(k), (*v).to_owned()))
            .collect();
        self.family(name, kind, help).samples.push(Sample {
            suffix,
            labels,
            value,
        });
    }

    /// Register one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, PromKind::Counter, help, "", labels, value);
    }

    /// Register one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, PromKind::Gauge, help, "", labels, value);
    }

    /// Register a summary: `(quantile, value)` pairs plus `_sum`/`_count`.
    pub fn summary(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        quantiles: &[(f64, f64)],
        sum: f64,
        count: u64,
    ) {
        for &(q, v) in quantiles {
            let mut ls: Vec<(&str, String)> =
                labels.iter().map(|(k, v)| (*k, (*v).to_owned())).collect();
            ls.push(("quantile", format_value(q)));
            let borrowed: Vec<(&str, &str)> = ls.iter().map(|(k, v)| (*k, v.as_str())).collect();
            self.push(name, PromKind::Summary, help, "", &borrowed, v);
        }
        self.push(name, PromKind::Summary, help, "_sum", labels, sum);
        self.push(
            name,
            PromKind::Summary,
            help,
            "_count",
            labels,
            count as f64,
        );
    }

    /// Render the exposition text (format 0.0.4).
    ///
    /// Families are emitted sorted by name; within a family, samples are
    /// sorted by (suffix, labels) so the document is byte-stable for a
    /// given logical content.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            if !fam.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&fam.help));
            }
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
            let mut samples = fam.samples.clone();
            samples.sort_by(|a, b| (a.suffix, &a.labels).cmp(&(b.suffix, &b.labels)));
            for s in samples {
                out.push_str(name);
                out.push_str(s.suffix);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
                    }
                    out.push('}');
                }
                let _ = writeln!(out, " {}", format_value(s.value));
            }
        }
        out
    }
}

/// Structurally validate exposition text: every non-comment line must be
/// `name[{labels}] value`, every `# TYPE` names a known kind, and no family
/// may appear twice. Returns the number of samples on success.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut seen_type: Vec<String> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("").to_owned();
            let kind = it.next().ok_or(format!("line {ln}: TYPE without kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(format!("line {ln}: unknown TYPE kind '{kind}'"));
            }
            if seen_type.contains(&name) {
                return Err(format!("line {ln}: duplicate TYPE for family '{name}'"));
            }
            seen_type.push(name);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // name{labels} value  |  name value
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {ln}: no value: '{line}'"))?;
        if !(value.parse::<f64>().is_ok() || matches!(value, "NaN" | "+Inf" | "-Inf")) {
            return Err(format!("line {ln}: bad value '{value}'"));
        }
        let name_part = head.split('{').next().unwrap_or("");
        let valid_name = !name_part.is_empty()
            && name_part.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            });
        if !valid_name {
            return Err(format!("line {ln}: bad metric name '{name_part}'"));
        }
        if head.contains('{') && !head.ends_with('}') {
            return Err(format!("line {ln}: unterminated label set: '{head}'"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".into());
    }
    Ok(samples)
}

/// Fold a profiler report into an exposition: per-phase span counts and
/// total/self nanoseconds, plus the profiler's store gauges.
pub fn prof_families(report: &pctl_prof::ProfReport, exp: &mut Exposition) {
    for (path, p) in &report.phases {
        let labels = [("phase", path.as_str())];
        exp.counter(
            "pctl_prof_phase_spans_total",
            "Completed profiler spans per phase path",
            &labels,
            p.count as f64,
        );
        exp.counter(
            "pctl_prof_phase_time_ns_total",
            "Total wall time per phase path, nanoseconds",
            &labels,
            p.total_ns as f64,
        );
        exp.counter(
            "pctl_prof_phase_self_time_ns_total",
            "Self (non-child) wall time per phase path, nanoseconds",
            &labels,
            p.self_ns as f64,
        );
    }
    for (name, v) in &report.gauges {
        exp.gauge(
            "pctl_prof_gauge",
            "Profiler store gauges (arena words, interval counts, ...)",
            &[("name", name.as_str())],
            *v as f64,
        );
    }
}

/// A tiny `/metrics` HTTP endpoint on a background thread.
///
/// Serves `GET /metrics` (and `GET /`) with whatever `render` returns at
/// request time, `Content-Type: text/plain; version=0.0.4`. Anything else
/// gets a 404. One request per connection; the listener thread exits on
/// [`MetricsServer::shutdown`] (also invoked on drop).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving.
    pub fn spawn(
        addr: &str,
        render: Arc<dyn Fn() -> String + Send + Sync>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pctl-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = serve_one(stream, render.as_ref());
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Total time a client gets to deliver its request head. The per-read
/// timeout alone is not enough: a slow-loris client dripping one byte per
/// read keeps resetting it and can wedge the single-threaded accept loop
/// for `500ms × head size`; the wall-clock deadline caps the whole head.
const HEAD_DEADLINE: std::time::Duration = std::time::Duration::from_secs(2);

fn serve_one(mut stream: TcpStream, render: &dyn Fn() -> String) -> std::io::Result<()> {
    // Read until the end of the request head (`\r\n\r\n`). A client may
    // deliver the request line in several small writes (e.g. `write_fmt`
    // issues one syscall per formatted fragment), so a single read could
    // see only a prefix like "GET " and mis-parse the path.
    let deadline = std::time::Instant::now() + HEAD_DEADLINE;
    let mut buf = [0u8; 2048];
    let mut n = 0usize;
    let mut timed_out = false;
    while n < buf.len() && !buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            timed_out = true;
            break;
        }
        stream.set_read_timeout(Some(remaining.min(std::time::Duration::from_millis(500))))?;
        match stream.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(_) => break,
        }
    }
    if timed_out {
        let body = "request head deadline exceeded\n";
        write!(
            stream,
            "HTTP/1.1 408 Request Timeout\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
        return stream.flush();
    }
    let head = String::from_utf8_lossy(&buf[..n]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method == "GET" && (path == "/metrics" || path == "/") {
        let body = render();
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else {
        let body = "not found; try /metrics\n";
        write!(
            stream,
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_labels_are_sanitized_and_escaped() {
        assert_eq!(sanitize_metric_name("ok.name-x"), "ok_name_x");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_label_name("a.b"), "a_b");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_help("x\ny\\z"), "x\\ny\\\\z");
    }

    #[test]
    fn values_format_stably() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(0.5), "0.5");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NAN), "NaN");
    }

    #[test]
    fn render_orders_families_and_samples() {
        let mut e = Exposition::new();
        e.counter("zzz", "last family", &[], 1.0);
        e.counter("aaa_total", "first family", &[("p", "b")], 2.0);
        e.counter("aaa_total", "first family", &[("p", "a")], 3.0);
        let text = e.render();
        let a = text.find("aaa_total").unwrap();
        let z = text.find("zzz").unwrap();
        assert!(a < z, "families sorted by name:\n{text}");
        let pa = text.find("p=\"a\"").unwrap();
        let pb = text.find("p=\"b\"").unwrap();
        assert!(pa < pb, "samples sorted by labels:\n{text}");
        assert_eq!(validate_exposition(&text), Ok(3));
    }

    #[test]
    fn summary_emits_quantiles_sum_count() {
        let mut e = Exposition::new();
        e.summary(
            "lat_us",
            "latency",
            &[],
            &[(0.5, 10.0), (0.95, 20.0), (0.99, 30.0)],
            60.0,
            3,
        );
        let text = e.render();
        assert!(text.contains("# TYPE lat_us summary"), "{text}");
        assert!(text.contains("lat_us{quantile=\"0.5\"} 10"), "{text}");
        assert!(text.contains("lat_us_sum 60"), "{text}");
        assert!(text.contains("lat_us_count 3"), "{text}");
        assert_eq!(validate_exposition(&text), Ok(5));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_exposition("").is_err());
        assert!(validate_exposition("novalue\n").is_err());
        assert!(validate_exposition("x 1\nx 2\n").is_ok());
        assert!(validate_exposition("# TYPE x wat\nx 1\n").is_err());
        assert!(validate_exposition("# TYPE x counter\n# TYPE x counter\nx 1\n").is_err());
        assert!(validate_exposition("bad-name 1\n").is_err());
    }

    #[test]
    fn metrics_server_serves_render_output() {
        let render: Arc<dyn Fn() -> String + Send + Sync> =
            Arc::new(|| "# TYPE up gauge\nup 1\n".to_owned());
        let srv = MetricsServer::spawn("127.0.0.1:0", render).expect("bind");
        let addr = srv.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("read");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("version=0.0.4"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
        assert_eq!(validate_exposition(body), Ok(1), "{body}");

        // Unknown path → 404.
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /nope HTTP/1.1\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("read");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        srv.shutdown();
    }

    #[test]
    fn slow_loris_client_cannot_wedge_the_endpoint() {
        let render: Arc<dyn Fn() -> String + Send + Sync> =
            Arc::new(|| "# TYPE up gauge\nup 1\n".to_owned());
        let srv = MetricsServer::spawn("127.0.0.1:0", render).expect("bind");
        let addr = srv.local_addr();

        // A slow-loris client: drip one byte per 50ms, never finishing the
        // request head. Each byte used to reset the per-read timeout, so the
        // single-threaded accept loop was held for 500ms × 2048 reads; with
        // the wall-clock head deadline it is cut off after HEAD_DEADLINE.
        let loris = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            for _ in 0..200 {
                if s.write_all(b"G").is_err() {
                    break; // server gave up on us — the point of the test
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        });

        // Give the loris time to be accepted, then measure a real request.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let start = std::time::Instant::now();
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("read");
        let elapsed = start.elapsed();
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(
            elapsed < std::time::Duration::from_secs(8),
            "request behind a slow-loris client took {elapsed:?}"
        );
        loris.join().unwrap();
        srv.shutdown();
    }

    #[test]
    fn prof_report_renders_as_families() {
        let mut report = pctl_prof::ProfReport::default();
        report.gauges.insert("allocated_words".into(), 128);
        let mut e = Exposition::new();
        prof_families(&report, &mut e);
        let text = e.render();
        assert!(
            text.contains("pctl_prof_gauge{name=\"allocated_words\"} 128"),
            "{text}"
        );
        assert_eq!(validate_exposition(&text), Ok(1));
    }
}
