//! Causal tracing and telemetry for the predicate-control workspace.
//!
//! Every controller in this repository — the offline Figure-2 engine, the
//! online scapegoat protocols, the fault-injecting simulator, the replay
//! harness — can emit a structured stream of [`Event`]s through a
//! [`Recorder`]. The stream is *itself causally ordered*: events carry the
//! emitting lane (process), a monotonic timestamp, and (for simulated
//! distributed runs) a Fidge–Mattern vector-clock annotation, so the
//! telemetry of a distributed run can be audited with the same
//! happened-before machinery the paper applies to the computation it
//! debugs.
//!
//! Three sinks cover the use cases:
//!
//! * [`NullRecorder`] — disabled; instrumented code pays one branch. Used
//!   by default everywhere so the fault-free fast path of the simulator
//!   stays bit-identical to the uninstrumented build.
//! * [`RingRecorder`] — bounded in-memory buffer (drop-oldest), for tests
//!   and for post-run export.
//! * [`JsonlRecorder`] — streams one JSON object per line to any
//!   `io::Write`; [`jsonl::parse`] reads the log back.
//!
//! [`chrome`] renders an event log (or, via [`timeline`], a raw deposet)
//! as Chrome `trace_event` JSON: open the file in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev) to see process lanes, message and
//! control arrows, and predicate truth intervals.
//!
//! [`prof`] (re-exported from the leaf crate `pctl-prof`) is the hot-path
//! profiler: thread-local scoped timers with hierarchical phase
//! attribution and store gauges, near-zero cost when disabled. [`prom`]
//! renders metrics and profiler aggregates as Prometheus text exposition
//! (format 0.0.4) and can serve them live over a `/metrics` TCP endpoint.
//!
//! [`flight`] is the black-box flight recorder: a bounded drop-oldest ring
//! of whole-daemon state snapshots, an anomaly detector over consecutive
//! snapshots, and self-contained postmortem bundles a long-running daemon
//! dumps when something goes wrong.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod flight;
pub mod jsonl;
pub mod prom;
pub mod recorder;
pub mod stats;
pub mod timeline;

/// Hot-path profiler: scoped timers, phase aggregates, store gauges,
/// Chrome trace export. Re-export of the leaf crate `pctl-prof` so hot
/// crates below `pctl-obs` in the dependency graph (causality, deposet)
/// can instrument themselves while observers keep one import path.
pub use pctl_prof as prof;

pub use event::{Event, EventKind};
pub use recorder::{JsonlRecorder, NullRecorder, Recorder, RingRecorder};
pub use stats::EventStats;
