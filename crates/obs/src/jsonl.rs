//! JSON-lines serialization of event logs.
//!
//! One [`Event`] per line, in recording order. This is the on-disk format
//! written by [`crate::JsonlRecorder`] and consumed by `pctl trace` /
//! `pctl stats`.

use crate::event::Event;

/// Serialize events to JSONL text (one object per line, trailing newline).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        // Event serialization cannot fail: no maps with non-string keys,
        // no floats.
        out.push_str(&serde_json::to_string(ev).expect("event serializes"));
        out.push('\n');
    }
    out
}

/// Parse JSONL text back into events. Blank lines are skipped; the first
/// malformed line aborts with its 1-based line number.
pub fn parse(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev: Event = serde_json::from_str(line).map_err(|e| format!("line {}: {e:?}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn jsonl_roundtrip() {
        let events = vec![
            Event::instant(1, 0, "crash").with_clock(vec![2, 0]),
            Event {
                ts: 3,
                lane: 1,
                name: "req".into(),
                kind: EventKind::MsgSend { id: 0, to: 0 },
                clock: None,
            },
            Event::counter(4, 0, "cs", 1),
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 3);
        assert_eq!(parse(&text).unwrap(), events);
    }

    #[test]
    fn parse_skips_blank_lines_and_reports_bad_ones() {
        let good = to_jsonl(&[Event::instant(0, 0, "a")]);
        let text = format!("\n{good}\n   \n");
        assert_eq!(parse(&text).unwrap().len(), 1);
        let err = parse("{\"nope\":true}").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }
}
