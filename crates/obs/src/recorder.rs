//! Recorder sinks for the structured event log.

use crate::event::Event;
use std::io::Write;

/// A sink for [`Event`]s.
///
/// Instrumented code MUST check [`enabled`](Recorder::enabled) before
/// building an event (names are `String`s; the check keeps the disabled
/// path allocation-free), and MUST NOT branch its own behavior on what it
/// records — recording is strictly observational, so a run with a
/// [`NullRecorder`] is bit-identical to an uninstrumented one.
///
/// Recorders are `Send`: simulation results (which own their sink) cross
/// thread boundaries when scenario sweeps fan out over scoped workers.
pub trait Recorder: Send {
    /// Whether this sink wants events at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Accept one event.
    fn record(&mut self, ev: Event);

    /// The events recorded so far, oldest first (empty for streaming or
    /// disabled sinks).
    fn snapshot(&self) -> Vec<Event> {
        Vec::new()
    }

    /// Events dropped by a bounded sink.
    fn dropped(&self) -> u64 {
        0
    }

    /// Flush any buffered output.
    fn flush(&mut self) {}
}

/// The no-op sink: zero events, zero allocation, one branch per call site.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _ev: Event) {}
}

/// Bounded in-memory sink; when full, the oldest events are dropped (and
/// counted), so the tail of a long run is always retained.
///
/// # Drop-oldest contract
///
/// With capacity `cap` and `n > cap` recorded events, the ring holds
/// exactly the **last `cap` events in arrival order** and
/// [`dropped`](Recorder::dropped) returns `n - cap`. Both
/// [`take`](RingRecorder::take) and [`snapshot`](Recorder::snapshot)
/// return the surviving events **oldest first** — i.e. after any number
/// of wraparounds the output is a contiguous, in-order suffix of the
/// recorded stream, never rotated or interleaved.
#[derive(Clone, Debug)]
pub struct RingRecorder {
    buf: std::collections::VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl RingRecorder {
    /// A ring holding at most `cap` events (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        RingRecorder {
            buf: std::collections::VecDeque::with_capacity(cap.min(4096)),
            cap,
            dropped: 0,
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drain the buffer, oldest first (see the type-level drop-oldest
    /// contract: after wraparound this is the in-order tail of the run).
    pub fn take(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, ev: Event) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    fn snapshot(&self) -> Vec<Event> {
        self.buf.iter().cloned().collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Streams one JSON object per line to a writer (see [`crate::jsonl`]).
pub struct JsonlRecorder<W: Write> {
    out: W,
    written: u64,
    /// First I/O or serialization error, if any (recording is
    /// observational, so errors are latched rather than propagated).
    error: Option<String>,
}

impl<W: Write> JsonlRecorder<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        JsonlRecorder {
            out,
            written: 0,
            error: None,
        }
    }

    /// Number of events successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error, if one occurred.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn record(&mut self, ev: Event) {
        if self.error.is_some() {
            return;
        }
        match serde_json::to_string(&ev) {
            Ok(line) => match writeln!(self.out, "{line}") {
                Ok(()) => self.written += 1,
                Err(e) => self.error = Some(e.to_string()),
            },
            Err(e) => self.error = Some(e.to_string()),
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn null_recorder_is_disabled_and_empty() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(Event::instant(0, 0, "x"));
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn ring_recorder_drops_oldest() {
        let mut r = RingRecorder::new(2);
        for i in 0..5u64 {
            r.record(Event::instant(i, 0, "e"));
        }
        assert_eq!(r.dropped(), 3);
        let evs = r.snapshot();
        assert_eq!(
            evs.iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![3, 4],
            "tail retained"
        );
        assert_eq!(r.take().len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn ring_recorder_take_is_oldest_first_after_wraparound() {
        // Capacity 4, 11 events: the buffer wraps nearly three times.
        let mut r = RingRecorder::new(4);
        for i in 0..11u64 {
            r.record(Event::instant(i, 0, "e"));
        }
        assert_eq!(r.dropped(), 7, "n - cap events dropped");
        let taken = r.take();
        assert_eq!(
            taken.iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![7, 8, 9, 10],
            "take() is the in-order tail, oldest first, never rotated"
        );
        assert!(r.is_empty(), "take() drains");

        // Refill after the drain: the contract holds across reuse too.
        for i in 100..103u64 {
            r.record(Event::instant(i, 0, "e"));
        }
        assert_eq!(
            r.take().iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![100, 101, 102]
        );
    }

    #[test]
    fn jsonl_recorder_streams_parseable_lines() {
        let mut r = JsonlRecorder::new(Vec::new());
        r.record(Event::counter(1, 0, "cs", 1));
        r.record(Event {
            ts: 2,
            lane: 1,
            name: "m".into(),
            kind: EventKind::MsgRecv { id: 9, from: 0 },
            clock: Some(vec![1, 1]),
        });
        assert_eq!(r.written(), 2);
        assert!(r.error().is_none());
        let text = String::from_utf8(r.into_inner()).unwrap();
        let parsed = crate::jsonl::parse(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].clock, Some(vec![1, 1]));
    }
}
