//! Flight recorder: bounded in-memory history of daemon-state snapshots,
//! anomaly detection over consecutive snapshots, and self-contained
//! postmortem bundles.
//!
//! The paper's thesis is *active* debugging — catch the system in the act
//! instead of reconstructing the crime afterwards. A long-running daemon
//! deserves the same treatment: by the time someone scrapes `/metrics`
//! after a worker poisons or a `Busy` storm hits, the interesting state is
//! gone. This module keeps a drop-oldest ring of [`FlightFrame`]s (cheap,
//! bounded, always on), scans consecutive frames for [`AnomalyKind`]s, and
//! — rate-limited per kind — dumps everything it knows into one
//! **postmortem bundle** directory that is useful on its own: manifest,
//! metrics history JSONL, per-session stats, a Chrome trace of recent
//! events, and recent slow-log lines.
//!
//! Everything here is strictly observational: recording a frame reads
//! counters, it never feeds back into any verdict. The daemon's torture
//! test pins that property by running with the recorder on and asserting
//! verdicts bit-identical to batch engines.

use crate::event::Event;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::time::{Duration, Instant};

/// Manifest schema identifier; bump on breaking bundle-layout changes.
pub const BUNDLE_SCHEMA: &str = "pctl-flight-v1";

/// Bundle file: the manifest itself.
pub const MANIFEST_FILE: &str = "manifest.json";
/// Bundle file: one [`FlightFrame`] JSON object per line, oldest first.
pub const HISTORY_FILE: &str = "history.jsonl";
/// Bundle file: the triggering [`AnomalyRecord`].
pub const ANOMALY_FILE: &str = "anomaly.json";
/// Bundle file: per-session stats at dump time (`Vec<SessionSample>`).
pub const SESSIONS_FILE: &str = "sessions.json";
/// Bundle file: Chrome `trace_event` JSON of recent trace-ring events.
pub const TRACE_FILE: &str = "trace.json";
/// Bundle file: recent slow-request log lines (JSONL, possibly empty).
pub const SLOW_FILE: &str = "slow.jsonl";

/// One session's slice of a [`FlightFrame`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionSample {
    /// Session name.
    pub name: String,
    /// Appends accepted so far.
    pub appends: u64,
    /// Estimated bytes in the session store.
    pub approx_bytes: u64,
    /// Commands waiting on the session's bounded queue.
    pub queue_depth: u64,
    /// Milliseconds since the last accepted command.
    pub idle_ms: u64,
    /// Exact nearest-rank p50 of recent append latencies, microseconds.
    pub p50_us: u64,
    /// Exact nearest-rank p95 over the same window.
    pub p95_us: u64,
    /// Engine queries answered so far.
    #[serde(default)]
    pub queries: u64,
    /// Queries answered from the engine's memoized verdict.
    #[serde(default)]
    pub cache_hits: u64,
}

/// One periodic snapshot of daemon state — a point on every counter and
/// gauge, plus per-session detail. Consecutive frames are what the
/// anomaly scan differentiates.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FlightFrame {
    /// Unix milliseconds when the frame was captured.
    pub ts_ms: u64,
    /// Milliseconds since the recorder started.
    pub uptime_ms: u64,
    /// Monotone counters by name (`appends_total`, `busy_total`,
    /// `poisoned_total`, `evictions_total`, `appends_refused_total`,
    /// `frames_rejected_total`, ...).
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges by name (`sessions`, `memory_bytes`,
    /// `memory_budget_bytes`, ...).
    pub gauges: BTreeMap<String, u64>,
    /// Exact p50 of the merged per-session append-latency windows,
    /// microseconds (0 with no samples).
    pub append_p50_us: u64,
    /// Exact p95 over the same merged window.
    pub append_p95_us: u64,
    /// Per-session detail, sorted by name.
    pub sessions: Vec<SessionSample>,
}

impl FlightFrame {
    /// A counter's value, 0 when the frame predates the counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, 0 when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

/// Bounded drop-oldest ring of [`FlightFrame`]s — the in-memory history
/// behind `/healthz` trend data and postmortem bundles. Same contract as
/// [`crate::RingRecorder`]: with `n > cap` recorded frames the ring holds
/// the last `cap` in arrival order and counts the rest as dropped.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    buf: VecDeque<FlightFrame>,
    cap: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// A ring holding at most `cap` frames (`cap ≥ 1`).
    pub fn new(cap: usize) -> FlightRecorder {
        assert!(cap >= 1);
        FlightRecorder {
            buf: VecDeque::with_capacity(cap.min(1024)),
            cap,
            dropped: 0,
        }
    }

    /// Record one frame, dropping the oldest when full.
    pub fn record(&mut self, frame: FlightFrame) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(frame);
    }

    /// Surviving frames, oldest first.
    pub fn history(&self) -> Vec<FlightFrame> {
        self.buf.iter().cloned().collect()
    }

    /// The most recent frame, if any.
    pub fn latest(&self) -> Option<&FlightFrame> {
        self.buf.back()
    }

    /// Frames dropped by the bounded ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no frames.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// The anomaly classes the frame-delta scan recognizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// `poisoned_total` advanced: a session worker panicked and was
    /// quarantined.
    WorkerPoisoned,
    /// `evictions_total` advanced: an idle session was sacrificed under
    /// session/memory pressure.
    SessionEvicted,
    /// `busy_total` advanced faster than the configured per-second rate:
    /// bounded queues are bouncing appends in a storm.
    BusySpike,
    /// The merged append p95 crossed the latency SLO.
    SloBurn,
    /// `memory_bytes` crossed `memory_budget_bytes` (the daemon starts
    /// refusing appends past this point).
    BudgetBreach,
    /// `frames_rejected_total` advanced: a connection was dropped after an
    /// unrecoverable framing error (oversized/corrupt declaration).
    FrameRejected,
}

impl AnomalyKind {
    /// Every kind, in scan order.
    pub const ALL: [AnomalyKind; 6] = [
        AnomalyKind::WorkerPoisoned,
        AnomalyKind::SessionEvicted,
        AnomalyKind::BusySpike,
        AnomalyKind::SloBurn,
        AnomalyKind::BudgetBreach,
        AnomalyKind::FrameRejected,
    ];

    /// Stable kebab-case slug (bundle directory names, report lines).
    pub fn slug(&self) -> &'static str {
        match self {
            AnomalyKind::WorkerPoisoned => "worker-poisoned",
            AnomalyKind::SessionEvicted => "session-evicted",
            AnomalyKind::BusySpike => "busy-spike",
            AnomalyKind::SloBurn => "slo-burn",
            AnomalyKind::BudgetBreach => "budget-breach",
            AnomalyKind::FrameRejected => "frame-rejected",
        }
    }
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// One detected anomaly: what, when, how bad, and (when attributable)
/// which session.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnomalyRecord {
    /// Unix milliseconds of the frame that surfaced the anomaly.
    pub ts_ms: u64,
    /// The anomaly class.
    pub kind: AnomalyKind,
    /// The session the anomaly is attributed to, when one stands out
    /// (deepest queue for a busy spike, slowest p95 for an SLO burn,
    /// biggest store for a budget breach).
    pub session: Option<String>,
    /// Human-readable summary.
    pub detail: String,
    /// The measured value that crossed the threshold.
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
}

/// Thresholds for the level/rate-based detectors. The delta detectors
/// (poison, eviction, frame rejection) fire on any advance.
#[derive(Clone, Copy, Debug)]
pub struct AnomalyThresholds {
    /// `Busy` bounces per second above which a [`AnomalyKind::BusySpike`]
    /// fires.
    pub busy_per_sec: f64,
    /// Merged append-p95 (µs) above which a [`AnomalyKind::SloBurn`]
    /// fires.
    pub slo_p95_us: u64,
}

impl Default for AnomalyThresholds {
    fn default() -> Self {
        AnomalyThresholds {
            busy_per_sec: 50.0,
            slo_p95_us: 100_000,
        }
    }
}

/// Scan one pair of consecutive frames for anomalies. Pure — no clock, no
/// rate limiting — so every detector is unit-testable on synthetic frames;
/// [`AnomalyDetector`] adds the per-kind rate limit on top.
pub fn scan(
    prev: &FlightFrame,
    cur: &FlightFrame,
    thresholds: &AnomalyThresholds,
) -> Vec<AnomalyRecord> {
    let mut out = Vec::new();
    let delta = |name: &str| cur.counter(name).saturating_sub(prev.counter(name));
    let record =
        |kind, session: Option<String>, detail: String, value: f64, threshold: f64| AnomalyRecord {
            ts_ms: cur.ts_ms,
            kind,
            session,
            detail,
            value,
            threshold,
        };

    let poisoned = delta("poisoned_total");
    if poisoned > 0 {
        out.push(record(
            AnomalyKind::WorkerPoisoned,
            None,
            format!("{poisoned} session worker(s) panicked and were quarantined"),
            poisoned as f64,
            0.0,
        ));
    }
    let evicted = delta("evictions_total");
    if evicted > 0 {
        out.push(record(
            AnomalyKind::SessionEvicted,
            None,
            format!("{evicted} idle session(s) evicted under pressure"),
            evicted as f64,
            0.0,
        ));
    }
    // Busy rate over the real inter-frame interval, not the nominal one:
    // a stalled sampler must not inflate the rate.
    let dt_s = (cur.ts_ms.saturating_sub(prev.ts_ms)).max(1) as f64 / 1000.0;
    let busy_rate = delta("busy_total") as f64 / dt_s;
    if busy_rate > thresholds.busy_per_sec {
        let deepest = cur
            .sessions
            .iter()
            .max_by_key(|s| s.queue_depth)
            .filter(|s| s.queue_depth > 0);
        out.push(record(
            AnomalyKind::BusySpike,
            deepest.map(|s| s.name.clone()),
            format!("{busy_rate:.0} Busy bounce(s)/s across bounded session queues"),
            busy_rate,
            thresholds.busy_per_sec,
        ));
    }
    if cur.append_p95_us > thresholds.slo_p95_us {
        let slowest = cur.sessions.iter().max_by_key(|s| s.p95_us);
        out.push(record(
            AnomalyKind::SloBurn,
            slowest.map(|s| s.name.clone()),
            format!(
                "append p95 {}µs over the {}µs SLO",
                cur.append_p95_us, thresholds.slo_p95_us
            ),
            cur.append_p95_us as f64,
            thresholds.slo_p95_us as f64,
        ));
    }
    let budget = cur.gauge("memory_budget_bytes");
    let memory = cur.gauge("memory_bytes");
    if budget > 0 && memory > budget {
        let biggest = cur.sessions.iter().max_by_key(|s| s.approx_bytes);
        out.push(record(
            AnomalyKind::BudgetBreach,
            biggest.map(|s| s.name.clone()),
            format!("{memory} bytes across session stores over the {budget}-byte budget"),
            memory as f64,
            budget as f64,
        ));
    }
    let rejected = delta("frames_rejected_total");
    if rejected > 0 {
        out.push(record(
            AnomalyKind::FrameRejected,
            None,
            format!("{rejected} connection(s) dropped after unrecoverable framing errors"),
            rejected as f64,
            0.0,
        ));
    }
    out
}

/// Per-kind rate limiter: a kind that fired at `t` is suppressed until
/// `t + window`. Takes the clock as an argument so tests drive it with
/// synthetic instants.
#[derive(Clone, Debug)]
pub struct RateLimiter {
    window: Duration,
    last: BTreeMap<&'static str, Instant>,
}

impl RateLimiter {
    /// A limiter allowing one firing per kind per `window`.
    pub fn new(window: Duration) -> RateLimiter {
        RateLimiter {
            window,
            last: BTreeMap::new(),
        }
    }

    /// Whether `kind` may fire at `now`; records the firing when allowed.
    pub fn allow(&mut self, kind: AnomalyKind, now: Instant) -> bool {
        match self.last.get(kind.slug()) {
            Some(&t) if now.duration_since(t) < self.window => false,
            _ => {
                self.last.insert(kind.slug(), now);
                true
            }
        }
    }
}

/// The stateful detector the daemon's sampler drives: keeps the previous
/// frame, scans each new one, and rate-limits per anomaly kind.
#[derive(Clone, Debug)]
pub struct AnomalyDetector {
    thresholds: AnomalyThresholds,
    limiter: RateLimiter,
    prev: Option<FlightFrame>,
}

impl AnomalyDetector {
    /// A detector with the given thresholds and per-kind rate-limit
    /// window.
    pub fn new(thresholds: AnomalyThresholds, window: Duration) -> AnomalyDetector {
        AnomalyDetector {
            thresholds,
            limiter: RateLimiter::new(window),
            prev: None,
        }
    }

    /// Scan `frame` against the previous one and return the anomalies
    /// that pass the rate limit at `now`. The first frame establishes the
    /// baseline and never fires.
    pub fn observe(&mut self, frame: &FlightFrame, now: Instant) -> Vec<AnomalyRecord> {
        let fired = match &self.prev {
            Some(prev) => scan(prev, frame, &self.thresholds)
                .into_iter()
                .filter(|a| self.limiter.allow(a.kind, now))
                .collect(),
            None => Vec::new(),
        };
        self.prev = Some(frame.clone());
        fired
    }
}

// ------------------------------------------------------------- bundles --

/// The `manifest.json` at the root of a postmortem bundle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BundleManifest {
    /// Always [`BUNDLE_SCHEMA`].
    pub schema: String,
    /// Unix milliseconds when the bundle was written.
    pub created_ms: u64,
    /// The anomaly that triggered the dump.
    pub anomaly: AnomalyRecord,
    /// Frames in `history.jsonl`.
    pub frames: u64,
    /// Frames the bounded history ring had already dropped.
    pub frames_dropped: u64,
    /// Recent anomalies (bounded, oldest first, including the trigger).
    pub recent_anomalies: Vec<AnomalyRecord>,
    /// Files in the bundle directory, relative names.
    pub files: Vec<String>,
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Write one self-contained postmortem bundle directory.
///
/// `trace_events` are recent trace-ring events of the attributed session
/// (may be empty — the trace file is still written and still validates);
/// `slow_lines` are recent slow-request log lines. Fails only on I/O —
/// callers treat a failure as "no bundle", never as a daemon error.
#[allow(clippy::too_many_arguments)]
pub fn write_bundle(
    dir: &Path,
    anomaly: &AnomalyRecord,
    history: &[FlightFrame],
    frames_dropped: u64,
    recent_anomalies: &[AnomalyRecord],
    trace_events: &[Event],
    processes: u32,
    slow_lines: &[String],
) -> std::io::Result<()> {
    let io_err = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
    std::fs::create_dir_all(dir)?;
    let mut history_jsonl = String::new();
    for frame in history {
        history_jsonl
            .push_str(&serde_json::to_string(frame).map_err(|e| io_err(format!("frame: {e:?}")))?);
        history_jsonl.push('\n');
    }
    std::fs::write(dir.join(HISTORY_FILE), history_jsonl)?;
    std::fs::write(
        dir.join(ANOMALY_FILE),
        serde_json::to_string_pretty(anomaly).map_err(|e| io_err(format!("anomaly: {e:?}")))?,
    )?;
    let sessions: &[SessionSample] = history.last().map(|f| f.sessions.as_slice()).unwrap_or(&[]);
    std::fs::write(
        dir.join(SESSIONS_FILE),
        serde_json::to_string_pretty(&sessions.to_vec())
            .map_err(|e| io_err(format!("sessions: {e:?}")))?,
    )?;
    let mut events = trace_events.to_vec();
    crate::chrome::prune_orphan_flows(&mut events);
    let lanes: Vec<String> = (0..processes.max(1)).map(|i| format!("p{i}")).collect();
    std::fs::write(
        dir.join(TRACE_FILE),
        crate::chrome::chrome_trace(&events, &lanes),
    )?;
    let mut slow = String::new();
    for line in slow_lines {
        slow.push_str(line);
        slow.push('\n');
    }
    std::fs::write(dir.join(SLOW_FILE), slow)?;
    let manifest = BundleManifest {
        schema: BUNDLE_SCHEMA.to_owned(),
        created_ms: unix_ms(),
        anomaly: anomaly.clone(),
        frames: history.len() as u64,
        frames_dropped,
        recent_anomalies: recent_anomalies.to_vec(),
        files: vec![
            MANIFEST_FILE.to_owned(),
            HISTORY_FILE.to_owned(),
            ANOMALY_FILE.to_owned(),
            SESSIONS_FILE.to_owned(),
            TRACE_FILE.to_owned(),
            SLOW_FILE.to_owned(),
        ],
    };
    std::fs::write(
        dir.join(MANIFEST_FILE),
        serde_json::to_string_pretty(&manifest).map_err(|e| io_err(format!("manifest: {e:?}")))?,
    )?;
    Ok(())
}

/// A validated bundle, loaded back for rendering.
#[derive(Clone, Debug)]
pub struct Bundle {
    /// The parsed manifest.
    pub manifest: BundleManifest,
    /// The parsed metrics history, oldest first.
    pub history: Vec<FlightFrame>,
    /// The per-session stats at dump time.
    pub sessions: Vec<SessionSample>,
}

/// Validate a bundle directory against the `pctl-flight-v1` schema and
/// load it.
///
/// Checks: the manifest parses and declares [`BUNDLE_SCHEMA`]; every file
/// it lists exists; every `history.jsonl` line parses as a [`FlightFrame`]
/// and the count matches the manifest; `anomaly.json` parses and agrees
/// with the manifest's trigger; `sessions.json` parses; `trace.json` is a
/// schema-valid Chrome trace; every `slow.jsonl` line is a JSON object.
pub fn validate_bundle(dir: &Path) -> Result<Bundle, String> {
    let read =
        |name: &str| std::fs::read_to_string(dir.join(name)).map_err(|e| format!("{name}: {e}"));
    let manifest: BundleManifest = serde_json::from_str(&read(MANIFEST_FILE)?)
        .map_err(|e| format!("{MANIFEST_FILE}: {e:?}"))?;
    if manifest.schema != BUNDLE_SCHEMA {
        return Err(format!(
            "{MANIFEST_FILE}: schema {:?}, expected {BUNDLE_SCHEMA:?}",
            manifest.schema
        ));
    }
    for name in &manifest.files {
        if !dir.join(name).is_file() {
            return Err(format!("manifest lists missing file {name:?}"));
        }
    }
    let mut history = Vec::new();
    for (i, line) in read(HISTORY_FILE)?.lines().enumerate() {
        let frame: FlightFrame = serde_json::from_str(line)
            .map_err(|e| format!("{HISTORY_FILE} line {}: {e:?}", i + 1))?;
        history.push(frame);
    }
    if history.len() as u64 != manifest.frames {
        return Err(format!(
            "{HISTORY_FILE} holds {} frame(s), manifest says {}",
            history.len(),
            manifest.frames
        ));
    }
    for w in history.windows(2) {
        if w[0].ts_ms > w[1].ts_ms {
            return Err(format!("{HISTORY_FILE}: frames are not oldest-first"));
        }
    }
    let anomaly: AnomalyRecord =
        serde_json::from_str(&read(ANOMALY_FILE)?).map_err(|e| format!("{ANOMALY_FILE}: {e:?}"))?;
    if anomaly != manifest.anomaly {
        return Err(format!(
            "{ANOMALY_FILE} disagrees with the manifest trigger ({} vs {})",
            anomaly.kind, manifest.anomaly.kind
        ));
    }
    let sessions: Vec<SessionSample> = serde_json::from_str(&read(SESSIONS_FILE)?)
        .map_err(|e| format!("{SESSIONS_FILE}: {e:?}"))?;
    crate::chrome::validate_chrome_trace(&read(TRACE_FILE)?)
        .map_err(|e| format!("{TRACE_FILE}: {e}"))?;
    for (i, line) in read(SLOW_FILE)?.lines().enumerate() {
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| format!("{SLOW_FILE} line {}: {e:?}", i + 1))?;
        if v.as_object().is_none() {
            return Err(format!("{SLOW_FILE} line {}: not an object", i + 1));
        }
    }
    Ok(Bundle {
        manifest,
        history,
        sessions,
    })
}

/// Render a validated bundle as a human-readable incident report: the
/// trigger, a timeline of recent anomalies, the p50/p95 trajectory over
/// the recorded history, and the top sessions by queue depth at dump
/// time. This is what `pctl postmortem <bundle>` prints.
pub fn render_report(bundle: &Bundle) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let m = &bundle.manifest;
    let a = &m.anomaly;
    let _ = writeln!(out, "postmortem: {} at t={}ms", a.kind, a.ts_ms);
    let _ = writeln!(
        out,
        "  trigger : {} (value {:.1}, threshold {:.1}{})",
        a.detail,
        a.value,
        a.threshold,
        a.session
            .as_deref()
            .map(|s| format!(", session '{s}'"))
            .unwrap_or_default()
    );
    let _ = writeln!(
        out,
        "  history : {} frame(s) recorded, {} dropped by the bounded ring",
        m.frames, m.frames_dropped
    );
    let _ = writeln!(out, "  timeline (t relative to the trigger):");
    for rec in &m.recent_anomalies {
        let dt_s = (rec.ts_ms as i64 - a.ts_ms as i64) as f64 / 1000.0;
        let _ = writeln!(
            out,
            "    {dt_s:>+8.1}s  {:<16} {}{}",
            rec.kind.slug(),
            rec.detail,
            rec.session
                .as_deref()
                .map(|s| format!(" [session '{s}']"))
                .unwrap_or_default()
        );
    }
    if m.recent_anomalies.is_empty() {
        let _ = writeln!(out, "    (no earlier anomalies recorded)");
    }
    let _ = writeln!(out, "  append p50/p95 trajectory (µs), oldest first:");
    let frames = &bundle.history;
    let shown = frames.len().min(10);
    for f in &frames[frames.len() - shown..] {
        let dt_s = (f.ts_ms as i64 - a.ts_ms as i64) as f64 / 1000.0;
        let _ = writeln!(
            out,
            "    {dt_s:>+8.1}s  p50 {:>8}  p95 {:>8}  sessions {:>3}  busy_total {:>6}",
            f.append_p50_us,
            f.append_p95_us,
            f.gauge("sessions"),
            f.counter("busy_total"),
        );
    }
    if frames.is_empty() {
        let _ = writeln!(out, "    (empty history)");
    }
    let _ = writeln!(out, "  top sessions by queue depth at dump time:");
    let mut sessions = bundle.sessions.clone();
    sessions.sort_by(|x, y| {
        y.queue_depth
            .cmp(&x.queue_depth)
            .then(y.p95_us.cmp(&x.p95_us))
            .then(x.name.cmp(&y.name))
    });
    for s in sessions.iter().take(8) {
        let _ = writeln!(
            out,
            "    {:<20} queue {:>4}  appends {:>7}  p95 {:>8}µs  bytes {:>10}",
            s.name, s.queue_depth, s.appends, s.p95_us, s.approx_bytes
        );
    }
    if sessions.is_empty() {
        let _ = writeln!(out, "    (no live sessions at dump time)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(ts_ms: u64, counters: &[(&str, u64)], gauges: &[(&str, u64)]) -> FlightFrame {
        FlightFrame {
            ts_ms,
            uptime_ms: ts_ms,
            counters: counters
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            gauges: gauges.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            append_p50_us: 10,
            append_p95_us: 20,
            sessions: Vec::new(),
        }
    }

    #[test]
    fn recorder_drops_oldest_and_counts() {
        let mut r = FlightRecorder::new(3);
        for i in 0..7u64 {
            r.record(frame(i, &[], &[]));
        }
        assert_eq!(r.dropped(), 4);
        assert_eq!(
            r.history().iter().map(|f| f.ts_ms).collect::<Vec<_>>(),
            vec![4, 5, 6],
            "in-order tail retained"
        );
        assert_eq!(r.latest().unwrap().ts_ms, 6);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn delta_detectors_fire_on_any_advance() {
        let t = AnomalyThresholds::default();
        let prev = frame(
            1000,
            &[
                ("poisoned_total", 1),
                ("evictions_total", 2),
                ("frames_rejected_total", 3),
            ],
            &[],
        );
        let cur = frame(
            2000,
            &[
                ("poisoned_total", 2),
                ("evictions_total", 4),
                ("frames_rejected_total", 5),
            ],
            &[],
        );
        let kinds: Vec<AnomalyKind> = scan(&prev, &cur, &t).iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AnomalyKind::WorkerPoisoned,
                AnomalyKind::SessionEvicted,
                AnomalyKind::FrameRejected,
            ]
        );
        // No advance → no anomalies.
        assert!(scan(&cur, &cur, &t).is_empty());
    }

    #[test]
    fn rate_and_level_detectors_honor_thresholds() {
        let t = AnomalyThresholds {
            busy_per_sec: 10.0,
            slo_p95_us: 1000,
        };
        // 20 bounces in 1s = 20/s > 10/s; p95 stays under the SLO.
        let prev = frame(1000, &[("busy_total", 0)], &[]);
        let mut cur = frame(2000, &[("busy_total", 20)], &[]);
        cur.append_p95_us = 999;
        cur.sessions = vec![SessionSample {
            name: "deep".into(),
            queue_depth: 7,
            ..SessionSample::default()
        }];
        let found = scan(&prev, &cur, &t);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].kind, AnomalyKind::BusySpike);
        assert_eq!(found[0].session.as_deref(), Some("deep"));
        assert!((found[0].value - 20.0).abs() < 1e-9);

        // Same delta over 10s = 2/s: under the threshold.
        let slow = frame(11_000, &[("busy_total", 20)], &[]);
        assert!(scan(&prev, &slow, &t).is_empty());

        // SLO burn is level-based and names the slowest session.
        let mut burn = frame(2000, &[], &[]);
        burn.append_p95_us = 1500;
        burn.sessions = vec![
            SessionSample {
                name: "fast".into(),
                p95_us: 10,
                ..SessionSample::default()
            },
            SessionSample {
                name: "slow".into(),
                p95_us: 1500,
                ..SessionSample::default()
            },
        ];
        let found = scan(&frame(1000, &[], &[]), &burn, &t);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AnomalyKind::SloBurn);
        assert_eq!(found[0].session.as_deref(), Some("slow"));

        // Budget breach compares the gauges and names the biggest store.
        let mut breach = frame(
            2000,
            &[],
            &[("memory_bytes", 2048), ("memory_budget_bytes", 1024)],
        );
        breach.sessions = vec![SessionSample {
            name: "fat".into(),
            approx_bytes: 2000,
            ..SessionSample::default()
        }];
        let found = scan(&frame(1000, &[], &[]), &breach, &t);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AnomalyKind::BudgetBreach);
        assert_eq!(found[0].session.as_deref(), Some("fat"));
        // Under budget: silent.
        let under = frame(
            2000,
            &[],
            &[("memory_bytes", 512), ("memory_budget_bytes", 1024)],
        );
        assert!(scan(&frame(1000, &[], &[]), &under, &t).is_empty());
    }

    #[test]
    fn each_detector_fires_exactly_once_per_rate_limit_window() {
        // A persistent condition of every kind, sampled repeatedly inside
        // one window, yields exactly one record per kind; the next window
        // yields exactly one more.
        let window = Duration::from_secs(60);
        let thresholds = AnomalyThresholds {
            busy_per_sec: 1.0,
            slo_p95_us: 1,
        };
        let mut det = AnomalyDetector::new(thresholds, window);
        let base = Instant::now();
        let everything_wrong = |ts_ms: u64, total: u64| {
            let mut f = frame(
                ts_ms,
                &[
                    ("poisoned_total", total),
                    ("evictions_total", total),
                    ("busy_total", total * 1000),
                    ("frames_rejected_total", total),
                ],
                &[("memory_bytes", 4096), ("memory_budget_bytes", 1)],
            );
            f.append_p95_us = 999_999;
            f
        };
        assert!(
            det.observe(&everything_wrong(0, 0), base).is_empty(),
            "the first frame is the baseline and never fires"
        );
        let mut fired: Vec<AnomalyKind> = Vec::new();
        for tick in 1..=10u64 {
            let now = base + Duration::from_secs(tick);
            fired.extend(
                det.observe(&everything_wrong(tick * 1000, tick), now)
                    .iter()
                    .map(|a| a.kind),
            );
        }
        for kind in AnomalyKind::ALL {
            assert_eq!(
                fired.iter().filter(|k| **k == kind).count(),
                1,
                "{kind} must fire exactly once inside the rate-limit window"
            );
        }
        // Step past the window: each persistent condition fires once more.
        let now = base + window + Duration::from_secs(11);
        let again = det.observe(&everything_wrong(12_000, 12), now);
        let kinds: Vec<AnomalyKind> = again.iter().map(|a| a.kind).collect();
        for kind in AnomalyKind::ALL {
            assert_eq!(
                kinds.iter().filter(|k| **k == kind).count(),
                1,
                "{kind} fires exactly once in the next window"
            );
        }
    }

    #[test]
    fn bundle_roundtrips_validate_and_render() {
        let dir = std::env::temp_dir().join(format!("pctl_flight_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut history = Vec::new();
        for i in 0..5u64 {
            let mut f = frame(
                1_000 + i * 500,
                &[("busy_total", i * 10)],
                &[("sessions", 2)],
            );
            f.sessions = vec![
                SessionSample {
                    name: "a".into(),
                    appends: i,
                    queue_depth: i,
                    p95_us: 100 * i,
                    queries: 4,
                    cache_hits: 2,
                    ..SessionSample::default()
                },
                SessionSample {
                    name: "b".into(),
                    ..SessionSample::default()
                },
            ];
            history.push(f);
        }
        let anomaly = AnomalyRecord {
            ts_ms: 3_000,
            kind: AnomalyKind::BusySpike,
            session: Some("a".into()),
            detail: "40 Busy bounce(s)/s".into(),
            value: 40.0,
            threshold: 10.0,
        };
        let events = vec![
            Event::instant(5, 0, "internal"),
            Event::counter(6, 0, "ok", 1),
        ];
        let slow = vec![r#"{"verb":"append","latency_us":123}"#.to_owned()];
        write_bundle(
            &dir,
            &anomaly,
            &history,
            7,
            std::slice::from_ref(&anomaly),
            &events,
            3,
            &slow,
        )
        .expect("bundle written");
        let bundle = validate_bundle(&dir).expect("bundle validates");
        assert_eq!(bundle.manifest.frames, 5);
        assert_eq!(bundle.manifest.frames_dropped, 7);
        assert_eq!(bundle.manifest.anomaly, anomaly);
        assert_eq!(bundle.history.len(), 5);
        assert_eq!(bundle.sessions.len(), 2, "latest frame's sessions");
        let report = render_report(&bundle);
        assert!(report.contains("busy-spike"), "{report}");
        assert!(report.contains("session 'a'"), "{report}");
        assert!(report.contains("trajectory"), "{report}");

        // Corrupt the manifest schema: validation must refuse.
        let manifest_path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest_path).unwrap();
        std::fs::write(
            &manifest_path,
            text.replace(BUNDLE_SCHEMA, "pctl-flight-v0"),
        )
        .unwrap();
        assert!(
            validate_bundle(&dir).is_err(),
            "bad schema must not validate"
        );
        // Restore, then truncate the history: the frame count check fires.
        std::fs::write(&manifest_path, text).unwrap();
        std::fs::write(dir.join(HISTORY_FILE), "").unwrap();
        let err = validate_bundle(&dir).unwrap_err();
        assert!(err.contains("0 frame(s)"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
