//! The daemon: session registry, per-session workers, and the degradation
//! ladder.
//!
//! ## Threading model
//!
//! One accept-loop thread; one thread per connection (blocking reads
//! through a [`FrameDecoder`]); one worker thread per session owning that
//! session's [`StreamEngine`]. Connection threads never touch an engine —
//! they enqueue commands onto the session's **bounded** queue and the
//! worker applies them in FIFO order, which gives each client
//! read-your-writes: a query enqueued after appends observes them.
//!
//! ## Robustness surface
//!
//! * **Backpressure** — `Append` is acked on *enqueue*; when the bounded
//!   queue is full the daemon answers [`Response::Busy`] with a retry hint
//!   instead of buffering without bound.
//! * **Degradation ladder** — under session-count or memory pressure the
//!   daemon first evicts *idle* sessions (LRU by last activity, snapshots
//!   flushed), then refuses **new** sessions ([`ErrorKind::Capacity`]);
//!   live sessions are never evicted for a newcomer. Over the hard memory
//!   budget it refuses appends ([`ErrorKind::Budget`]) rather than dying.
//! * **Panic isolation** — each command runs under `catch_unwind`; a panic
//!   poisons only the owning session (engine dropped, memory released,
//!   [`ErrorKind::Poisoned`] tombstone until closed). The accept loop and
//!   every other session keep running.
//! * **Hostile input** — malformed JSON in a well-framed payload gets a
//!   structured error on the same connection; an oversized/corrupt frame
//!   declaration closes only that connection (framing cannot resync).
//! * **Graceful drain** — [`Daemon::shutdown`] (or the admin `Shutdown`
//!   verb) closes every session, flushing snapshots when a snapshot
//!   directory is configured, joins every worker, and reports how many
//!   failed to drain cleanly.

use crate::frame::{encode_frame, FrameDecoder, DEFAULT_MAX_FRAME};
use crate::proto::{
    ErrorKind, Request, RequestEnvelope, Response, ResponseEnvelope, StatsSnapshot,
};
use pctl_core::offline::OfflineOptions;
use pctl_core::StreamEngine;
use pctl_deposet::{AppendOp, PredicateClass};
use pctl_obs::flight::{
    write_bundle, AnomalyDetector, AnomalyRecord, AnomalyThresholds, FlightFrame, FlightRecorder,
    SessionSample,
};
use pctl_obs::prom::{prof_families, Exposition, Histogram, EXPOSITION_CONTENT_TYPE};
use pctl_obs::{Event, EventKind, Recorder, RingRecorder};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon tuning knobs. [`Config::default`] is sized for tests and small
/// debugging sessions; production callers raise the budgets.
#[derive(Clone, Debug)]
pub struct Config {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Maximum live sessions before the eviction/refusal ladder engages.
    pub max_sessions: usize,
    /// Hard cap on estimated bytes across all session stores.
    pub memory_budget: usize,
    /// Bounded per-session command-queue depth (backpressure threshold).
    pub queue_depth: usize,
    /// A session is evictable once inactive this long.
    pub idle_timeout: Duration,
    /// Maximum frame payload size accepted from clients.
    pub max_frame: usize,
    /// Retry hint attached to `Busy` responses.
    pub retry_after_ms: u64,
    /// When set, closed/evicted/drained sessions write their batch trace
    /// JSON to `<dir>/<session>.json`.
    pub snapshot_dir: Option<PathBuf>,
    /// Serve the `Crash`/`Sleep` fault-injection verbs. Off by default:
    /// the port is unauthenticated, and these verbs exist for torture
    /// tests and chaos drills, not production clients.
    pub fault_injection: bool,
    /// Request telemetry (per-verb latency histograms, queue-wait/apply
    /// split, per-session latency windows, trace rings, slow log). On by
    /// default; turning it off leaves only the PR-6 counters/gauges —
    /// the bench suite measures the difference to keep observation
    /// honest about its cost.
    pub telemetry: bool,
    /// Capacity of each session's telemetry event ring (drop-oldest),
    /// served by the `Trace` verb. 0 disables the rings (`Trace` answers
    /// with an empty event list).
    pub trace_ring: usize,
    /// When set, requests at least [`Config::slow_ms`] slow append one
    /// JSONL record (`ts_ms`, `session`, `verb`, `latency_us`,
    /// `queue_depth`, `outcome`) to this file.
    pub slow_log: Option<PathBuf>,
    /// Slow-request threshold, milliseconds.
    pub slow_ms: u64,
    /// When > 0, the slow log rotates once it would exceed this many
    /// bytes: the current file is atomically renamed to `<path>.1`
    /// (replacing any previous `.1`) and a fresh file is started — at
    /// most ~2× the cap on disk, instead of unbounded growth.
    pub slow_log_max_bytes: u64,
    /// The flight recorder: a background sampler snapshots daemon state
    /// every [`Config::flight_interval`] into a bounded in-memory ring
    /// and scans consecutive snapshots for anomalies. On by default —
    /// strictly observational (the torture test pins verdicts
    /// bit-identical with it on, and the bench suite prices it).
    pub flight: bool,
    /// Interval between flight-recorder snapshots.
    pub flight_interval: Duration,
    /// Snapshots retained in the in-memory history ring (drop-oldest).
    /// The default covers 2 minutes at the default interval.
    pub flight_history: usize,
    /// When set, each detected anomaly (rate-limited per kind) dumps a
    /// self-contained postmortem bundle directory under this path.
    pub postmortem_dir: Option<PathBuf>,
    /// Per-anomaly-kind rate-limit window: one firing (and at most one
    /// bundle) per kind per window.
    pub anomaly_window: Duration,
    /// Append-latency SLO: a merged p95 above this many microseconds is
    /// an [`SloBurn`](pctl_obs::flight::AnomalyKind::SloBurn) anomaly.
    pub slo_p95_us: u64,
    /// `Busy` bounces per second above which a
    /// [`BusySpike`](pctl_obs::flight::AnomalyKind::BusySpike) fires.
    pub busy_spike_per_sec: f64,
}

/// Hard clamp on a client-requested `Sleep` stall, even with
/// [`Config::fault_injection`] enabled — a stalled worker delays queue
/// drain and session close.
pub const MAX_SLEEP_MS: u64 = 5_000;

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:0".into(),
            max_sessions: 64,
            memory_budget: 64 << 20,
            queue_depth: 128,
            idle_timeout: Duration::from_secs(30),
            max_frame: DEFAULT_MAX_FRAME,
            retry_after_ms: 20,
            snapshot_dir: None,
            fault_injection: false,
            telemetry: true,
            trace_ring: 256,
            slow_log: None,
            slow_ms: 100,
            slow_log_max_bytes: 0,
            flight: true,
            flight_interval: Duration::from_millis(500),
            flight_history: 240,
            postmortem_dir: None,
            anomaly_window: Duration::from_secs(30),
            slo_p95_us: 100_000,
            busy_spike_per_sec: 50.0,
        }
    }
}

/// Per-session append-latency window: enough samples for a stable p95
/// without unbounded growth (`Stats` percentiles are exact over this
/// window, nearest-rank).
const LATENCY_WINDOW: usize = 512;

/// What a query command asks of the session worker.
enum QueryKind {
    Detect,
    Control,
    Verify(u64),
    Snapshot,
    /// Snapshot the session's telemetry event ring.
    Trace,
    /// Fault injection: panic inside the worker.
    Crash,
    /// Fault injection: stall the worker.
    Sleep(u64),
}

/// A command on a session's bounded queue.
enum Cmd {
    /// Already acked to the client; errors become the session's sticky
    /// error. The `Instant` is the enqueue time, stamped by the
    /// connection thread — the worker splits total append latency into
    /// queue wait (enqueue → dequeue) and store apply from it.
    Apply(AppendOp, Instant),
    Query(QueryKind, mpsc::Sender<Response>),
    /// Flush + exit; the reply confirms the worker is done with its store.
    Close(mpsc::Sender<Response>),
}

/// Registry entry shared between connection threads and the worker.
///
/// The worker itself holds an `Arc` to this struct, so the command sender
/// lives behind `Mutex<Option<..>>` rather than directly: [`close_session`]
/// *takes* it, which guarantees the channel disconnects once in-flight
/// clones drop and the worker's `recv()` loop exits — joining the worker
/// can therefore never deadlock on a sender the worker itself keeps alive.
///
/// [`close_session`]: Inner::close_session
struct SessionShared {
    name: String,
    tx: Mutex<Option<SyncSender<Cmd>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    poisoned: AtomicBool,
    /// First append failure; wedges the session until closed.
    sticky_error: Mutex<Option<String>>,
    last_active: Mutex<Instant>,
    approx_bytes: AtomicUsize,
    queue_len: AtomicUsize,
    /// Appends accepted (enqueued) for this session.
    appends: AtomicU64,
    /// Recent append latencies (enqueue → applied), microseconds, bounded
    /// to [`LATENCY_WINDOW`] (drop-oldest). `Stats` per-session p50/p95
    /// are exact nearest-rank percentiles over this window.
    lat_us: Mutex<VecDeque<u64>>,
    /// Engine queries (Detect/Control/Verify/Snapshot) answered by this
    /// session's worker.
    queries: AtomicU64,
    /// How many of those came from the engine's memoized verdict
    /// (mirrors the engine's monotone count; the global counter
    /// aggregates the deltas).
    cache_hits: AtomicU64,
}

impl SessionShared {
    fn touch(&self) {
        *self.last_active.lock().unwrap() = Instant::now();
    }

    fn push_latency(&self, us: u64) {
        let mut lat = self.lat_us.lock().unwrap();
        if lat.len() == LATENCY_WINDOW {
            lat.pop_front();
        }
        lat.push_back(us);
    }

    fn idle_for(&self) -> Duration {
        self.last_active.lock().unwrap().elapsed()
    }

    /// A transient clone of the command sender (`None` once the session is
    /// closing). Callers drop the clone right after enqueueing, so a taken
    /// sender still disconnects promptly.
    fn sender(&self) -> Option<SyncSender<Cmd>> {
        self.tx.lock().unwrap().clone()
    }
}

#[derive(Default)]
struct Stats {
    appends_total: AtomicU64,
    busy_total: AtomicU64,
    evictions_total: AtomicU64,
    sessions_refused_total: AtomicU64,
    appends_refused_total: AtomicU64,
    poisoned_total: AtomicU64,
    approx_bytes: AtomicUsize,
    /// Queries answered from a session engine's memoized verdict
    /// (aggregated from per-worker deltas after every query).
    query_cache_hits_total: AtomicU64,
    /// Connections dropped after an unrecoverable framing error
    /// (oversized or corrupt frame declaration).
    frames_rejected_total: AtomicU64,
    /// Anomalies the flight recorder detected (post rate limit).
    anomalies_total: AtomicU64,
    /// Postmortem bundles successfully written.
    postmortems_total: AtomicU64,
}

/// Request-telemetry state: per-verb latency histograms, the queue-wait /
/// store-apply split for appends, and the slow-request log sink.
///
/// Everything here is strictly observational — no verb branches on it —
/// so disabling it (`Config::telemetry = false`) changes no verdict, a
/// property the torture test pins by comparing daemon verdicts against
/// batch engines with telemetry on.
struct Telemetry {
    enabled: bool,
    /// `pctld_request_seconds{verb=...}`: wall time of `dispatch`, i.e.
    /// what the client waits for past framing.
    request_seconds: Mutex<BTreeMap<&'static str, Histogram>>,
    /// `pctld_append_queue_wait_seconds`: enqueue → worker dequeue.
    queue_wait_seconds: Mutex<Histogram>,
    /// `pctld_append_apply_seconds`: store apply proper.
    apply_seconds: Mutex<Histogram>,
    slow_log: Option<Mutex<SlowLogWriter>>,
    slow_threshold: Duration,
    /// The last [`RECENT_SLOW`] slow-record lines (drop-oldest), kept
    /// even without a slow-log file so postmortem bundles can include
    /// them.
    recent_slow: Mutex<VecDeque<String>>,
}

/// Recent slow-record lines retained in memory for postmortem bundles.
const RECENT_SLOW: usize = 128;

/// The slow-request log sink: a buffered appender with optional
/// size-capped rotation. When `max_bytes > 0` and the next line would
/// push the current file past the cap, the file is atomically renamed to
/// `<path>.1` (replacing any previous rotation) and a fresh file is
/// started — the log holds at most ~2× the cap on disk.
struct SlowLogWriter {
    path: PathBuf,
    out: std::io::BufWriter<std::fs::File>,
    bytes: u64,
    max_bytes: u64,
}

impl SlowLogWriter {
    fn open(path: &PathBuf, max_bytes: u64) -> std::io::Result<SlowLogWriter> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let bytes = file.metadata().map_or(0, |m| m.len());
        Ok(SlowLogWriter {
            path: path.clone(),
            out: std::io::BufWriter::new(file),
            bytes,
            max_bytes,
        })
    }

    /// Append one record line, rotating first when it would cross the
    /// cap. Write errors are swallowed (the log is diagnostics, never a
    /// reason to fail a request); rotation errors fall back to appending
    /// in place.
    fn write_line(&mut self, line: &str) {
        let incoming = line.len() as u64 + 1;
        if self.max_bytes > 0 && self.bytes > 0 && self.bytes + incoming > self.max_bytes {
            let _ = self.out.flush();
            let mut rotated = self.path.clone().into_os_string();
            rotated.push(".1");
            if std::fs::rename(&self.path, &rotated).is_ok() {
                if let Ok(file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)
                {
                    self.out = std::io::BufWriter::new(file);
                    self.bytes = 0;
                }
            }
        }
        let _ = writeln!(self.out, "{line}");
        let _ = self.out.flush();
        self.bytes += incoming;
    }
}

impl Telemetry {
    fn new(cfg: &Config) -> std::io::Result<Telemetry> {
        let slow_log = match (&cfg.slow_log, cfg.telemetry) {
            (Some(path), true) => Some(Mutex::new(SlowLogWriter::open(
                path,
                cfg.slow_log_max_bytes,
            )?)),
            _ => None,
        };
        Ok(Telemetry {
            enabled: cfg.telemetry,
            request_seconds: Mutex::new(BTreeMap::new()),
            queue_wait_seconds: Mutex::new(Histogram::latency_seconds()),
            apply_seconds: Mutex::new(Histogram::latency_seconds()),
            slow_log,
            slow_threshold: Duration::from_millis(cfg.slow_ms),
            recent_slow: Mutex::new(VecDeque::new()),
        })
    }

    fn observe_request(&self, verb: &'static str, dt: Duration) {
        self.request_seconds
            .lock()
            .unwrap()
            .entry(verb)
            .or_insert_with(Histogram::latency_seconds)
            .observe_duration(dt);
    }
}

/// One slow-request log record (JSONL). Owned fields: the vendored
/// serde derive does not handle generic (borrowing) structs.
#[derive(Serialize)]
struct SlowRecord {
    /// Unix milliseconds at the time of logging.
    ts_ms: u64,
    session: Option<String>,
    verb: String,
    latency_us: u64,
    /// The session's queue depth right after the request finished (0 for
    /// admin verbs and vanished sessions).
    queue_depth: u64,
    outcome: String,
}

/// Recent anomaly records retained for bundles, health, and reports.
const RECENT_ANOMALIES: usize = 32;

/// Flight-recorder state: the snapshot ring, the stateful anomaly
/// detector, and the recent-anomaly ring. `None` when `Config::flight`
/// is off — every hook then costs one `Option` check.
struct FlightState {
    recorder: Mutex<FlightRecorder>,
    detector: Mutex<AnomalyDetector>,
    recent: Mutex<VecDeque<AnomalyRecord>>,
    /// Daemon start, anchoring frame `uptime_ms`.
    epoch: Instant,
    /// Bundle sequence number, for unique directory names.
    bundle_seq: AtomicU64,
}

struct Inner {
    cfg: Config,
    addr: SocketAddr,
    stop: AtomicBool,
    draining: AtomicBool,
    sessions: Mutex<HashMap<String, Arc<SessionShared>>>,
    stats: Stats,
    telemetry: Telemetry,
    flight: Option<FlightState>,
}

/// A running daemon. Dropping it drains and stops the listener.
pub struct Daemon {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    flight: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Bind and start serving.
    pub fn spawn(cfg: Config) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let telemetry = Telemetry::new(&cfg)?;
        let flight_state = cfg.flight.then(|| FlightState {
            recorder: Mutex::new(FlightRecorder::new(cfg.flight_history.max(1))),
            detector: Mutex::new(AnomalyDetector::new(
                AnomalyThresholds {
                    busy_per_sec: cfg.busy_spike_per_sec,
                    slo_p95_us: cfg.slo_p95_us,
                },
                cfg.anomaly_window,
            )),
            recent: Mutex::new(VecDeque::new()),
            epoch: Instant::now(),
            bundle_seq: AtomicU64::new(0),
        });
        let inner = Arc::new(Inner {
            cfg,
            addr,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            sessions: Mutex::new(HashMap::new()),
            stats: Stats::default(),
            telemetry,
            flight: flight_state,
        });
        let inner2 = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("pctld-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if inner2.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_inner = Arc::clone(&inner2);
                    // Connection threads are detached: they exit on client
                    // EOF/error, and at process exit. A failed spawn only
                    // drops this connection.
                    let _ = std::thread::Builder::new()
                        .name("pctld-conn".into())
                        .spawn(move || serve_connection(stream, conn_inner));
                }
            })?;
        let flight = match inner.flight.is_some() {
            true => {
                let flight_inner = Arc::clone(&inner);
                Some(
                    std::thread::Builder::new()
                        .name("pctld-flight".into())
                        .spawn(move || flight_loop(flight_inner))?,
                )
            }
            false => None,
        };
        Ok(Daemon {
            inner,
            accept: Some(accept),
            flight,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Drain every session (flushing snapshots), stop the accept loop, and
    /// return the number of sessions that failed to drain cleanly.
    pub fn shutdown(mut self) -> u64 {
        let leaked = self.stop_and_drain();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.flight.take() {
            let _ = h.join();
        }
        leaked
    }

    /// Whether the daemon has been asked to stop — by a local
    /// [`Daemon::shutdown`] or by a client's `Shutdown` verb. The CLI's
    /// foreground loop polls this so a remote shutdown also ends
    /// `pctl serve`.
    pub fn is_stopped(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Live session count (drain asserts this reaches zero).
    pub fn session_count(&self) -> usize {
        self.inner.sessions.lock().unwrap().len()
    }

    /// Counter/gauge snapshot, as served to the `Stats` verb.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats_snapshot()
    }

    /// The raw append-latency window (microseconds, oldest first) behind
    /// a session's `Stats` percentiles. Diagnostic surface: tests use it
    /// to assert the served p50/p95 are *exact* nearest-rank percentiles
    /// of the recorded timings, not approximations.
    pub fn session_append_latencies(&self, name: &str) -> Option<Vec<u64>> {
        let sess = self.inner.sessions.lock().unwrap().get(name).cloned()?;
        let lat = sess.lat_us.lock().unwrap();
        Some(lat.iter().copied().collect())
    }

    /// Fold the daemon's gauges/counters into a Prometheus exposition
    /// (`pctld_*` families), for mounting on the existing `/metrics`
    /// server.
    pub fn prom_families(&self, exp: &mut Exposition) {
        self.inner.prom_families(exp);
    }

    /// Spawn the daemon's HTTP sidecar: `/metrics` (and `/`) render this
    /// daemon's families plus the hot-path profiler's; `/healthz` answers
    /// a JSON health report (ladder state, SLO burn, poisoned count);
    /// `/readyz` answers `200 ready` until a drain starts, then
    /// `503 draining` — load balancers stop routing before the listener
    /// dies.
    pub fn spawn_metrics(&self, addr: &str) -> std::io::Result<pctl_obs::prom::MetricsServer> {
        let inner = Arc::clone(&self.inner);
        pctl_obs::prom::MetricsServer::spawn_routes(
            addr,
            Arc::new(move |path: &str| match path {
                "/metrics" | "/" => {
                    let mut exp = Exposition::new();
                    inner.prom_families(&mut exp);
                    prof_families(&pctl_prof::report(), &mut exp);
                    Some((200, EXPOSITION_CONTENT_TYPE.to_owned(), exp.render()))
                }
                "/healthz" => Some((
                    200,
                    "application/json".to_owned(),
                    inner.health_json() + "\n",
                )),
                "/readyz" => match inner.draining.load(Ordering::SeqCst)
                    || inner.stop.load(Ordering::SeqCst)
                {
                    false => Some((200, "text/plain".to_owned(), "ready\n".to_owned())),
                    true => Some((503, "text/plain".to_owned(), "draining\n".to_owned())),
                },
                _ => None,
            }),
        )
    }

    /// The daemon's JSON health report, as served on `/healthz`.
    pub fn health_json(&self) -> String {
        self.inner.health_json()
    }

    /// The flight recorder's in-memory history, oldest first (empty when
    /// the recorder is disabled).
    pub fn flight_history(&self) -> Vec<FlightFrame> {
        self.inner
            .flight
            .as_ref()
            .map(|f| f.recorder.lock().unwrap().history())
            .unwrap_or_default()
    }

    fn stop_and_drain(&mut self) -> u64 {
        self.inner.draining.store(true, Ordering::SeqCst);
        let leaked = self.inner.drain_all();
        self.inner.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.inner.addr);
        leaked
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_drain();
            if let Some(h) = self.accept.take() {
                let _ = h.join();
            }
        }
        if let Some(h) = self.flight.take() {
            let _ = h.join();
        }
    }
}

impl Inner {
    fn stats_snapshot(&self) -> StatsSnapshot {
        let mut per_session: Vec<crate::proto::SessionStat> = self
            .sessions
            .lock()
            .unwrap()
            .values()
            .map(|sess| {
                let lat: Vec<u64> = {
                    let l = sess.lat_us.lock().unwrap();
                    l.iter().copied().collect()
                };
                let pct = pctl_obs::stats::Percentiles::of(&lat);
                crate::proto::SessionStat {
                    name: sess.name.clone(),
                    appends: sess.appends.load(Ordering::SeqCst),
                    approx_bytes: sess.approx_bytes.load(Ordering::SeqCst) as u64,
                    queue_depth: sess.queue_len.load(Ordering::SeqCst) as u64,
                    idle_ms: sess.idle_for().as_millis() as u64,
                    p50_us: pct.as_ref().map_or(0, |p| p.p50),
                    p95_us: pct.as_ref().map_or(0, |p| p.p95),
                    queries: sess.queries.load(Ordering::SeqCst),
                    cache_hits: sess.cache_hits.load(Ordering::SeqCst),
                }
            })
            .collect();
        per_session.sort_by(|a, b| a.name.cmp(&b.name));
        StatsSnapshot {
            sessions: per_session.len() as u64,
            appends_total: self.stats.appends_total.load(Ordering::SeqCst),
            busy_total: self.stats.busy_total.load(Ordering::SeqCst),
            evictions_total: self.stats.evictions_total.load(Ordering::SeqCst),
            sessions_refused_total: self.stats.sessions_refused_total.load(Ordering::SeqCst),
            appends_refused_total: self.stats.appends_refused_total.load(Ordering::SeqCst),
            poisoned_total: self.stats.poisoned_total.load(Ordering::SeqCst),
            approx_bytes: self.stats.approx_bytes.load(Ordering::SeqCst) as u64,
            budget_bytes: self.cfg.memory_budget as u64,
            query_cache_hits_total: self.stats.query_cache_hits_total.load(Ordering::SeqCst),
            frames_rejected_total: self.stats.frames_rejected_total.load(Ordering::SeqCst),
            anomalies_total: self.stats.anomalies_total.load(Ordering::SeqCst),
            postmortems_total: self.stats.postmortems_total.load(Ordering::SeqCst),
            per_session,
        }
    }

    fn prom_families(&self, exp: &mut Exposition) {
        let s = self.stats_snapshot();
        exp.gauge("pctld_sessions", "Live sessions", &[], s.sessions as f64);
        exp.gauge(
            "pctld_memory_bytes",
            "Estimated bytes across live session stores",
            &[],
            s.approx_bytes as f64,
        );
        exp.gauge(
            "pctld_memory_budget_bytes",
            "Configured hard memory budget",
            &[],
            s.budget_bytes as f64,
        );
        exp.counter(
            "pctld_appends_total",
            "Appends accepted (enqueued)",
            &[],
            s.appends_total as f64,
        );
        exp.counter(
            "pctld_busy_total",
            "Appends bounced with Busy (queue full)",
            &[],
            s.busy_total as f64,
        );
        exp.counter(
            "pctld_evictions_total",
            "Idle sessions evicted under pressure",
            &[],
            s.evictions_total as f64,
        );
        exp.counter(
            "pctld_sessions_refused_total",
            "Hello requests refused for capacity",
            &[],
            s.sessions_refused_total as f64,
        );
        exp.counter(
            "pctld_appends_refused_total",
            "Appends refused over the hard memory budget",
            &[],
            s.appends_refused_total as f64,
        );
        exp.counter(
            "pctld_poisoned_total",
            "Sessions quarantined after a worker panic",
            &[],
            s.poisoned_total as f64,
        );
        exp.counter(
            "pctld_query_cache_hits_total",
            "Queries answered from a session engine's memoized verdict",
            &[],
            s.query_cache_hits_total as f64,
        );
        exp.counter(
            "pctld_frames_rejected_total",
            "Connections dropped after an unrecoverable framing error",
            &[],
            s.frames_rejected_total as f64,
        );
        exp.counter(
            "pctld_anomalies_total",
            "Anomalies detected by the flight recorder (post rate limit)",
            &[],
            s.anomalies_total as f64,
        );
        exp.counter(
            "pctld_postmortems_total",
            "Postmortem bundles written",
            &[],
            s.postmortems_total as f64,
        );
        for sess in self.sessions.lock().unwrap().values() {
            exp.gauge(
                "pctld_queue_depth",
                "Commands waiting on each session's bounded queue",
                &[("session", sess.name.as_str())],
                sess.queue_len.load(Ordering::SeqCst) as f64,
            );
        }
        if self.telemetry.enabled {
            for (verb, h) in self.telemetry.request_seconds.lock().unwrap().iter() {
                exp.histogram(
                    "pctld_request_seconds",
                    "Request dispatch latency by verb, seconds",
                    &[("verb", verb)],
                    h,
                );
            }
            exp.histogram(
                "pctld_append_queue_wait_seconds",
                "Append latency spent waiting on the session queue (enqueue to worker dequeue), seconds",
                &[],
                &self.telemetry.queue_wait_seconds.lock().unwrap(),
            );
            exp.histogram(
                "pctld_append_apply_seconds",
                "Append latency spent applying to the session store, seconds",
                &[],
                &self.telemetry.apply_seconds.lock().unwrap(),
            );
        }
    }

    /// Record one slow request: append to the slow-log file (when
    /// configured, with rotation) and to the in-memory recent-slow ring
    /// that postmortem bundles include. Called only when telemetry is on
    /// and the request crossed the threshold.
    fn write_slow_log(
        &self,
        verb: &'static str,
        session: Option<&str>,
        dt: Duration,
        resp: &Response,
    ) {
        let queue_depth = session
            .and_then(|n| self.sessions.lock().unwrap().get(n).cloned())
            .map_or(0, |s| s.queue_len.load(Ordering::SeqCst) as u64);
        let outcome = match resp {
            Response::Busy { .. } => "busy".to_owned(),
            Response::Err { kind, .. } => format!("err:{kind:?}"),
            _ => "ok".to_owned(),
        };
        let record = SlowRecord {
            ts_ms: unix_ms(),
            session: session.map(str::to_owned),
            verb: verb.to_owned(),
            latency_us: dt.as_micros() as u64,
            queue_depth,
            outcome,
        };
        if let Ok(json) = serde_json::to_string(&record) {
            if let Some(log) = &self.telemetry.slow_log {
                log.lock().unwrap().write_line(&json);
            }
            let mut recent = self.telemetry.recent_slow.lock().unwrap();
            if recent.len() == RECENT_SLOW {
                recent.pop_front();
            }
            recent.push_back(json);
        }
    }

    /// Close one session: remove it from the registry, ask the worker to
    /// flush + exit, and join it. The worker releases the session's global
    /// memory accounting itself on exit, *after* draining whatever appends
    /// were still queued — subtracting here would leak their deltas into
    /// the global gauge. Returns whether the worker drained cleanly.
    fn close_session(&self, name: &str) -> Option<bool> {
        let sess = self.sessions.lock().unwrap().remove(name)?;
        // Take the session's sender so the channel is guaranteed to
        // disconnect: even if Cmd::Close never fits into a full queue (a
        // stalled worker behind a long query), the worker drains the queue,
        // sees the disconnect, flushes, and exits — join() always returns.
        let cmd_tx = sess.tx.lock().unwrap().take();
        let (tx, rx) = mpsc::channel();
        let mut queued = false;
        if let Some(cmd_tx) = cmd_tx {
            // Prefer an explicit Close (it confirms the flush); retry
            // briefly against a full queue before falling back to the
            // disconnect path above.
            for _ in 0..200 {
                match cmd_tx.try_send(Cmd::Close(tx.clone())) {
                    Ok(()) => {
                        sess.queue_len.fetch_add(1, Ordering::SeqCst);
                        queued = true;
                        break;
                    }
                    Err(TrySendError::Full(_)) => std::thread::sleep(Duration::from_millis(5)),
                    Err(TrySendError::Disconnected(_)) => break, // worker already gone
                }
            }
        }
        if queued {
            let _ = rx.recv_timeout(Duration::from_secs(10));
        }
        let handle = sess.worker.lock().unwrap().take();
        match handle {
            Some(h) => Some(h.join().is_ok()),
            None => Some(true),
        }
    }

    /// Evict the least-recently-active session that has been idle past the
    /// timeout. Live sessions are never touched. Returns whether one went.
    fn evict_one_idle(&self, protect: Option<&str>) -> bool {
        let candidate = {
            let map = self.sessions.lock().unwrap();
            map.values()
                .filter(|s| Some(s.name.as_str()) != protect)
                .filter(|s| s.idle_for() >= self.cfg.idle_timeout)
                .max_by_key(|s| s.idle_for())
                .map(|s| s.name.clone())
        };
        match candidate {
            Some(name) => {
                self.close_session(&name);
                self.stats.evictions_total.fetch_add(1, Ordering::SeqCst);
                true
            }
            None => false,
        }
    }

    fn over_budget(&self) -> bool {
        self.stats.approx_bytes.load(Ordering::SeqCst) > self.cfg.memory_budget
    }

    fn drain_all(&self) -> u64 {
        let names: Vec<String> = self.sessions.lock().unwrap().keys().cloned().collect();
        let mut leaked = 0u64;
        for name in names {
            if self.close_session(&name) == Some(false) {
                leaked += 1;
            }
        }
        leaked
    }

    /// Snapshot the daemon into one [`FlightFrame`]: every counter and
    /// gauge, the merged append-latency percentiles, and per-session
    /// detail. Read-only over the same state `/metrics` scrapes — this is
    /// what keeps the recorder strictly observational.
    fn flight_frame(&self, epoch: Instant) -> FlightFrame {
        let s = self.stats_snapshot();
        let merged: Vec<u64> = {
            let map = self.sessions.lock().unwrap();
            map.values()
                .flat_map(|sess| {
                    let lat = sess.lat_us.lock().unwrap();
                    lat.iter().copied().collect::<Vec<u64>>()
                })
                .collect()
        };
        let pct = pctl_obs::stats::Percentiles::of(&merged);
        let counters: BTreeMap<String, u64> = [
            ("appends_total", s.appends_total),
            ("busy_total", s.busy_total),
            ("evictions_total", s.evictions_total),
            ("sessions_refused_total", s.sessions_refused_total),
            ("appends_refused_total", s.appends_refused_total),
            ("poisoned_total", s.poisoned_total),
            ("query_cache_hits_total", s.query_cache_hits_total),
            ("frames_rejected_total", s.frames_rejected_total),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect();
        let gauges: BTreeMap<String, u64> = [
            ("sessions", s.sessions),
            ("memory_bytes", s.approx_bytes),
            ("memory_budget_bytes", s.budget_bytes),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect();
        FlightFrame {
            ts_ms: unix_ms(),
            uptime_ms: epoch.elapsed().as_millis() as u64,
            counters,
            gauges,
            append_p50_us: pct.as_ref().map_or(0, |p| p.p50),
            append_p95_us: pct.as_ref().map_or(0, |p| p.p95),
            sessions: s
                .per_session
                .iter()
                .map(|p| SessionSample {
                    name: p.name.clone(),
                    appends: p.appends,
                    approx_bytes: p.approx_bytes,
                    queue_depth: p.queue_depth,
                    idle_ms: p.idle_ms,
                    p50_us: p.p50_us,
                    p95_us: p.p95_us,
                    queries: p.queries,
                    cache_hits: p.cache_hits,
                })
                .collect(),
        }
    }

    /// Best-effort snapshot of a session's trace ring, for a postmortem
    /// bundle. Goes through the worker queue like any `Trace` verb; a
    /// busy, closing, or poisoned session simply contributes no events —
    /// a bundle must never wait on (or wedge) the thing it is documenting.
    fn bundle_trace(&self, session: Option<&str>) -> (Vec<Event>, u32) {
        let Some(name) = session else {
            return (Vec::new(), 1);
        };
        let Some(sess) = self.sessions.lock().unwrap().get(name).cloned() else {
            return (Vec::new(), 1);
        };
        let Some(cmd_tx) = sess.sender() else {
            return (Vec::new(), 1);
        };
        let (tx, rx) = mpsc::channel();
        if cmd_tx.try_send(Cmd::Query(QueryKind::Trace, tx)).is_ok() {
            sess.queue_len.fetch_add(1, Ordering::SeqCst);
            if let Ok(Response::Trace {
                events, processes, ..
            }) = rx.recv_timeout(Duration::from_secs(1))
            {
                return (events, processes.max(1));
            }
        }
        (Vec::new(), 1)
    }

    /// React to one rate-limited anomaly: remember it, count it, and —
    /// when a postmortem directory is configured — dump a bundle.
    fn handle_anomaly(&self, anomaly: AnomalyRecord) {
        let Some(flight) = &self.flight else { return };
        self.stats.anomalies_total.fetch_add(1, Ordering::SeqCst);
        {
            let mut recent = flight.recent.lock().unwrap();
            if recent.len() == RECENT_ANOMALIES {
                recent.pop_front();
            }
            recent.push_back(anomaly.clone());
        }
        let Some(root) = &self.cfg.postmortem_dir else {
            return;
        };
        let (history, dropped) = {
            let rec = flight.recorder.lock().unwrap();
            (rec.history(), rec.dropped())
        };
        let recent: Vec<AnomalyRecord> = flight.recent.lock().unwrap().iter().cloned().collect();
        let (events, processes) = self.bundle_trace(anomaly.session.as_deref());
        let slow: Vec<String> = self
            .telemetry
            .recent_slow
            .lock()
            .unwrap()
            .iter()
            .cloned()
            .collect();
        let seq = flight.bundle_seq.fetch_add(1, Ordering::SeqCst);
        let dir = root.join(format!("{}-{}-{}", anomaly.ts_ms, seq, anomaly.kind.slug()));
        if write_bundle(
            &dir, &anomaly, &history, dropped, &recent, &events, processes, &slow,
        )
        .is_ok()
        {
            self.stats.postmortems_total.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// The `/healthz` body: ladder state, SLO burn, poison count, and the
    /// last anomaly, small enough for a probe to parse every second.
    fn health_json(&self) -> String {
        let s = self.stats_snapshot();
        let draining = self.draining.load(Ordering::SeqCst) || self.stop.load(Ordering::SeqCst);
        let append_p95_us = match &self.flight {
            Some(f) => f
                .recorder
                .lock()
                .unwrap()
                .latest()
                .map_or(0, |fr| fr.append_p95_us),
            None => 0,
        };
        let last_anomaly = self.flight.as_ref().and_then(|f| {
            f.recent
                .lock()
                .unwrap()
                .back()
                .map(|a| format!("{} at t={}ms", a.kind, a.ts_ms))
        });
        let report = HealthReport {
            status: if draining { "draining" } else { "ok" }.to_owned(),
            sessions: s.sessions,
            max_sessions: self.cfg.max_sessions as u64,
            memory_bytes: s.approx_bytes,
            memory_budget_bytes: s.budget_bytes,
            over_budget: s.approx_bytes > s.budget_bytes,
            poisoned_total: s.poisoned_total,
            append_p95_us,
            slo_p95_us: self.cfg.slo_p95_us,
            slo_burn: append_p95_us > self.cfg.slo_p95_us,
            anomalies_total: s.anomalies_total,
            postmortems_total: s.postmortems_total,
            last_anomaly,
        };
        serde_json::to_string(&report).unwrap_or_else(|_| "{}".to_owned())
    }
}

/// The `/healthz` response body. Owned fields (vendored serde derive).
#[derive(Serialize)]
struct HealthReport {
    status: String,
    sessions: u64,
    max_sessions: u64,
    memory_bytes: u64,
    memory_budget_bytes: u64,
    over_budget: bool,
    poisoned_total: u64,
    append_p95_us: u64,
    slo_p95_us: u64,
    slo_burn: bool,
    anomalies_total: u64,
    postmortems_total: u64,
    last_anomaly: Option<String>,
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// The flight sampler ("pctld-flight" thread): every
/// [`Config::flight_interval`], snapshot the daemon into a frame, scan it
/// against the previous one, record it, and hand any rate-limited
/// anomalies to [`Inner::handle_anomaly`]. Sleeps in short chunks so
/// shutdown joins promptly.
fn flight_loop(inner: Arc<Inner>) {
    let Some(flight) = &inner.flight else { return };
    let epoch = flight.epoch;
    while !inner.stop.load(Ordering::SeqCst) {
        let frame = inner.flight_frame(epoch);
        let anomalies = flight
            .detector
            .lock()
            .unwrap()
            .observe(&frame, Instant::now());
        flight.recorder.lock().unwrap().record(frame);
        for anomaly in anomalies {
            inner.handle_anomaly(anomaly);
        }
        let mut remaining = inner.cfg.flight_interval;
        while !remaining.is_zero() && !inner.stop.load(Ordering::SeqCst) {
            let chunk = remaining.min(Duration::from_millis(25));
            std::thread::sleep(chunk);
            remaining = remaining.saturating_sub(chunk);
        }
    }
}

fn err(kind: ErrorKind, detail: impl Into<String>) -> Response {
    Response::Err {
        kind,
        detail: detail.into(),
    }
}

fn serve_connection(mut stream: TcpStream, inner: Arc<Inner>) {
    let mut decoder = FrameDecoder::new(inner.cfg.max_frame);
    let mut buf = [0u8; 8192];
    let mut shutdown_requested = false;
    'conn: loop {
        match decoder.next_frame() {
            Ok(Some(payload)) => {
                let (env, done) = handle_payload(&payload, &inner);
                if write_response(&mut stream, &env).is_err() {
                    break 'conn;
                }
                if done {
                    shutdown_requested = true;
                    break 'conn;
                }
                continue;
            }
            Ok(None) => {}
            Err(e) => {
                // Framing is unrecoverable: answer once, drop only this
                // connection. The accept loop and all sessions live on.
                inner
                    .stats
                    .frames_rejected_total
                    .fetch_add(1, Ordering::SeqCst);
                let env = ResponseEnvelope {
                    seq: 0,
                    resp: err(ErrorKind::Malformed, e.to_string()),
                };
                let _ = write_response(&mut stream, &env);
                break 'conn;
            }
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break 'conn,
            Ok(n) => decoder.push(&buf[..n]),
        }
    }
    if shutdown_requested {
        inner.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(inner.addr);
    }
}

fn write_response(stream: &mut TcpStream, env: &ResponseEnvelope) -> std::io::Result<()> {
    let json = serde_json::to_string(env)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut wire = Vec::with_capacity(json.len() + 4);
    encode_frame(json.as_bytes(), &mut wire);
    stream.write_all(&wire)
}

/// Decode and dispatch one frame payload. The boolean asks the connection
/// loop to stop (after a `Shutdown` drain completed).
fn handle_payload(payload: &[u8], inner: &Arc<Inner>) -> (ResponseEnvelope, bool) {
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(_) => {
            return (
                ResponseEnvelope {
                    seq: 0,
                    resp: err(ErrorKind::Malformed, "frame payload is not UTF-8"),
                },
                false,
            )
        }
    };
    let env: RequestEnvelope = match serde_json::from_str(text) {
        Ok(e) => e,
        Err(e) => {
            return (
                ResponseEnvelope {
                    seq: 0,
                    resp: err(ErrorKind::Malformed, format!("bad request JSON: {e}")),
                },
                false,
            )
        }
    };
    let seq = env.seq;
    let (resp, done) = dispatch(env.req, inner);
    (ResponseEnvelope { seq, resp }, done)
}

/// Dispatch one request, timing it into `pctld_request_seconds{verb=...}`
/// and the slow-request log. The telemetry wrapper is strictly
/// observational: the response comes from [`dispatch_verb`] untouched.
fn dispatch(req: Request, inner: &Arc<Inner>) -> (Response, bool) {
    let _prof = pctl_prof::span("pctld_dispatch");
    if !inner.telemetry.enabled {
        return dispatch_verb(req, inner);
    }
    let verb = req.verb();
    // The session name outlives `req` only when a slow sink (the log
    // file, or the bundle-feeding recent ring under the flight recorder)
    // might need it — the common path stays allocation-free.
    let slow_sink = inner.telemetry.slow_log.is_some() || inner.flight.is_some();
    let session = if slow_sink {
        req.session().map(str::to_owned)
    } else {
        None
    };
    let start = Instant::now();
    let (resp, done) = dispatch_verb(req, inner);
    let dt = start.elapsed();
    inner.telemetry.observe_request(verb, dt);
    if slow_sink && dt >= inner.telemetry.slow_threshold {
        inner.write_slow_log(verb, session.as_deref(), dt, &resp);
    }
    (resp, done)
}

fn dispatch_verb(req: Request, inner: &Arc<Inner>) -> (Response, bool) {
    match req {
        Request::Hello {
            session,
            locals,
            init,
            class,
        } => (handle_hello(session, locals, init, class, inner), false),
        Request::Append { session, op } => (handle_append(&session, op, inner), false),
        Request::Detect { session } => (query(&session, QueryKind::Detect, inner), false),
        Request::Control { session } => (query(&session, QueryKind::Control, inner), false),
        Request::Verify { session, limit } => {
            (query(&session, QueryKind::Verify(limit), inner), false)
        }
        Request::Snapshot { session } => (query(&session, QueryKind::Snapshot, inner), false),
        Request::Trace { session } => (query(&session, QueryKind::Trace, inner), false),
        Request::Close { session } => (handle_close(&session, inner), false),
        Request::Stats => (
            Response::Stats {
                stats: inner.stats_snapshot(),
            },
            false,
        ),
        Request::Shutdown => {
            inner.draining.store(true, Ordering::SeqCst);
            let leaked = inner.drain_all();
            (Response::Draining { leaked }, true)
        }
        // Fault-injection verbs share the unauthenticated port with
        // production verbs, so they are opt-in per daemon and Sleep's
        // client-chosen stall is clamped.
        Request::Crash { session } => {
            if !inner.cfg.fault_injection {
                (fault_injection_disabled(), false)
            } else {
                (query(&session, QueryKind::Crash, inner), false)
            }
        }
        Request::Sleep { session, ms } => {
            if !inner.cfg.fault_injection {
                (fault_injection_disabled(), false)
            } else {
                (
                    query(&session, QueryKind::Sleep(ms.min(MAX_SLEEP_MS)), inner),
                    false,
                )
            }
        }
    }
}

fn fault_injection_disabled() -> Response {
    err(
        ErrorKind::Malformed,
        "fault-injection verbs (Crash/Sleep) are disabled on this daemon",
    )
}

fn handle_hello(
    name: String,
    locals: Vec<pctl_deposet::LocalPredicate>,
    init: Option<Vec<Vec<(String, i64)>>>,
    class: Option<PredicateClass>,
    inner: &Arc<Inner>,
) -> Response {
    if inner.draining.load(Ordering::SeqCst) {
        return err(ErrorKind::Draining, "daemon is draining");
    }
    // With an explicit class the class is the predicate and carries its
    // own arity; `locals` is legacy-wire baggage and may be empty (but
    // must agree when present). Without one, the classic rule holds.
    let processes = match &class {
        Some(c) => {
            if !locals.is_empty() && locals.len() != c.arity() {
                return err(
                    ErrorKind::Malformed,
                    format!(
                        "locals cover {} processes, class arity is {}",
                        locals.len(),
                        c.arity()
                    ),
                );
            }
            c.arity()
        }
        None => locals.len(),
    };
    if processes == 0 {
        return err(ErrorKind::Malformed, "at least one local predicate");
    }
    // Names become snapshot filenames and metric labels: keep them tame.
    let name_ok = !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if !name_ok {
        return err(
            ErrorKind::Malformed,
            "session names are [A-Za-z0-9._-], 1..=128 chars",
        );
    }
    if let Some(init) = &init {
        if init.len() != processes {
            return err(
                ErrorKind::Malformed,
                format!(
                    "init covers {} processes, predicate arity is {processes}",
                    init.len()
                ),
            );
        }
    }
    // Build the engine before taking the sessions lock: class validation
    // errors (bad process index, arity mismatch inside the class) are the
    // client's fault and must answer Malformed, not Capacity.
    let engine = match class {
        Some(class) => match StreamEngine::for_class(class, init.as_deref()) {
            Ok(engine) => engine,
            Err(e) => return err(ErrorKind::Malformed, format!("bad predicate class: {e}")),
        },
        None => match &init {
            Some(init) => StreamEngine::new_with_init(locals, init),
            None => StreamEngine::new(locals),
        },
    };
    let mut engine = Some(engine);
    // Admission ladder: evict idle LRU sessions while over a capacity
    // limit; once nothing idle remains, refuse the *newcomer* — live
    // sessions are never sacrificed for a new one.
    loop {
        {
            let mut map = inner.sessions.lock().unwrap();
            if map.contains_key(&name) {
                return err(
                    ErrorKind::SessionExists,
                    format!("session '{name}' is live"),
                );
            }
            if map.len() < inner.cfg.max_sessions && !inner.over_budget() {
                // A failed thread spawn (fd/thread exhaustion — exactly the
                // degraded conditions this daemon must survive) is a
                // capacity refusal, never a panic under the sessions lock.
                return match spawn_session(
                    name.clone(),
                    engine.take().expect("hello spawns at most once"),
                    processes as u32,
                    inner,
                ) {
                    Ok(sess) => {
                        map.insert(name, sess);
                        Response::Ok
                    }
                    Err(e) => {
                        inner
                            .stats
                            .sessions_refused_total
                            .fetch_add(1, Ordering::SeqCst);
                        err(
                            ErrorKind::Capacity,
                            format!("cannot spawn session worker: {e}"),
                        )
                    }
                };
            }
        }
        if !inner.evict_one_idle(None) {
            inner
                .stats
                .sessions_refused_total
                .fetch_add(1, Ordering::SeqCst);
            return err(
                ErrorKind::Capacity,
                "session/memory capacity exhausted and no idle session to evict",
            );
        }
    }
}

fn spawn_session(
    name: String,
    engine: StreamEngine,
    processes: u32,
    inner: &Arc<Inner>,
) -> std::io::Result<Arc<SessionShared>> {
    let (tx, rx) = sync_channel(inner.cfg.queue_depth);
    let sess = Arc::new(SessionShared {
        name: name.clone(),
        tx: Mutex::new(Some(tx)),
        worker: Mutex::new(None),
        poisoned: AtomicBool::new(false),
        sticky_error: Mutex::new(None),
        last_active: Mutex::new(Instant::now()),
        approx_bytes: AtomicUsize::new(0),
        queue_len: AtomicUsize::new(0),
        appends: AtomicU64::new(0),
        lat_us: Mutex::new(VecDeque::new()),
        queries: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
    });
    let worker_sess = Arc::clone(&sess);
    let worker_inner = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name(format!("pctld-sess-{name}"))
        .spawn(move || worker_loop(engine, rx, worker_sess, worker_inner, processes))?;
    *sess.worker.lock().unwrap() = Some(handle);
    Ok(sess)
}

fn handle_append(name: &str, op: AppendOp, inner: &Arc<Inner>) -> Response {
    if inner.draining.load(Ordering::SeqCst) {
        return err(ErrorKind::Draining, "daemon is draining");
    }
    let Some(sess) = inner.sessions.lock().unwrap().get(name).cloned() else {
        return err(ErrorKind::UnknownSession, format!("no session '{name}'"));
    };
    if sess.poisoned.load(Ordering::SeqCst) {
        return err(ErrorKind::Poisoned, "session worker panicked");
    }
    if let Some(e) = sess.sticky_error.lock().unwrap().clone() {
        return err(ErrorKind::Append, e);
    }
    // Hard budget: shed idle load first, then refuse the append.
    while inner.over_budget() {
        if !inner.evict_one_idle(Some(name)) {
            inner
                .stats
                .appends_refused_total
                .fetch_add(1, Ordering::SeqCst);
            return err(ErrorKind::Budget, "daemon over hard memory budget");
        }
    }
    let Some(tx) = sess.sender() else {
        return err(
            ErrorKind::UnknownSession,
            format!("session '{name}' is closing"),
        );
    };
    match tx.try_send(Cmd::Apply(op, Instant::now())) {
        Ok(()) => {
            sess.queue_len.fetch_add(1, Ordering::SeqCst);
            sess.touch();
            sess.appends.fetch_add(1, Ordering::SeqCst);
            inner.stats.appends_total.fetch_add(1, Ordering::SeqCst);
            Response::Ok
        }
        Err(TrySendError::Full(_)) => {
            inner.stats.busy_total.fetch_add(1, Ordering::SeqCst);
            Response::Busy {
                retry_after_ms: inner.cfg.retry_after_ms,
            }
        }
        Err(TrySendError::Disconnected(_)) => err(
            ErrorKind::Poisoned,
            "session worker exited; close and re-open",
        ),
    }
}

fn query(name: &str, kind: QueryKind, inner: &Arc<Inner>) -> Response {
    let Some(sess) = inner.sessions.lock().unwrap().get(name).cloned() else {
        return err(ErrorKind::UnknownSession, format!("no session '{name}'"));
    };
    if sess.poisoned.load(Ordering::SeqCst) {
        return err(ErrorKind::Poisoned, "session worker panicked");
    }
    if let Some(e) = sess.sticky_error.lock().unwrap().clone() {
        return err(ErrorKind::Append, e);
    }
    let Some(cmd_tx) = sess.sender() else {
        return err(
            ErrorKind::UnknownSession,
            format!("session '{name}' is closing"),
        );
    };
    let (tx, rx) = mpsc::channel();
    match cmd_tx.try_send(Cmd::Query(kind, tx)) {
        Ok(()) => {
            sess.queue_len.fetch_add(1, Ordering::SeqCst);
            sess.touch();
        }
        Err(TrySendError::Full(_)) => {
            inner.stats.busy_total.fetch_add(1, Ordering::SeqCst);
            return Response::Busy {
                retry_after_ms: inner.cfg.retry_after_ms,
            };
        }
        Err(TrySendError::Disconnected(_)) => {
            return err(ErrorKind::Poisoned, "session worker exited")
        }
    }
    match rx.recv_timeout(Duration::from_secs(30)) {
        Ok(resp) => resp,
        Err(_) => err(ErrorKind::Internal, "session worker did not answer"),
    }
}

fn handle_close(name: &str, inner: &Arc<Inner>) -> Response {
    match inner.close_session(name) {
        None => err(ErrorKind::UnknownSession, format!("no session '{name}'")),
        Some(true) => Response::Ok,
        Some(false) => err(ErrorKind::Internal, "session worker did not join"),
    }
}

/// Session-worker telemetry: the trace ring the `Trace` verb serves, a
/// `msg id → sender lane` map so receive events can name their source, and
/// the session epoch that anchors ring timestamps.
struct WorkerTelemetry {
    ring: Option<RingRecorder>,
    senders: HashMap<u64, u32>,
    epoch: Instant,
    processes: u32,
}

impl WorkerTelemetry {
    fn new(cfg: &Config, processes: u32) -> WorkerTelemetry {
        WorkerTelemetry {
            ring: (cfg.telemetry && cfg.trace_ring > 0).then(|| RingRecorder::new(cfg.trace_ring)),
            senders: HashMap::new(),
            epoch: Instant::now(),
            processes,
        }
    }

    /// Record one applied op into the ring: message ops become flow
    /// events keyed by the deposet's message id, and every variable
    /// update becomes a counter sample (predicate truth renders as a
    /// step function in trace viewers). A send's destination is unknown
    /// until delivery in the deposet model, so it is recorded as
    /// `u32::MAX`; the matching receive names its true source lane.
    fn record(&mut self, op: &AppendOp) {
        let Some(ring) = &mut self.ring else { return };
        let ts = self.epoch.elapsed().as_micros() as u64;
        let lane = op.process();
        let (kind, name, updates) = match op {
            AppendOp::Internal { updates, .. } => (EventKind::Instant, "internal", updates),
            AppendOp::Send {
                msg, tag, updates, ..
            } => {
                self.senders.insert(*msg, lane);
                (
                    EventKind::MsgSend {
                        id: *msg,
                        to: u32::MAX,
                    },
                    tag.as_str(),
                    updates,
                )
            }
            AppendOp::Recv { msg, updates, .. } => (
                EventKind::MsgRecv {
                    id: *msg,
                    from: self.senders.get(msg).copied().unwrap_or(u32::MAX),
                },
                "recv",
                updates,
            ),
        };
        ring.record(Event {
            ts,
            lane,
            name: name.to_owned(),
            kind,
            clock: None,
        });
        for (var, value) in updates {
            ring.record(Event::counter(ts, lane, var, *value));
        }
    }

    fn trace_response(&self) -> Response {
        Response::Trace {
            events: self.ring.as_ref().map(|r| r.snapshot()).unwrap_or_default(),
            dropped: self.ring.as_ref().map(|r| r.dropped()).unwrap_or(0),
            processes: self.processes,
        }
    }
}

fn worker_loop(
    mut engine: StreamEngine,
    rx: Receiver<Cmd>,
    sess: Arc<SessionShared>,
    inner: Arc<Inner>,
    processes: u32,
) {
    let telemetry = inner.telemetry.enabled;
    let mut wt = WorkerTelemetry::new(&inner.cfg, processes);
    let mut cache_hits_seen = 0u64;
    while let Ok(cmd) = rx.recv() {
        sess.queue_len.fetch_sub(1, Ordering::SeqCst);
        match cmd {
            Cmd::Apply(op, enqueued) => {
                if sess.sticky_error.lock().unwrap().is_some() {
                    continue; // wedged: drop queued appends, keep answering
                }
                let queue_wait = enqueued.elapsed();
                let apply_start = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let _prof = pctl_prof::span("pctld_apply");
                    engine.apply(&op)
                }));
                let apply_dt = apply_start.elapsed();
                match outcome {
                    Ok(Ok(())) => {
                        let now = engine.store().approx_bytes();
                        let before = sess.approx_bytes.swap(now, Ordering::SeqCst);
                        inner
                            .stats
                            .approx_bytes
                            .fetch_add(now - before, Ordering::SeqCst);
                        if telemetry {
                            inner
                                .telemetry
                                .queue_wait_seconds
                                .lock()
                                .unwrap()
                                .observe_duration(queue_wait);
                            inner
                                .telemetry
                                .apply_seconds
                                .lock()
                                .unwrap()
                                .observe_duration(apply_dt);
                            sess.push_latency((queue_wait + apply_dt).as_micros() as u64);
                            wt.record(&op);
                        }
                    }
                    Ok(Err(e)) => {
                        *sess.sticky_error.lock().unwrap() = Some(e.to_string());
                    }
                    Err(_) => {
                        poison(&sess, &inner, &rx);
                        return;
                    }
                }
            }
            Cmd::Query(QueryKind::Trace, reply) => {
                // Answered from worker-local state; no engine involvement,
                // so it cannot panic the session.
                let _ = reply.send(wt.trace_response());
            }
            Cmd::Query(kind, reply) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| run_query(&mut engine, &kind)));
                match outcome {
                    Ok(resp) => {
                        // Fold this query's cache-hit delta into the
                        // daemon-wide counter; the engine's own count is
                        // monotone over the session's lifetime. The
                        // per-session mirrors feed `Stats` (and the
                        // `pctl top` hit-rate column).
                        let now = engine.cache_hits();
                        inner
                            .stats
                            .query_cache_hits_total
                            .fetch_add(now - cache_hits_seen, Ordering::SeqCst);
                        cache_hits_seen = now;
                        sess.queries.fetch_add(1, Ordering::SeqCst);
                        sess.cache_hits.store(now, Ordering::SeqCst);
                        let _ = reply.send(resp);
                    }
                    Err(_) => {
                        let _ = reply.send(err(ErrorKind::Poisoned, "query panicked"));
                        poison(&sess, &inner, &rx);
                        return;
                    }
                }
            }
            Cmd::Close(reply) => {
                flush_snapshot(&engine, &sess.name, &inner);
                release_memory(&sess, &inner);
                let _ = reply.send(Response::Ok);
                return;
            }
        }
    }
    // All senders gone (close_session took the registry's sender but could
    // not enqueue Cmd::Close past a full queue): the queue above has fully
    // drained, so flush and release the final memory accounting here —
    // this is what keeps the global gauge exact across closes under load.
    flush_snapshot(&engine, &sess.name, &inner);
    release_memory(&sess, &inner);
}

/// Subtract this session's final byte estimate from the global gauge,
/// exactly once (the swap zeroes the per-session gauge). Only the worker
/// (or `poison`, on the worker thread) calls this, after its last
/// `approx_bytes` update — so queued appends drained on the way out are
/// fully accounted before the subtraction.
fn release_memory(sess: &SessionShared, inner: &Inner) {
    inner.stats.approx_bytes.fetch_sub(
        sess.approx_bytes.swap(0, Ordering::SeqCst),
        Ordering::SeqCst,
    );
}

/// Quarantine the session after a panic: flag it, count it, release its
/// memory accounting, and answer everything still queued. The engine is
/// dropped by the caller returning — memory is actually released.
fn poison(sess: &Arc<SessionShared>, inner: &Arc<Inner>, rx: &Receiver<Cmd>) {
    sess.poisoned.store(true, Ordering::SeqCst);
    inner.stats.poisoned_total.fetch_add(1, Ordering::SeqCst);
    release_memory(sess, inner);
    while let Ok(cmd) = rx.try_recv() {
        sess.queue_len.fetch_sub(1, Ordering::SeqCst);
        match cmd {
            Cmd::Apply(..) => {}
            Cmd::Query(_, reply) => {
                let _ = reply.send(err(ErrorKind::Poisoned, "session worker panicked"));
            }
            Cmd::Close(reply) => {
                let _ = reply.send(Response::Ok);
            }
        }
    }
}

fn run_query(engine: &mut StreamEngine, kind: &QueryKind) -> Response {
    match kind {
        QueryKind::Detect => {
            let _prof = pctl_prof::span("pctld_detect");
            Response::Detect {
                violation: engine.detect_violation().map(|g| g.indices().to_vec()),
            }
        }
        QueryKind::Control => {
            let _prof = pctl_prof::span("pctld_control");
            match engine.control(OfflineOptions::default()) {
                Ok(rel) => Response::Control {
                    relation: Some(rel),
                    witness: None,
                },
                Err(inf) => Response::Control {
                    relation: None,
                    witness: Some(inf.witness),
                },
            }
        }
        QueryKind::Verify(limit) => {
            let _prof = pctl_prof::span("pctld_verify");
            match engine.control(OfflineOptions::default()) {
                Ok(rel) => match engine.verify(&rel, *limit as usize) {
                    Ok(()) => Response::Verify {
                        ok: true,
                        detail: format!("relation of {} pairs verified", rel.len()),
                    },
                    Err(e) => Response::Verify {
                        ok: false,
                        detail: e.to_string(),
                    },
                },
                Err(inf) => Response::Verify {
                    ok: false,
                    detail: inf.to_string(),
                },
            }
        }
        QueryKind::Snapshot => {
            let _prof = pctl_prof::span("pctld_snapshot");
            Response::Snapshot {
                trace: pctl_deposet::trace::to_json(&engine.snapshot()),
            }
        }
        // Intercepted by the worker loop (answered from worker-local
        // telemetry, not the engine).
        QueryKind::Trace => unreachable!("Trace never reaches run_query"),
        QueryKind::Crash => panic!("injected fault (Request::Crash)"),
        QueryKind::Sleep(ms) => {
            std::thread::sleep(Duration::from_millis(*ms));
            Response::Ok
        }
    }
}

fn flush_snapshot(engine: &StreamEngine, name: &str, inner: &Arc<Inner>) {
    let Some(dir) = &inner.cfg.snapshot_dir else {
        return;
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _prof = pctl_prof::span("pctld_flush");
        pctl_deposet::trace::to_json(&engine.snapshot())
    }));
    if let Ok(json) = outcome {
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join(format!("{name}.json")), json);
    }
}
