//! Length-prefixed framing for the daemon's wire protocol.
//!
//! Every frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. Framing is the only stateful layer of the protocol,
//! so it is the one that must survive hostile input: the decoder is a pure
//! push-based state machine (`push` bytes in, `next_frame` out) that
//! **never panics, never desyncs on fragmentation, and rejects oversized
//! declarations before buffering them** — a declared length beyond the
//! configured cap is reported as a structured [`FrameError`] with zero
//! bytes of the body read, because a 4 GiB length prefix must not translate
//! into a 4 GiB allocation.
//!
//! An oversized declaration *poisons* the decoder: with a corrupt length
//! there is no way to know where the next frame starts, so resynchronizing
//! would silently misparse the rest of the stream. Callers drop the
//! connection (never the accept loop) and the client reconnects.

use std::fmt;

/// Default cap on a single frame payload (1 MiB).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Size of the length prefix in bytes.
pub const HEADER_LEN: usize = 4;

/// Structured framing failure. Never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The 4-byte prefix declared a payload larger than the cap. The body
    /// was not buffered; the stream position is unrecoverable.
    Oversized {
        /// Declared payload length.
        declared: usize,
        /// Configured cap.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { declared, max } => {
                write!(f, "frame declares {declared} bytes, cap is {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode one frame (length prefix + payload) onto `out`.
///
/// # Panics
/// Panics if `payload` exceeds `u32::MAX` bytes — callers cap frames far
/// below that.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32");
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
}

/// Push-based frame decoder. Feed arbitrary byte fragments with
/// [`push`](FrameDecoder::push); pull complete payloads with
/// [`next_frame`](FrameDecoder::next_frame).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    start: usize,
    max_frame: usize,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// A decoder enforcing the given payload cap.
    pub fn new(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_frame,
            poisoned: None,
        }
    }

    /// Buffer incoming bytes. Fragmentation is arbitrary: one byte at a
    /// time, several frames at once — framing is reconstructed identically.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned.is_some() {
            return; // position is unrecoverable; don't grow the buffer
        }
        // Compact once the dead prefix dominates, keeping buffering O(1)
        // amortized per byte.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decode the next complete payload, `Ok(None)` if more bytes are
    /// needed. After an `Err` the decoder is poisoned and every later call
    /// returns the same error — drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let declared = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if declared > self.max_frame {
            let err = FrameError::Oversized {
                declared,
                max: self.max_frame,
            };
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        if avail.len() < HEADER_LEN + declared {
            return Ok(None);
        }
        let payload = avail[HEADER_LEN..HEADER_LEN + declared].to_vec();
        self.start += HEADER_LEN + declared;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_across_fragmentation() {
        let payloads: Vec<Vec<u8>> = vec![b"".to_vec(), b"{\"a\":1}".to_vec(), vec![0xFFu8; 300]];
        let mut wire = Vec::new();
        for p in &payloads {
            encode_frame(p, &mut wire);
        }
        // Byte-at-a-time delivery.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut got = Vec::new();
        for &b in &wire {
            dec.push(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn oversized_declaration_poisons_without_buffering_the_body() {
        let mut dec = FrameDecoder::new(64);
        dec.push(&1_000_000u32.to_be_bytes());
        let err = dec.next_frame().unwrap_err();
        assert_eq!(
            err,
            FrameError::Oversized {
                declared: 1_000_000,
                max: 64
            }
        );
        // Poisoned: same structured error forever, no growth.
        dec.push(&[0u8; 128]);
        assert_eq!(dec.next_frame().unwrap_err(), err);
        assert!(dec.buffered() <= HEADER_LEN);
    }

    #[test]
    fn truncated_frame_waits_for_more_bytes() {
        let mut wire = Vec::new();
        encode_frame(b"hello", &mut wire);
        let mut dec = FrameDecoder::new(64);
        dec.push(&wire[..wire.len() - 1]);
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.push(&wire[wire.len() - 1..]);
        assert_eq!(dec.next_frame().unwrap(), Some(b"hello".to_vec()));
    }

    #[test]
    fn compaction_keeps_buffer_bounded() {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut wire = Vec::new();
        encode_frame(&[7u8; 100], &mut wire);
        for _ in 0..1000 {
            dec.push(&wire);
            assert!(dec.next_frame().unwrap().is_some());
        }
        assert!(
            dec.buf.len() < 16 * 1024,
            "dead prefix never compacted: {} bytes",
            dec.buf.len()
        );
    }
}
