//! Stream-to-daemon mode: drive a whole (simulated or traced) computation
//! into a daemon session, riding out backpressure.
//!
//! This is the producer side the simulator and CLI share: linearize a
//! batch [`Deposet`] into causal delivery order
//! ([`pctl_deposet::linearize`]), open a session, and push every event
//! through [`Client::append`] with the exponential-backoff retry loop —
//! counting how often the daemon pushed back, so callers (the bench suite,
//! the torture test) can observe backpressure doing its job rather than
//! silently absorbing it.

use crate::client::{Client, RetryPolicy};
use crate::proto::Response;
use pctl_deposet::{linearize, Deposet, LocalPredicate};
use std::time::Duration;

/// What happened while streaming one computation into a session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Events appended (accepted by the daemon).
    pub appends: usize,
    /// `Busy` bounces absorbed by the retry loop.
    pub busy_bounces: u64,
}

/// Open `session` over `locals` and stream `dep` into it, retrying
/// appends under `policy`. The daemon-side store ends bit-identical to
/// `dep` (all messages delivered). Returns the report, or the first
/// non-`Ok` daemon response as an error.
pub fn stream_deposet(
    client: &mut Client,
    session: &str,
    locals: Vec<LocalPredicate>,
    dep: &Deposet,
    policy: RetryPolicy,
) -> std::io::Result<StreamReport> {
    let (init, ops) = linearize(dep);
    let resp = client.hello(session, locals, Some(init))?;
    if resp != Response::Ok {
        return Err(std::io::Error::other(format!("hello refused: {resp:?}")));
    }
    let mut report = StreamReport::default();
    for op in ops {
        let mut floor = policy.base_delay;
        let mut attempts = 0u32;
        loop {
            match client.append(session, op.clone())? {
                Response::Ok => break,
                Response::Busy { retry_after_ms } => {
                    report.busy_bounces += 1;
                    attempts += 1;
                    if attempts > policy.max_retries {
                        return Err(std::io::Error::other(
                            "daemon stayed busy past the retry budget",
                        ));
                    }
                    let hint = Duration::from_millis(retry_after_ms);
                    std::thread::sleep(floor.max(hint).min(policy.max_delay));
                    floor = (floor * 2).min(policy.max_delay);
                }
                other => return Err(std::io::Error::other(format!("append refused: {other:?}"))),
            }
        }
        report.appends += 1;
    }
    Ok(report)
}
