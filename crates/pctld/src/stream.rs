//! Stream-to-daemon mode: drive a whole (simulated or traced) computation
//! into a daemon session, riding out backpressure.
//!
//! This is the producer side the simulator and CLI share: linearize a
//! batch [`Deposet`] into causal delivery order
//! ([`pctl_deposet::linearize`]), open a session, and push every event
//! through [`Client::append`] with the exponential-backoff retry loop —
//! counting how often the daemon pushed back, so callers (the bench suite,
//! the torture test) can observe backpressure doing its job rather than
//! silently absorbing it.
//!
//! [`stream_deposet_with`] additionally measures every append round-trip
//! on the client side and reports progress periodically, so a long replay
//! (`pctl stream`) is not silent: the callback receives events sent, Busy
//! bounces, and the current append p50 as the stream runs.

use crate::client::{Client, RetryPolicy};
use crate::proto::Response;
use pctl_deposet::{linearize, AppendOp, Deposet, LocalPredicate, PredicateClass};
use std::time::{Duration, Instant};

/// What happened while streaming one computation into a session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Events appended (accepted by the daemon).
    pub appends: usize,
    /// `Busy` bounces absorbed by the retry loop.
    pub busy_bounces: u64,
    /// Client-observed append round-trip p50, microseconds (nearest-rank
    /// over every accepted append; 0 if none).
    pub append_p50_us: u64,
}

/// A progress sample handed to [`stream_deposet_with`]'s callback.
#[derive(Clone, Copy, Debug)]
pub struct StreamProgress {
    /// Events accepted so far.
    pub sent: usize,
    /// Total events in the computation.
    pub total: usize,
    /// `Busy` bounces absorbed so far.
    pub busy_bounces: u64,
    /// Client-observed append round-trip p50 so far, microseconds.
    pub append_p50_us: u64,
}

/// How often [`stream_deposet_with`] reports progress: whichever comes
/// first of this interval elapsing or the stream finishing.
const PROGRESS_INTERVAL: Duration = Duration::from_secs(2);

/// Open `session` over `locals` and stream `dep` into it, retrying
/// appends under `policy`. The daemon-side store ends bit-identical to
/// `dep` (all messages delivered). Returns the report, or the first
/// non-`Ok` daemon response as an error.
pub fn stream_deposet(
    client: &mut Client,
    session: &str,
    locals: Vec<LocalPredicate>,
    dep: &Deposet,
    policy: RetryPolicy,
) -> std::io::Result<StreamReport> {
    stream_deposet_with(client, session, locals, dep, policy, |_| {})
}

/// [`stream_deposet`] with a progress callback, invoked at least every
/// [`PROGRESS_INTERVAL`] while appends are flowing (and never after the
/// last append). Timings are client-side round-trips, so the p50 the
/// callback reports is what the producer actually experiences — queue
/// wait, apply, and the wire included.
pub fn stream_deposet_with(
    client: &mut Client,
    session: &str,
    locals: Vec<LocalPredicate>,
    dep: &Deposet,
    policy: RetryPolicy,
    progress: impl FnMut(&StreamProgress),
) -> std::io::Result<StreamReport> {
    let (init, ops) = linearize(dep);
    let resp = client.hello(session, locals, Some(init))?;
    if resp != Response::Ok {
        return Err(std::io::Error::other(format!("hello refused: {resp:?}")));
    }
    push_ops(client, session, ops, policy, progress)
}

/// [`stream_deposet`] for an explicit [`PredicateClass`] session: the
/// `Hello` carries the class, so the daemon routes the session's queries
/// through the class-aware engine (regular classes answer via slicing).
/// The append loop — and therefore the backpressure behaviour — is the
/// same code path as the disjunctive stream.
pub fn stream_deposet_class(
    client: &mut Client,
    session: &str,
    class: PredicateClass,
    dep: &Deposet,
    policy: RetryPolicy,
) -> std::io::Result<StreamReport> {
    let (init, ops) = linearize(dep);
    let resp = client.hello_class(session, class, Some(init))?;
    if resp != Response::Ok {
        return Err(std::io::Error::other(format!("hello refused: {resp:?}")));
    }
    push_ops(client, session, ops, policy, |_| {})
}

/// The shared producer loop: push every op through the backoff-aware
/// retry, timing client-side round-trips and reporting progress.
fn push_ops(
    client: &mut Client,
    session: &str,
    ops: Vec<AppendOp>,
    policy: RetryPolicy,
    mut progress: impl FnMut(&StreamProgress),
) -> std::io::Result<StreamReport> {
    let total = ops.len();
    let mut report = StreamReport::default();
    let mut rtt_us: Vec<u64> = Vec::with_capacity(total);
    let mut last_report = Instant::now();
    for op in ops {
        let mut floor = policy.base_delay;
        let mut attempts = 0u32;
        loop {
            let sent_at = Instant::now();
            match client.append(session, op.clone())? {
                Response::Ok => {
                    rtt_us.push(sent_at.elapsed().as_micros() as u64);
                    break;
                }
                Response::Busy { retry_after_ms } => {
                    report.busy_bounces += 1;
                    attempts += 1;
                    if attempts > policy.max_retries {
                        return Err(std::io::Error::other(
                            "daemon stayed busy past the retry budget",
                        ));
                    }
                    let hint = Duration::from_millis(retry_after_ms);
                    std::thread::sleep(floor.max(hint).min(policy.max_delay));
                    floor = (floor * 2).min(policy.max_delay);
                }
                other => return Err(std::io::Error::other(format!("append refused: {other:?}"))),
            }
        }
        report.appends += 1;
        if last_report.elapsed() >= PROGRESS_INTERVAL && report.appends < total {
            progress(&StreamProgress {
                sent: report.appends,
                total,
                busy_bounces: report.busy_bounces,
                append_p50_us: p50(&rtt_us),
            });
            last_report = Instant::now();
        }
    }
    report.append_p50_us = p50(&rtt_us);
    Ok(report)
}

/// Nearest-rank p50 of the samples so far.
fn p50(samples: &[u64]) -> u64 {
    pctl_obs::stats::Percentiles::of(samples).map_or(0, |p| p.p50)
}
