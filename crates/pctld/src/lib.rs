//! `pctld` — the streaming predicate-control daemon.
//!
//! The paper's toolchain is batch-shaped: collect a full trace, build a
//! deposet, run detection/control/verification offline. This crate turns
//! that into a *service* for live debugging sessions: processes stream
//! events to the daemon as they execute, the daemon grows one incremental
//! per-session store (amortized O(n) per appended state — see
//! `pctl_deposet::session`), and detect/control/verify queries are
//! answered mid-stream, bit-identical to a fresh batch engine over the
//! same prefix.
//!
//! Zero-dependency discipline: plain `std::net` TCP, a 4-byte
//! length-prefixed JSON framing ([`frame`]), no async runtime — the same
//! stance as the repo's `/metrics` server. The interesting part is the
//! robustness surface ([`server`]): bounded ingest queues with `Busy`
//! backpressure, an idle-LRU eviction ladder under a global memory budget,
//! per-session panic quarantine, hostile-input containment, and a graceful
//! drain that flushes session snapshots and leaks nothing.
//!
//! [`client`] is the matching blocking client with backoff-aware retry,
//! used by the simulator's streaming mode, the CLI (`pctl serve` /
//! `pctl stream`), and the torture tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;
pub mod stream;

pub use client::{Client, RetryPolicy};
pub use frame::{encode_frame, FrameDecoder, FrameError, DEFAULT_MAX_FRAME};
pub use proto::{
    ErrorKind, Request, RequestEnvelope, Response, ResponseEnvelope, SessionStat, StatsSnapshot,
};
pub use server::{Config, Daemon, MAX_SLEEP_MS};
pub use stream::{
    stream_deposet, stream_deposet_class, stream_deposet_with, StreamProgress, StreamReport,
};
