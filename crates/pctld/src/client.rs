//! Blocking client for the daemon, with backoff-aware retry.
//!
//! One [`Client`] wraps one TCP connection. Requests are answered in order
//! by the daemon, but correlation is still by `seq` so a client never
//! misattributes a response. [`Client::append_retry`] is the helper the
//! simulator's streaming mode uses: on [`Response::Busy`] it sleeps at
//! least the daemon's hint, doubling the floor on every consecutive bounce
//! (capped), so a producer that outruns the session worker converges to
//! the worker's drain rate instead of hammering the queue.

use crate::frame::{encode_frame, FrameDecoder, DEFAULT_MAX_FRAME};
use crate::proto::{Request, RequestEnvelope, Response, ResponseEnvelope};
use pctl_deposet::{AppendOp, LocalPredicate, PredicateClass};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Backoff policy for [`Client::append_retry`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Give up after this many `Busy` bounces.
    pub max_retries: u32,
    /// Lower bound for the first sleep (raised to the daemon's hint).
    pub base_delay: Duration,
    /// Upper bound for any sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 12,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(500),
        }
    }
}

/// A blocking daemon connection.
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_seq: u64,
}

fn io_err(detail: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, detail)
}

impl Client {
    /// Connect to a daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            decoder: FrameDecoder::new(DEFAULT_MAX_FRAME),
            next_seq: 1,
        })
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, req: Request) -> std::io::Result<Response> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let env = RequestEnvelope { seq, req };
        let json = serde_json::to_string(&env).map_err(|e| io_err(e.to_string()))?;
        let mut wire = Vec::with_capacity(json.len() + 4);
        encode_frame(json.as_bytes(), &mut wire);
        self.stream.write_all(&wire)?;
        let mut buf = [0u8; 8192];
        loop {
            match self
                .decoder
                .next_frame()
                .map_err(|e| io_err(e.to_string()))?
            {
                Some(payload) => {
                    let text = std::str::from_utf8(&payload)
                        .map_err(|_| io_err("response is not UTF-8".into()))?;
                    let resp: ResponseEnvelope =
                        serde_json::from_str(text).map_err(|e| io_err(e.to_string()))?;
                    // The daemon tags unparseable requests with seq 0;
                    // surface those too instead of waiting forever.
                    if resp.seq == seq || resp.seq == 0 {
                        return Ok(resp.resp);
                    }
                    // A stale response (e.g. from an abandoned retry)
                    // is skipped; correlation is by seq, not arrival.
                }
                None => {
                    let n = self.stream.read(&mut buf)?;
                    if n == 0 {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "daemon closed the connection",
                        ));
                    }
                    self.decoder.push(&buf[..n]);
                }
            }
        }
    }

    /// Open a classic disjunctive session.
    pub fn hello(
        &mut self,
        session: &str,
        locals: Vec<LocalPredicate>,
        init: Option<Vec<Vec<(String, i64)>>>,
    ) -> std::io::Result<Response> {
        self.request(Request::Hello {
            session: session.into(),
            locals,
            init,
            class: None,
        })
    }

    /// Open a session over an explicit [`PredicateClass`] — regular
    /// classes are answered through the slicing engine on the daemon side.
    pub fn hello_class(
        &mut self,
        session: &str,
        class: PredicateClass,
        init: Option<Vec<Vec<(String, i64)>>>,
    ) -> std::io::Result<Response> {
        self.request(Request::Hello {
            session: session.into(),
            locals: vec![],
            init,
            class: Some(class),
        })
    }

    /// Append one event (no retry — the raw verb).
    pub fn append(&mut self, session: &str, op: AppendOp) -> std::io::Result<Response> {
        self.request(Request::Append {
            session: session.into(),
            op,
        })
    }

    /// Append with exponential backoff on `Busy`. Returns the final
    /// response — `Busy` only if the daemon bounced every attempt.
    pub fn append_retry(
        &mut self,
        session: &str,
        op: AppendOp,
        policy: RetryPolicy,
    ) -> std::io::Result<Response> {
        let mut floor = policy.base_delay;
        let mut last = self.append(session, op.clone())?;
        for _ in 0..policy.max_retries {
            let Response::Busy { retry_after_ms } = last else {
                return Ok(last);
            };
            let hint = Duration::from_millis(retry_after_ms);
            let sleep = floor.max(hint).min(policy.max_delay);
            std::thread::sleep(sleep);
            floor = (floor * 2).min(policy.max_delay);
            last = self.append(session, op.clone())?;
        }
        Ok(last)
    }

    /// Weak detection at the session's current prefix.
    pub fn detect(&mut self, session: &str) -> std::io::Result<Response> {
        self.request(Request::Detect {
            session: session.into(),
        })
    }

    /// Control synthesis at the session's current prefix.
    pub fn control(&mut self, session: &str) -> std::io::Result<Response> {
        self.request(Request::Control {
            session: session.into(),
        })
    }

    /// Synthesize + exhaustively verify at the current prefix.
    pub fn verify(&mut self, session: &str, limit: u64) -> std::io::Result<Response> {
        self.request(Request::Verify {
            session: session.into(),
            limit,
        })
    }

    /// Export the session's batch trace JSON.
    pub fn snapshot(&mut self, session: &str) -> std::io::Result<Response> {
        self.request(Request::Snapshot {
            session: session.into(),
        })
    }

    /// Close a session.
    pub fn close(&mut self, session: &str) -> std::io::Result<Response> {
        self.request(Request::Close {
            session: session.into(),
        })
    }

    /// Pull the session's recent telemetry events (for Chrome-trace
    /// export — `pctl trace --remote`).
    pub fn trace(&mut self, session: &str) -> std::io::Result<Response> {
        self.request(Request::Trace {
            session: session.into(),
        })
    }

    /// Daemon counters/gauges.
    pub fn stats(&mut self) -> std::io::Result<Response> {
        self.request(Request::Stats)
    }

    /// Daemon counters/gauges, unwrapped to the snapshot. Any other
    /// response (e.g. `Draining`) is an error.
    pub fn stats_snapshot(&mut self) -> std::io::Result<crate::proto::StatsSnapshot> {
        match self.stats()? {
            Response::Stats { stats } => Ok(stats),
            other => Err(io_err(format!("unexpected stats answer: {other:?}"))),
        }
    }

    /// Drain every session and stop the daemon.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request(Request::Shutdown)
    }
}
