//! The daemon's request/response vocabulary.
//!
//! Every frame payload is one JSON envelope: requests carry a client-chosen
//! `seq` echoed verbatim in the response, so a client can correlate answers
//! without relying on connection ordering. The five verbs follow the
//! debugging-session lifecycle: `Hello` opens a per-session incremental
//! store, `Append` streams events into it, the query verbs
//! (`Detect`/`Control`/`Verify`) answer the paper's questions at the
//! current prefix, `Snapshot` exports the batch trace, `Close` ends the
//! session. `Stats` and `Shutdown` are admin verbs.
//!
//! Error reporting is structured and total: every failure mode a client can
//! trigger maps to an [`ErrorKind`], and overload maps to
//! [`Response::Busy`] with a retry hint — the daemon never answers a
//! well-framed request with silence or a dropped connection.

use pctl_core::ControlRelation;
use pctl_deposet::{AppendOp, Interval, LocalPredicate, PredicateClass};
use serde::{Deserialize, Serialize};

/// A client request, one per frame, wrapped in [`RequestEnvelope`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Open a new session: one local predicate per process, optional
    /// initial variable assignments per process.
    Hello {
        /// Unique session name (rejected if already live).
        session: String,
        /// The disjunctive predicate's locals, one per process. Ignored
        /// (may be empty) when `class` is set — the class carries its own
        /// predicate.
        locals: Vec<LocalPredicate>,
        /// Initial per-process variable assignments (empty = all unset).
        init: Option<Vec<Vec<(String, i64)>>>,
        /// Optional predicate class. `None` (the wire default, so frames
        /// from older clients still parse) means the classic disjunctive
        /// session over `locals`; `Some` routes the session's queries
        /// through the class-aware engine — in particular
        /// [`PredicateClass::Regular`] answers via computation slicing.
        #[serde(default)]
        class: Option<PredicateClass>,
    },
    /// Append one event to a session's computation.
    Append {
        /// Target session.
        session: String,
        /// The event.
        op: AppendOp,
    },
    /// Weak detection at the current prefix: a consistent cut where every
    /// local predicate is false.
    Detect {
        /// Target session.
        session: String,
    },
    /// Off-line control synthesis at the current prefix.
    Control {
        /// Target session.
        session: String,
    },
    /// Synthesize a control relation, then exhaustively verify it against
    /// the current prefix (bounded lattice walk).
    Verify {
        /// Target session.
        session: String,
        /// Maximum consistent cuts to visit.
        limit: u64,
    },
    /// Export the session's current prefix as batch trace JSON.
    Snapshot {
        /// Target session.
        session: String,
    },
    /// End a session, flushing its snapshot if the daemon persists them.
    Close {
        /// Target session.
        session: String,
    },
    /// Pull the session's recent telemetry events (bounded ring,
    /// drop-oldest) for Chrome-trace export — `pctl trace --remote`.
    Trace {
        /// Target session.
        session: String,
    },
    /// Admin: daemon-wide counters and gauges.
    Stats,
    /// Admin: drain every live session (flushing snapshots) and stop.
    Shutdown,
    /// Fault injection (tests and chaos drills): panic the session's
    /// worker, exercising the poison/quarantine path.
    Crash {
        /// Target session.
        session: String,
    },
    /// Fault injection: stall the session's worker for `ms` milliseconds
    /// (fills the bounded queue deterministically for backpressure tests).
    Sleep {
        /// Target session.
        session: String,
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

impl Request {
    /// The session a request addresses, if any.
    pub fn session(&self) -> Option<&str> {
        match self {
            Request::Hello { session, .. }
            | Request::Append { session, .. }
            | Request::Detect { session }
            | Request::Control { session }
            | Request::Verify { session, .. }
            | Request::Snapshot { session }
            | Request::Close { session }
            | Request::Trace { session }
            | Request::Crash { session }
            | Request::Sleep { session, .. } => Some(session),
            Request::Stats | Request::Shutdown => None,
        }
    }

    /// The verb name, as used for the `verb` label on
    /// `pctld_request_seconds` and in the slow-request log.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Append { .. } => "append",
            Request::Detect { .. } => "detect",
            Request::Control { .. } => "control",
            Request::Verify { .. } => "verify",
            Request::Snapshot { .. } => "snapshot",
            Request::Close { .. } => "close",
            Request::Trace { .. } => "trace",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::Crash { .. } => "crash",
            Request::Sleep { .. } => "sleep",
        }
    }
}

/// A request frame: client-chosen correlation id plus the request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Echoed verbatim in the response.
    pub seq: u64,
    /// The request.
    pub req: Request,
}

/// Machine-readable failure classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The frame decoded but its JSON payload did not parse as a request.
    Malformed,
    /// No live session by that name.
    UnknownSession,
    /// `Hello` with a name that is already live.
    SessionExists,
    /// New session refused: session or memory capacity exhausted and no
    /// idle session was evictable.
    Capacity,
    /// Append refused: the daemon is over its hard memory budget.
    Budget,
    /// An earlier append on this session failed; the session is wedged
    /// with that error until closed.
    Append,
    /// The session's worker panicked; its state is quarantined.
    Poisoned,
    /// The daemon is draining and accepts no new work.
    Draining,
    /// Internal invariant failure (bug surface, not client error).
    Internal,
}

/// A daemon response, one per request frame, wrapped in
/// [`ResponseEnvelope`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Success with no payload (`Hello`, `Append`, `Close`).
    Ok,
    /// Transient overload: the session's ingest queue is full. Retry after
    /// the hint (the client helper backs off exponentially from it).
    Busy {
        /// Suggested minimum delay before retrying.
        retry_after_ms: u64,
    },
    /// Structured failure.
    Err {
        /// Machine-readable class.
        kind: ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
    /// Answer to [`Request::Detect`].
    Detect {
        /// Per-process state indices of the violating cut, if one exists.
        violation: Option<Vec<u32>>,
    },
    /// Answer to [`Request::Control`]: exactly one of the fields is set
    /// (the Lemma 2 duality).
    Control {
        /// The synthesized relation, when control is feasible.
        relation: Option<ControlRelation>,
        /// The overlapping false-interval witness, when it is not.
        witness: Option<Vec<Interval>>,
    },
    /// Answer to [`Request::Verify`].
    Verify {
        /// Whether a relation was synthesized and passed verification.
        ok: bool,
        /// Verdict detail (violation/budget/infeasibility description).
        detail: String,
    },
    /// Answer to [`Request::Snapshot`]: the batch trace JSON.
    Snapshot {
        /// `pctl_deposet::trace` JSON of the current prefix.
        trace: String,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Counter/gauge snapshot.
        stats: StatsSnapshot,
    },
    /// Answer to [`Request::Trace`]: the session's recent telemetry
    /// events, oldest first.
    Trace {
        /// Surviving ring contents (oldest first). Receive events whose
        /// matching send was already evicted from the ring are included
        /// verbatim — exporters prune them
        /// ([`pctl_obs::chrome::prune_orphan_flows`]) before rendering.
        events: Vec<pctl_obs::Event>,
        /// Events dropped by the bounded ring since the session opened.
        dropped: u64,
        /// Process (lane) count of the session's computation.
        processes: u32,
    },
    /// Answer to [`Request::Shutdown`], sent after the drain completes.
    Draining {
        /// Sessions that failed to join cleanly during the drain.
        leaked: u64,
    },
}

/// Daemon-wide counters and gauges, as served to `Stats` and exported to
/// Prometheus.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Live sessions.
    pub sessions: u64,
    /// Total appends accepted (enqueued) since start.
    pub appends_total: u64,
    /// Appends bounced with `Busy` (queue full).
    pub busy_total: u64,
    /// Idle sessions evicted under memory/session pressure.
    pub evictions_total: u64,
    /// `Hello`s refused for capacity.
    pub sessions_refused_total: u64,
    /// Appends refused over the hard memory budget.
    pub appends_refused_total: u64,
    /// Sessions quarantined after a worker panic.
    pub poisoned_total: u64,
    /// Estimated bytes across live session stores.
    pub approx_bytes: u64,
    /// Configured hard memory budget.
    pub budget_bytes: u64,
    /// Queries answered from a session engine's memoized verdict instead
    /// of recomputing (the prefix had not changed since the same query
    /// last ran). `#[serde(default)]` so snapshots from daemons predating
    /// this field still parse.
    #[serde(default)]
    pub query_cache_hits_total: u64,
    /// Connections dropped after an unrecoverable framing error
    /// (oversized or corrupt frame declaration). `#[serde(default)]` for
    /// wire compatibility with older daemons.
    #[serde(default)]
    pub frames_rejected_total: u64,
    /// Anomalies the flight recorder detected (post rate limit).
    #[serde(default)]
    pub anomalies_total: u64,
    /// Postmortem bundles written.
    #[serde(default)]
    pub postmortems_total: u64,
    /// Per-session breakdown, sorted by session name. `#[serde(default)]`
    /// so snapshots from daemons predating this field still parse.
    #[serde(default)]
    pub per_session: Vec<SessionStat>,
}

/// One session's slice of the [`StatsSnapshot`], as consumed by
/// `pctl top`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionStat {
    /// Session name.
    pub name: String,
    /// Appends accepted (enqueued) for this session.
    pub appends: u64,
    /// Estimated bytes in this session's store.
    pub approx_bytes: u64,
    /// Commands currently waiting on the session's bounded queue.
    pub queue_depth: u64,
    /// Milliseconds since the session's last accepted command.
    pub idle_ms: u64,
    /// Exact nearest-rank p50 of recent append latencies (enqueue →
    /// applied), microseconds; 0 until the first append is applied.
    pub p50_us: u64,
    /// Exact nearest-rank p95 over the same window.
    pub p95_us: u64,
    /// Engine queries (Detect/Control/Verify/Snapshot) answered for this
    /// session. `#[serde(default)]` for wire compatibility.
    #[serde(default)]
    pub queries: u64,
    /// How many of those were answered from the engine's memoized
    /// verdict (`pctl top` renders the hit rate).
    #[serde(default)]
    pub cache_hits: u64,
}

/// A response frame: the request's `seq` plus the response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// The request's correlation id (0 when the request was unparseable).
    pub seq: u64,
    /// The response.
    pub resp: Response,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_roundtrip_through_json() {
        let reqs = vec![
            RequestEnvelope {
                seq: 1,
                req: Request::Hello {
                    session: "s".into(),
                    locals: vec![LocalPredicate::var("ok")],
                    init: Some(vec![vec![("ok".into(), 1)]]),
                    class: None,
                },
            },
            RequestEnvelope {
                seq: 4,
                req: Request::Hello {
                    session: "r".into(),
                    locals: vec![],
                    init: None,
                    class: Some(PredicateClass::regular(
                        2,
                        pctl_deposet::RegularPredicate::conj_var(&[0, 1], "cs"),
                    )),
                },
            },
            RequestEnvelope {
                seq: 2,
                req: Request::Append {
                    session: "s".into(),
                    op: AppendOp::Send {
                        process: 0,
                        msg: 7,
                        tag: "m".into(),
                        updates: vec![("x".into(), -3)],
                    },
                },
            },
            RequestEnvelope {
                seq: 3,
                req: Request::Stats,
            },
        ];
        for r in reqs {
            let json = serde_json::to_string(&r).unwrap();
            let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r);
        }
        let resps = vec![
            Response::Ok,
            Response::Busy { retry_after_ms: 20 },
            Response::Err {
                kind: ErrorKind::UnknownSession,
                detail: "no session 'x'".into(),
            },
            Response::Detect {
                violation: Some(vec![0, 2, 1]),
            },
            Response::Stats {
                stats: StatsSnapshot {
                    sessions: 3,
                    ..StatsSnapshot::default()
                },
            },
        ];
        for resp in resps {
            let env = ResponseEnvelope { seq: 9, resp };
            let json = serde_json::to_string(&env).unwrap();
            let back: ResponseEnvelope = serde_json::from_str(&json).unwrap();
            assert_eq!(back, env);
        }
    }

    #[test]
    fn hello_without_class_field_still_parses() {
        // Frames from clients predating the predicate-class field omit
        // `class` entirely; `#[serde(default)]` must fill in `None`.
        let env = RequestEnvelope {
            seq: 7,
            req: Request::Hello {
                session: "old".into(),
                locals: vec![LocalPredicate::var("ok")],
                init: None,
                class: None,
            },
        };
        // The vendored serde omits `None` options on serialize, so this
        // IS the legacy wire form — no `class` key at all.
        let json = serde_json::to_string(&env).unwrap();
        assert!(!json.contains("class"), "legacy wire form: {json}");
        let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn session_accessor_covers_all_verbs() {
        assert_eq!(
            Request::Detect {
                session: "a".into()
            }
            .session(),
            Some("a")
        );
        assert_eq!(Request::Shutdown.session(), None);
    }
}
