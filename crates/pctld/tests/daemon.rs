//! End-to-end daemon behavior over real TCP connections: lifecycle
//! correctness against the batch engine, backpressure, the degradation
//! ladder, panic quarantine, hostile-input containment, and metrics.

use pctl_core::offline::OfflineOptions;
use pctl_core::PredicateEngine;
use pctl_deposet::generator::{random_deposet, RandomConfig};
use pctl_deposet::{linearize, DisjunctivePredicate, LocalPredicate};
use pctld::{Client, Config, Daemon, ErrorKind, Request, Response, RetryPolicy};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn daemon(cfg: Config) -> Daemon {
    Daemon::spawn(cfg).expect("bind daemon")
}

fn client(d: &Daemon) -> Client {
    Client::connect(d.local_addr()).expect("connect")
}

#[test]
fn streamed_session_answers_like_the_batch_engine() {
    let d = daemon(Config::default());
    let mut c = client(&d);
    for seed in [3u64, 17, 40] {
        let dep = random_deposet(
            &RandomConfig {
                processes: 3,
                events: 24,
                send_prob: 0.4,
                flip_prob: 0.4,
            },
            seed,
        );
        let pred = DisjunctivePredicate::at_least_one(3, "ok");
        let (init, ops) = linearize(&dep);
        let name = format!("batch-vs-stream-{seed}");
        assert_eq!(
            c.hello(&name, pred.locals().to_vec(), Some(init)).unwrap(),
            Response::Ok
        );
        for op in ops {
            assert_eq!(
                c.append_retry(&name, op, RetryPolicy::default()).unwrap(),
                Response::Ok
            );
        }
        let batch = PredicateEngine::new(&dep, pred);
        match c.detect(&name).unwrap() {
            Response::Detect { violation } => assert_eq!(
                violation,
                batch.detect_violation().map(|g| g.indices().to_vec()),
                "seed {seed}"
            ),
            other => panic!("unexpected: {other:?}"),
        }
        match c.control(&name).unwrap() {
            Response::Control { relation, witness } => {
                match batch.control(OfflineOptions::default()) {
                    Ok(rel) => {
                        assert_eq!(relation, Some(rel), "seed {seed}");
                        assert_eq!(witness, None);
                    }
                    Err(inf) => {
                        assert_eq!(relation, None);
                        assert_eq!(witness, Some(inf.witness), "seed {seed}");
                    }
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
        match c.verify(&name, 500_000).unwrap() {
            Response::Verify { ok, .. } => assert_eq!(
                ok,
                batch.control(OfflineOptions::default()).is_ok(),
                "seed {seed}: controllable iff synthesized relation verifies"
            ),
            other => panic!("unexpected: {other:?}"),
        }
        match c.snapshot(&name).unwrap() {
            Response::Snapshot { trace } => {
                let snap = pctl_deposet::trace::from_json(&trace).expect("valid trace");
                assert_eq!(snap.process_count(), 3);
                assert_eq!(snap.total_states(), dep.total_states(), "seed {seed}");
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(c.close(&name).unwrap(), Response::Ok);
    }
    assert_eq!(d.session_count(), 0);
    assert_eq!(d.shutdown(), 0, "no leaked sessions");
}

#[test]
fn full_queue_bounces_busy_and_retry_recovers() {
    let d = daemon(Config {
        queue_depth: 2,
        fault_injection: true,
        ..Config::default()
    });
    let mut a = client(&d);
    let mut b = client(&d);
    assert_eq!(
        a.hello("bp", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    // Stall the worker from one connection, flood from another.
    let stall = std::thread::spawn(move || {
        a.request(Request::Sleep {
            session: "bp".into(),
            ms: 400,
        })
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(50)); // let the stall start
    let op = pctl_deposet::AppendOp::Internal {
        process: 0,
        updates: vec![("ok".into(), 1)],
    };
    let mut saw_busy = false;
    for _ in 0..8 {
        match b.append("bp", op.clone()).unwrap() {
            Response::Ok => {}
            Response::Busy { retry_after_ms } => {
                assert!(retry_after_ms > 0);
                saw_busy = true;
                break;
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert!(saw_busy, "bounded queue never filled");
    // The backoff helper rides out the stall.
    assert_eq!(
        b.append_retry("bp", op, RetryPolicy::default()).unwrap(),
        Response::Ok
    );
    assert_eq!(stall.join().unwrap(), Response::Ok);
    let stats = d.stats();
    assert!(stats.busy_total >= 1, "busy_total = {}", stats.busy_total);
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn worker_panic_poisons_only_its_session() {
    let d = daemon(Config {
        fault_injection: true,
        ..Config::default()
    });
    let mut c = client(&d);
    for name in ["victim", "bystander"] {
        assert_eq!(
            c.hello(name, vec![LocalPredicate::var("ok")], None)
                .unwrap(),
            Response::Ok
        );
    }
    match c
        .request(Request::Crash {
            session: "victim".into(),
        })
        .unwrap()
    {
        Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::Poisoned),
        other => panic!("unexpected: {other:?}"),
    }
    // The poisoned session answers with a quarantine error...
    match c.detect("victim").unwrap() {
        Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::Poisoned),
        other => panic!("unexpected: {other:?}"),
    }
    // ...while the bystander (and the daemon) work on.
    assert!(matches!(
        c.detect("bystander").unwrap(),
        Response::Detect { .. }
    ));
    let stats = d.stats();
    assert_eq!(stats.poisoned_total, 1);
    // Closing the tombstone succeeds and frees the name.
    assert_eq!(c.close("victim").unwrap(), Response::Ok);
    assert_eq!(c.close("bystander").unwrap(), Response::Ok);
    assert_eq!(d.session_count(), 0);
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn fault_verbs_are_refused_unless_enabled() {
    // Crash/Sleep share the unauthenticated port with production verbs, so
    // a default-config daemon must refuse them outright.
    let d = daemon(Config::default());
    let mut c = client(&d);
    assert_eq!(
        c.hello("prod", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    for req in [
        Request::Crash {
            session: "prod".into(),
        },
        Request::Sleep {
            session: "prod".into(),
            ms: 60_000,
        },
    ] {
        match c.request(req).unwrap() {
            Response::Err { kind, detail } => {
                assert_eq!(kind, ErrorKind::Malformed);
                assert!(detail.contains("disabled"), "{detail}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    // The refused verbs touched nothing: the session still answers.
    assert!(matches!(c.detect("prod").unwrap(), Response::Detect { .. }));
    assert_eq!(d.stats().poisoned_total, 0);
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn close_joins_a_worker_stalled_behind_a_full_queue() {
    // Deadlock regression: the worker must not keep its own command sender
    // alive. With a stalled worker and a full queue, Cmd::Close never fits
    // — close must still return because dropping the registry's sender
    // disconnects the channel and the worker exits after draining.
    let d = daemon(Config {
        queue_depth: 1,
        fault_injection: true,
        ..Config::default()
    });
    let mut a = client(&d);
    let mut b = client(&d);
    assert_eq!(
        a.hello("stuck", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    // Stall the worker well past close's ~1s enqueue-retry window.
    let stall = std::thread::spawn(move || {
        a.request(Request::Sleep {
            session: "stuck".into(),
            ms: 2_000,
        })
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(100)); // let the stall start
    let op = pctl_deposet::AppendOp::Internal {
        process: 0,
        updates: vec![("ok".into(), 1)],
    };
    // Fill the (depth-1) queue behind the stalled worker.
    assert_eq!(b.append("stuck", op.clone()).unwrap(), Response::Ok);
    assert!(matches!(
        b.append("stuck", op).unwrap(),
        Response::Busy { .. }
    ));
    // This hung forever when the worker held its own sender.
    assert_eq!(b.close("stuck").unwrap(), Response::Ok);
    assert_eq!(stall.join().unwrap(), Response::Ok);
    assert_eq!(d.session_count(), 0);
    // The append drained on the way out was released from the gauge too.
    assert_eq!(d.stats().approx_bytes, 0);
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn closing_with_queued_appends_keeps_the_memory_gauge_exact() {
    // Accounting regression: appends still queued at close time are applied
    // by the worker before it exits; their byte deltas must be released
    // with the session instead of drifting the global gauge upward.
    let d = daemon(Config {
        fault_injection: true,
        ..Config::default()
    });
    let mut a = client(&d);
    let mut b = client(&d);
    assert_eq!(
        a.hello("queued", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    let stall = std::thread::spawn(move || {
        a.request(Request::Sleep {
            session: "queued".into(),
            ms: 300,
        })
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(50)); // let the stall start
    for v in 0..5 {
        let op = pctl_deposet::AppendOp::Internal {
            process: 0,
            updates: vec![("ok".into(), v)],
        };
        assert_eq!(b.append("queued", op).unwrap(), Response::Ok);
    }
    // Close while all five appends are still queued behind the stall.
    assert_eq!(b.close("queued").unwrap(), Response::Ok);
    assert_eq!(stall.join().unwrap(), Response::Ok);
    assert_eq!(
        d.stats().approx_bytes,
        0,
        "queued appends leaked into the global memory gauge"
    );
    // An exact gauge means the daemon still admits work after many closes.
    let mut c = client(&d);
    assert_eq!(
        c.hello("after", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn admission_evicts_idle_lru_then_refuses_newcomers() {
    // Everything is instantly "idle": the LRU session is sacrificed for a
    // newcomer once the session cap is hit.
    let d = daemon(Config {
        max_sessions: 2,
        idle_timeout: Duration::from_millis(0),
        ..Config::default()
    });
    let mut c = client(&d);
    for name in ["s1", "s2"] {
        assert_eq!(
            c.hello(name, vec![LocalPredicate::var("ok")], None)
                .unwrap(),
            Response::Ok
        );
        std::thread::sleep(Duration::from_millis(10)); // order last_active
    }
    assert_eq!(
        c.hello("s3", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    assert_eq!(d.stats().evictions_total, 1);
    match c.detect("s1").unwrap() {
        Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::UnknownSession, "s1 evicted"),
        other => panic!("unexpected: {other:?}"),
    }
    assert!(matches!(c.detect("s2").unwrap(), Response::Detect { .. }));
    assert_eq!(d.shutdown(), 0);

    // With a long idle timeout nothing is evictable: the *newcomer* is
    // refused and live sessions stay untouched.
    let d = daemon(Config {
        max_sessions: 1,
        idle_timeout: Duration::from_secs(3600),
        ..Config::default()
    });
    let mut c = client(&d);
    assert_eq!(
        c.hello("live", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    match c
        .hello("late", vec![LocalPredicate::var("ok")], None)
        .unwrap()
    {
        Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::Capacity),
        other => panic!("unexpected: {other:?}"),
    }
    assert!(matches!(c.detect("live").unwrap(), Response::Detect { .. }));
    assert_eq!(d.stats().sessions_refused_total, 1);
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn memory_budget_evicts_idle_then_refuses_appends() {
    let d = daemon(Config {
        memory_budget: 1, // any populated store is over budget
        idle_timeout: Duration::from_millis(0),
        ..Config::default()
    });
    let mut c = client(&d);
    let op = |v: i64| pctl_deposet::AppendOp::Internal {
        process: 0,
        updates: vec![("ok".into(), v)],
    };
    assert_eq!(
        c.hello("grower", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    assert_eq!(
        c.append_retry("grower", op(1), RetryPolicy::default())
            .unwrap(),
        Response::Ok
    );
    // Make sure the worker applied it so approx_bytes is visible.
    assert!(matches!(
        c.detect("grower").unwrap(),
        Response::Detect { .. }
    ));
    assert!(d.stats().approx_bytes > 1);

    // A newcomer is admitted by evicting the idle grower.
    assert_eq!(
        c.hello("newcomer", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    assert!(d.stats().evictions_total >= 1);
    assert!(matches!(
        c.detect("grower").unwrap(),
        Response::Err {
            kind: ErrorKind::UnknownSession,
            ..
        }
    ));

    // Grow the newcomer over budget; with nothing else idle to shed,
    // further appends are refused — the daemon degrades, it doesn't die.
    assert_eq!(
        c.append_retry("newcomer", op(1), RetryPolicy::default())
            .unwrap(),
        Response::Ok
    );
    assert!(matches!(
        c.detect("newcomer").unwrap(),
        Response::Detect { .. }
    ));
    match c.append("newcomer", op(0)).unwrap() {
        Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::Budget),
        other => panic!("unexpected: {other:?}"),
    }
    assert!(d.stats().appends_refused_total >= 1);
    // The session still answers queries.
    assert!(matches!(
        c.detect("newcomer").unwrap(),
        Response::Detect { .. }
    ));
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn malformed_and_oversized_frames_never_kill_the_daemon() {
    let d = daemon(Config {
        max_frame: 1024,
        ..Config::default()
    });
    let addr = d.local_addr();

    // Well-framed garbage JSON: structured error, connection stays usable.
    let mut s = TcpStream::connect(addr).unwrap();
    let garbage = b"}{ not json";
    let mut wire = Vec::new();
    pctld::encode_frame(garbage, &mut wire);
    s.write_all(&wire).unwrap();
    let mut dec = pctld::FrameDecoder::new(1 << 20);
    let mut buf = [0u8; 4096];
    let payload = loop {
        if let Some(p) = dec.next_frame().unwrap() {
            break p;
        }
        let n = s.read(&mut buf).unwrap();
        assert!(n > 0, "daemon closed on malformed JSON");
        dec.push(&buf[..n]);
    };
    let text = String::from_utf8(payload).unwrap();
    assert!(text.contains("Malformed"), "{text}");
    // Same connection still serves a valid request.
    let env = pctld::RequestEnvelope {
        seq: 42,
        req: Request::Stats,
    };
    let mut wire = Vec::new();
    pctld::encode_frame(serde_json::to_string(&env).unwrap().as_bytes(), &mut wire);
    s.write_all(&wire).unwrap();
    let payload = loop {
        if let Some(p) = dec.next_frame().unwrap() {
            break p;
        }
        let n = s.read(&mut buf).unwrap();
        assert!(n > 0);
        dec.push(&buf[..n]);
    };
    assert!(String::from_utf8(payload).unwrap().contains("\"seq\":42"));

    // Oversized frame declaration: one structured error, then the daemon
    // drops only that connection.
    let mut s2 = TcpStream::connect(addr).unwrap();
    s2.write_all(&100_000_000u32.to_be_bytes()).unwrap();
    let mut resp = Vec::new();
    s2.read_to_end(&mut resp).unwrap(); // daemon answers then closes
    assert!(
        String::from_utf8_lossy(&resp[4..]).contains("Malformed"),
        "{:?}",
        String::from_utf8_lossy(&resp)
    );

    // The accept loop survived both: a fresh client works.
    let mut c = client(&d);
    assert!(matches!(c.stats().unwrap(), Response::Stats { .. }));
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn snapshots_flush_on_close_and_drain() {
    let dir = std::env::temp_dir().join(format!("pctld-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let d = daemon(Config {
        snapshot_dir: Some(dir.clone()),
        ..Config::default()
    });
    let mut c = client(&d);
    let op = pctl_deposet::AppendOp::Internal {
        process: 0,
        updates: vec![("ok".into(), 1)],
    };
    for name in ["closed", "drained"] {
        assert_eq!(
            c.hello(name, vec![LocalPredicate::var("ok")], None)
                .unwrap(),
            Response::Ok
        );
        assert_eq!(
            c.append_retry(name, op.clone(), RetryPolicy::default())
                .unwrap(),
            Response::Ok
        );
    }
    assert_eq!(c.close("closed").unwrap(), Response::Ok);
    // "drained" is flushed by shutdown.
    match c.shutdown().unwrap() {
        Response::Draining { leaked } => assert_eq!(leaked, 0),
        other => panic!("unexpected: {other:?}"),
    }
    for name in ["closed", "drained"] {
        let path = dir.join(format!("{name}.json"));
        let json = std::fs::read_to_string(&path).expect("snapshot file written");
        let dep = pctl_deposet::trace::from_json(&json).expect("valid trace");
        assert_eq!(dep.total_states(), 2);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_endpoint_exports_daemon_gauges() {
    let d = daemon(Config::default());
    let mut c = client(&d);
    assert_eq!(
        c.hello("metered", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    let srv = d.spawn_metrics("127.0.0.1:0").expect("metrics bind");
    let mut s = TcpStream::connect(srv.local_addr()).unwrap();
    write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    let body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
    pctl_obs::prom::validate_exposition(body).expect("valid exposition");
    assert!(body.contains("pctld_sessions 1"), "{body}");
    assert!(body.contains("pctld_memory_budget_bytes"), "{body}");
    assert!(
        body.contains("pctld_queue_depth{session=\"metered\"}"),
        "{body}"
    );
    srv.shutdown();
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn hello_rejects_bad_names_arity_and_duplicates() {
    let d = daemon(Config::default());
    let mut c = client(&d);
    let bad = c
        .hello("../escape", vec![LocalPredicate::var("ok")], None)
        .unwrap();
    assert!(matches!(
        bad,
        Response::Err {
            kind: ErrorKind::Malformed,
            ..
        }
    ));
    assert!(matches!(
        c.hello("ok-name", vec![], None).unwrap(),
        Response::Err {
            kind: ErrorKind::Malformed,
            ..
        }
    ));
    assert!(matches!(
        c.hello(
            "ok-name",
            vec![LocalPredicate::var("ok")],
            Some(vec![vec![], vec![]]),
        )
        .unwrap(),
        Response::Err {
            kind: ErrorKind::Malformed,
            ..
        }
    ));
    assert_eq!(
        c.hello("ok-name", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    assert!(matches!(
        c.hello("ok-name", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Err {
            kind: ErrorKind::SessionExists,
            ..
        }
    ));
    // Appends to unknown processes wedge the session with a structured
    // sticky error instead of killing anything.
    assert_eq!(
        c.append(
            "ok-name",
            pctl_deposet::AppendOp::Internal {
                process: 9,
                updates: vec![],
            },
        )
        .unwrap(),
        Response::Ok,
        "acked on enqueue"
    );
    match c.detect("ok-name").unwrap() {
        Response::Err { kind, detail } => {
            assert_eq!(kind, ErrorKind::Append);
            assert!(detail.contains("process"), "{detail}");
        }
        other => panic!("unexpected: {other:?}"),
    }
    assert_eq!(c.close("ok-name").unwrap(), Response::Ok);
    assert_eq!(d.shutdown(), 0);
}

/// Scrape the daemon's metrics endpoint once, returning the body.
fn scrape(srv: &pctl_obs::prom::MetricsServer) -> String {
    let mut s = TcpStream::connect(srv.local_addr()).unwrap();
    write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    resp.split("\r\n\r\n").nth(1).unwrap_or("").to_owned()
}

#[test]
fn request_histograms_export_and_validate_on_metrics() {
    let d = daemon(Config::default());
    let mut c = client(&d);
    let dep = random_deposet(
        &RandomConfig {
            processes: 3,
            events: 30,
            send_prob: 0.4,
            flip_prob: 0.4,
        },
        5,
    );
    let pred = DisjunctivePredicate::at_least_one(3, "ok");
    let (init, ops) = linearize(&dep);
    let appended = ops.len() as f64;
    assert_eq!(
        c.hello("histo", pred.locals().to_vec(), Some(init))
            .unwrap(),
        Response::Ok
    );
    for op in ops {
        assert_eq!(
            c.append_retry("histo", op, RetryPolicy::default()).unwrap(),
            Response::Ok
        );
    }
    match c.detect("histo").unwrap() {
        Response::Detect { .. } => {}
        other => panic!("unexpected: {other:?}"),
    }
    let srv = d.spawn_metrics("127.0.0.1:0").expect("metrics bind");
    let body = scrape(&srv);
    pctl_obs::prom::validate_exposition(&body).expect("histograms validate");
    // Per-verb request histograms: the +Inf bucket of each verb equals its
    // _count, and every verb this test exercised is present.
    for verb in ["hello", "append", "detect"] {
        assert!(
            body.contains(&format!(
                "pctld_request_seconds_bucket{{verb=\"{verb}\",le=\"+Inf\"}}"
            )),
            "verb {verb} missing from exposition:\n{body}"
        );
        assert!(
            body.contains(&format!("pctld_request_seconds_count{{verb=\"{verb}\"}}")),
            "{body}"
        );
    }
    assert!(
        body.contains(&format!(
            "pctld_request_seconds_count{{verb=\"append\"}} {appended}"
        )),
        "every accepted append is observed exactly once:\n{body}"
    );
    // The append split: queue-wait and store-apply histograms carry the
    // same total count as the appends the worker applied.
    assert!(
        body.contains(&format!("pctld_append_queue_wait_seconds_count {appended}")),
        "{body}"
    );
    assert!(
        body.contains(&format!("pctld_append_apply_seconds_count {appended}")),
        "{body}"
    );
    srv.shutdown();
    assert_eq!(c.close("histo").unwrap(), Response::Ok);
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn telemetry_off_exports_no_request_histograms_and_same_verdicts() {
    let cfg = Config {
        telemetry: false,
        ..Config::default()
    };
    let d = daemon(cfg);
    let mut c = client(&d);
    let dep = random_deposet(
        &RandomConfig {
            processes: 3,
            events: 24,
            send_prob: 0.4,
            flip_prob: 0.4,
        },
        17,
    );
    let pred = DisjunctivePredicate::at_least_one(3, "ok");
    let (init, ops) = linearize(&dep);
    assert_eq!(
        c.hello("dark", pred.locals().to_vec(), Some(init)).unwrap(),
        Response::Ok
    );
    for op in ops {
        assert_eq!(
            c.append_retry("dark", op, RetryPolicy::default()).unwrap(),
            Response::Ok
        );
    }
    // Verdicts are bit-identical to the batch engine with telemetry off.
    let batch = PredicateEngine::new(&dep, pred);
    match c.detect("dark").unwrap() {
        Response::Detect { violation } => assert_eq!(
            violation,
            batch.detect_violation().map(|g| g.indices().to_vec())
        ),
        other => panic!("unexpected: {other:?}"),
    }
    // The Trace verb degrades gracefully: no ring, empty answer.
    match c.trace("dark").unwrap() {
        Response::Trace {
            events,
            dropped,
            processes,
        } => {
            assert!(events.is_empty(), "no ring when telemetry is off");
            assert_eq!(dropped, 0);
            assert_eq!(processes, 3);
        }
        other => panic!("unexpected: {other:?}"),
    }
    let srv = d.spawn_metrics("127.0.0.1:0").expect("metrics bind");
    let body = scrape(&srv);
    pctl_obs::prom::validate_exposition(&body).expect("valid exposition");
    assert!(
        !body.contains("pctld_request_seconds"),
        "telemetry off exports no request histograms:\n{body}"
    );
    srv.shutdown();
    assert_eq!(c.close("dark").unwrap(), Response::Ok);
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn stats_per_session_percentiles_are_exact() {
    let d = daemon(Config::default());
    let mut c = client(&d);
    let dep = random_deposet(
        &RandomConfig {
            processes: 3,
            events: 40,
            send_prob: 0.4,
            flip_prob: 0.4,
        },
        23,
    );
    let pred = DisjunctivePredicate::at_least_one(3, "ok");
    let (init, ops) = linearize(&dep);
    let total = ops.len() as u64;
    assert_eq!(
        c.hello("exact", pred.locals().to_vec(), Some(init))
            .unwrap(),
        Response::Ok
    );
    for op in ops {
        assert_eq!(
            c.append_retry("exact", op, RetryPolicy::default()).unwrap(),
            Response::Ok
        );
    }
    // Queries are answered by the same worker that applies appends, in
    // order — one round trip quiesces the queue, so the latency window is
    // complete before Stats reads it.
    match c.detect("exact").unwrap() {
        Response::Detect { .. } => {}
        other => panic!("unexpected: {other:?}"),
    }
    let recorded = d
        .session_append_latencies("exact")
        .expect("session is live");
    assert_eq!(
        recorded.len() as u64,
        total,
        "one sample per applied append"
    );
    let expect = pctl_obs::stats::Percentiles::of(&recorded).expect("non-empty");
    let stats = c.stats_snapshot().unwrap();
    let s = stats
        .per_session
        .iter()
        .find(|s| s.name == "exact")
        .expect("per-session row present");
    assert_eq!(s.appends, total);
    assert_eq!(s.p50_us, expect.p50, "p50 is exact nearest-rank: {s:?}");
    assert_eq!(s.p95_us, expect.p95, "p95 is exact nearest-rank: {s:?}");
    assert_eq!(s.queue_depth, 0, "quiesced session has an empty queue");
    assert!(s.approx_bytes > 0);
    assert_eq!(stats.sessions, 1);
    assert_eq!(c.close("exact").unwrap(), Response::Ok);
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn trace_verb_round_trips_to_a_valid_chrome_trace() {
    use pctl_obs::EventKind;
    // A ring smaller than the event count forces drop-oldest, so the
    // export path must prune orphaned receives to stay schema-valid.
    let cfg = Config {
        trace_ring: 16,
        ..Config::default()
    };
    let d = daemon(cfg);
    let mut c = client(&d);
    let dep = random_deposet(
        &RandomConfig {
            processes: 3,
            events: 48,
            send_prob: 0.5,
            flip_prob: 0.4,
        },
        11,
    );
    let pred = DisjunctivePredicate::at_least_one(3, "ok");
    let (init, ops) = linearize(&dep);
    let total = ops.len() as u64;
    assert_eq!(
        c.hello("traced", pred.locals().to_vec(), Some(init))
            .unwrap(),
        Response::Ok
    );
    for op in ops {
        assert_eq!(
            c.append_retry("traced", op, RetryPolicy::default())
                .unwrap(),
            Response::Ok
        );
    }
    match c.detect("traced").unwrap() {
        Response::Detect { .. } => {}
        other => panic!("unexpected: {other:?}"),
    }
    let (mut events, dropped, processes) = match c.trace("traced").unwrap() {
        Response::Trace {
            events,
            dropped,
            processes,
        } => (events, dropped, processes),
        other => panic!("unexpected: {other:?}"),
    };
    assert_eq!(processes, 3);
    assert!(!events.is_empty(), "ring holds the tail of the stream");
    assert!(events.len() <= 16 + 1, "bounded by the configured ring");
    assert!(
        dropped > 0 && dropped < 2 * total,
        "a 16-slot ring over {total} appends must drop: {dropped}"
    );
    // Timestamps are monotone oldest-first, and every lane is in range.
    for w in events.windows(2) {
        assert!(w[0].ts <= w[1].ts, "ring snapshot is oldest-first");
    }
    assert!(events
        .iter()
        .all(|e| e.lane < processes || matches!(e.kind, EventKind::Counter { .. })));
    pctl_obs::chrome::prune_orphan_flows(&mut events);
    let lanes: Vec<String> = (0..processes).map(|i| format!("p{i}")).collect();
    let json = pctl_obs::chrome::chrome_trace(&events, &lanes);
    pctl_obs::chrome::validate_chrome_trace(&json).expect("schema-valid Chrome trace");
    assert_eq!(c.close("traced").unwrap(), Response::Ok);
    // Trace on a closed session is a structured error, not silence.
    match c.trace("traced").unwrap() {
        Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::UnknownSession),
        other => panic!("unexpected: {other:?}"),
    }
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn slow_log_records_requests_as_structured_jsonl() {
    let dir = std::env::temp_dir().join(format!("pctld_slowlog_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("slow.jsonl");
    // Threshold 0: every request is "slow", so the log records them all.
    let cfg = Config {
        slow_log: Some(log_path.clone()),
        slow_ms: 0,
        ..Config::default()
    };
    let d = daemon(cfg);
    let mut c = client(&d);
    assert_eq!(
        c.hello("logged", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    assert_eq!(
        c.append(
            "logged",
            pctl_deposet::AppendOp::Internal {
                process: 0,
                updates: vec![("ok".into(), 1)],
            },
        )
        .unwrap(),
        Response::Ok
    );
    match c.detect("missing-session").unwrap() {
        Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::UnknownSession),
        other => panic!("unexpected: {other:?}"),
    }
    assert_eq!(c.close("logged").unwrap(), Response::Ok);
    assert_eq!(d.shutdown(), 0);
    let text = std::fs::read_to_string(&log_path).expect("slow log written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 4,
        "hello, append, failed detect, close all logged:\n{text}"
    );
    let mut verbs = Vec::new();
    let mut outcomes = Vec::new();
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line).expect("JSONL line parses");
        let obj = v.as_object().expect("record is an object");
        let get = |k: &str| {
            obj.iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing field {k} in {line}"))
        };
        verbs.push(get("verb").as_str().unwrap().to_owned());
        outcomes.push(get("outcome").as_str().unwrap().to_owned());
        for num in ["latency_us", "queue_depth", "ts_ms"] {
            assert!(
                matches!(
                    get(num),
                    serde_json::Value::UInt(_) | serde_json::Value::Int(_)
                ),
                "{num} is numeric in {line}"
            );
        }
    }
    for verb in ["hello", "append", "detect", "close"] {
        assert!(verbs.iter().any(|v| v == verb), "{verbs:?}");
    }
    assert!(outcomes.iter().any(|o| o == "ok"), "{outcomes:?}");
    assert!(
        outcomes.iter().any(|o| o.starts_with("err:")),
        "the failed detect records its error outcome: {outcomes:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn regular_class_session_answers_via_slicing_and_memoizes() {
    use pctl_deposet::{PredicateClass, RegularPredicate};
    let d = daemon(Config::default());
    let mut c = client(&d);
    // Conjunction of locals across all three processes — a violation the
    // disjunctive wire form cannot express at all.
    let class = PredicateClass::regular(3, RegularPredicate::conj_var(&[0, 1, 2], "ok"));
    for seed in [3u64, 17, 40] {
        let dep = random_deposet(
            &RandomConfig {
                processes: 3,
                events: 24,
                send_prob: 0.4,
                flip_prob: 0.4,
            },
            seed,
        );
        let name = format!("regular-{seed}");
        let report =
            pctld::stream_deposet_class(&mut c, &name, class.clone(), &dep, RetryPolicy::default())
                .unwrap();
        assert_eq!(report.appends, dep.total_states() - 3, "seed {seed}");
        let batch = pctl_core::PredicateEngine::for_class(&dep, &class).unwrap();
        match c.detect(&name).unwrap() {
            Response::Detect { violation } => assert_eq!(
                violation,
                batch.detect_violation().map(|g| g.indices().to_vec()),
                "seed {seed}: daemon slicing answers like the batch engine"
            ),
            other => panic!("unexpected: {other:?}"),
        }
        match c.control(&name).unwrap() {
            Response::Control { relation, witness } => {
                match batch.control(OfflineOptions::default()) {
                    Ok(rel) => {
                        assert_eq!(relation, Some(rel), "seed {seed}");
                        assert_eq!(witness, None);
                    }
                    Err(inf) => {
                        assert_eq!(relation, None);
                        assert_eq!(witness, Some(inf.witness), "seed {seed}");
                    }
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Same prefix, same query again: answered from the memoized
        // verdict, and the daemon-wide hit counter says so.
        let hits_before = c.stats_snapshot().unwrap().query_cache_hits_total;
        let first = c.detect(&name).unwrap();
        assert_eq!(first, c.detect(&name).unwrap(), "seed {seed}");
        let hits_after = c.stats_snapshot().unwrap().query_cache_hits_total;
        assert!(
            hits_after > hits_before,
            "seed {seed}: cache hits {hits_before} -> {hits_after}"
        );
        assert_eq!(c.close(&name).unwrap(), Response::Ok);
    }
    // A class whose violation names a process outside its arity is the
    // client's fault: structured Malformed, no session spawned.
    let bad = PredicateClass::regular(2, RegularPredicate::conj_var(&[0, 5], "ok"));
    match c.hello_class("bad-class", bad, None).unwrap() {
        Response::Err { kind, detail } => {
            assert_eq!(kind, ErrorKind::Malformed);
            assert!(detail.contains("class"), "{detail}");
        }
        other => panic!("unexpected: {other:?}"),
    }
    assert_eq!(d.session_count(), 0);
    assert_eq!(d.shutdown(), 0);
}
