//! Flight recorder end-to-end: anomaly-triggered postmortem bundles,
//! the health/readiness endpoints, the in-memory metrics history, and
//! slow-log rotation.

use pctl_deposet::LocalPredicate;
use pctl_obs::flight::{render_report, validate_bundle, AnomalyKind};
use pctld::{Client, Config, Daemon, Request, Response, RetryPolicy};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn daemon(cfg: Config) -> Daemon {
    Daemon::spawn(cfg).expect("bind daemon")
}

fn client(d: &Daemon) -> Client {
    Client::connect(d.local_addr()).expect("connect")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pctld_flight_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn append_ok(c: &mut Client, session: &str, n: usize) {
    for _ in 0..n {
        let op = pctl_deposet::AppendOp::Internal {
            process: 0,
            updates: vec![("ok".into(), 1)],
        };
        assert_eq!(
            c.append_retry(session, op, RetryPolicy::default()).unwrap(),
            Response::Ok
        );
    }
}

/// One raw GET against the daemon's HTTP sidecar; returns (status, body).
fn http_get(srv: &pctl_obs::prom::MetricsServer, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(srv.local_addr()).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status line");
    let body = resp.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
    (status, body)
}

/// Wait for at least one bundle directory to appear under `root`.
fn wait_for_bundle(root: &Path, timeout: Duration) -> Option<PathBuf> {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if let Ok(entries) = std::fs::read_dir(root) {
            for e in entries.flatten() {
                if e.path().is_dir() {
                    return Some(e.path());
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    None
}

#[test]
fn crash_dumps_schema_valid_bundle_that_renders() {
    let pm = temp_dir("crash_pm");
    let d = daemon(Config {
        fault_injection: true,
        flight_interval: Duration::from_millis(25),
        postmortem_dir: Some(pm.clone()),
        slow_ms: 0, // every request feeds the recent-slow ring
        ..Config::default()
    });
    let mut c = client(&d);
    assert_eq!(
        c.hello("crashy", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    append_ok(&mut c, "crashy", 10);
    // Panic the worker: the sampler sees poisoned_total advance within
    // two intervals and must dump exactly one worker-poisoned bundle.
    match c
        .request(Request::Crash {
            session: "crashy".into(),
        })
        .unwrap()
    {
        Response::Err { .. } => {}
        other => panic!("crash must answer an error, got {other:?}"),
    }
    let bundle_dir = wait_for_bundle(&pm, Duration::from_secs(5)).expect("a bundle appears");
    let bundle = validate_bundle(&bundle_dir).expect("bundle passes schema validation");
    assert_eq!(bundle.manifest.anomaly.kind, AnomalyKind::WorkerPoisoned);
    assert!(bundle.manifest.frames >= 1);
    assert!(
        !bundle.manifest.recent_anomalies.is_empty(),
        "the trigger itself is in the recent-anomaly timeline"
    );
    let report = render_report(&bundle);
    assert!(report.contains("worker-poisoned"), "{report}");
    assert!(report.contains("trajectory"), "{report}");
    // The recorder counted what it did.
    let stats = d.stats();
    assert!(stats.anomalies_total >= 1, "{stats:?}");
    assert!(stats.postmortems_total >= 1, "{stats:?}");
    // Rate limit: the single crash produced exactly one poisoned bundle.
    let poisoned_bundles = std::fs::read_dir(&pm)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().contains("worker-poisoned"))
        .count();
    assert_eq!(poisoned_bundles, 1, "one bundle per kind per window");
    assert_eq!(c.close("crashy").unwrap(), Response::Ok);
    d.shutdown();
    let _ = std::fs::remove_dir_all(&pm);
}

#[test]
fn healthz_reports_state_and_readyz_flips_on_drain() {
    let d = daemon(Config {
        flight_interval: Duration::from_millis(25),
        ..Config::default()
    });
    let srv = d.spawn_metrics("127.0.0.1:0").expect("metrics sidecar");
    let mut c = client(&d);
    assert_eq!(
        c.hello("healthy", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    append_ok(&mut c, "healthy", 5);
    std::thread::sleep(Duration::from_millis(100)); // a few frames
    let (status, body) = http_get(&srv, "/healthz");
    assert_eq!(status, 200);
    let health: serde_json::Value = serde_json::from_str(body.trim()).expect("healthz is JSON");
    let obj = health.as_object().unwrap();
    let field = |k: &str| {
        obj.iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| v.clone())
    };
    assert_eq!(field("status").unwrap().as_str(), Some("ok"));
    for key in ["slo_burn", "poisoned_total", "memory_budget_bytes"] {
        assert!(field(key).is_some(), "missing {key} in {body}");
    }
    let (status, body) = http_get(&srv, "/readyz");
    assert_eq!((status, body.trim()), (200, "ready"));
    // /metrics still works on the same listener, with the new counters.
    let (status, body) = http_get(&srv, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("pctld_anomalies_total"), "{body}");
    assert!(body.contains("pctld_frames_rejected_total"), "{body}");
    // In-memory history accumulated frames with the expected shape.
    let history = d.flight_history();
    assert!(history.len() >= 2, "{} frames", history.len());
    assert!(history.windows(2).all(|w| w[0].uptime_ms <= w[1].uptime_ms));
    let last = history.last().unwrap();
    assert_eq!(last.counter("appends_total"), 5);
    assert_eq!(last.gauge("sessions"), 1);
    // A remote Shutdown drains the daemon: readiness must flip to 503
    // while the sidecar stays up for scrapes.
    match c.request(Request::Shutdown).unwrap() {
        Response::Draining { leaked } => assert_eq!(leaked, 0),
        other => panic!("unexpected: {other:?}"),
    }
    let (status, body) = http_get(&srv, "/readyz");
    assert_eq!((status, body.trim()), (503, "draining"));
    let (status, body) = http_get(&srv, "/healthz");
    assert_eq!(status, 200, "liveness stays 200 while draining");
    assert!(body.contains("\"status\":\"draining\""), "{body}");
    srv.shutdown();
}

#[test]
fn flight_off_records_nothing() {
    let d = daemon(Config {
        flight: false,
        flight_interval: Duration::from_millis(10),
        ..Config::default()
    });
    std::thread::sleep(Duration::from_millis(80));
    assert!(d.flight_history().is_empty());
    let stats = d.stats();
    assert_eq!(stats.anomalies_total, 0);
    assert_eq!(d.shutdown(), 0);
}

#[test]
fn slow_log_rotates_at_size_cap() {
    let dir = temp_dir("slowrot");
    let path = dir.join("slow.jsonl");
    let cap = 600u64;
    let d = daemon(Config {
        slow_log: Some(path.clone()),
        slow_ms: 0, // log every request
        slow_log_max_bytes: cap,
        flight: false,
        ..Config::default()
    });
    let mut c = client(&d);
    assert_eq!(
        c.hello("rot", vec![LocalPredicate::var("ok")], None)
            .unwrap(),
        Response::Ok
    );
    // Each record is ~120 bytes; 40 appends write far past one cap.
    append_ok(&mut c, "rot", 40);
    assert_eq!(c.close("rot").unwrap(), Response::Ok);
    d.shutdown();
    let rotated = dir.join("slow.jsonl.1");
    assert!(rotated.is_file(), "rotation produced slow.jsonl.1");
    for p in [&path, &rotated] {
        let text = std::fs::read_to_string(p).unwrap();
        assert!(!text.is_empty(), "{p:?} is non-empty");
        assert!(
            text.len() as u64 <= cap,
            "{p:?} holds {} bytes, cap {cap}",
            text.len()
        );
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("JSONL record");
            assert!(
                v.as_object()
                    .unwrap()
                    .iter()
                    .any(|(k, _)| k == "latency_us"),
                "{line}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
