//! The torture test: many concurrent sessions make correct progress while
//! hostile clients throw everything at the daemon — garbage frames,
//! oversized declarations, slow-loris drips, single-byte fragmented
//! writes, and mid-stream disconnects — and at the end the daemon drains
//! with zero leaked sessions and zero poisoned workers.

use pctl_core::offline::OfflineOptions;
use pctl_core::PredicateEngine;
use pctl_deposet::generator::{random_deposet, RandomConfig};
use pctl_deposet::{DisjunctivePredicate, PredicateClass, RegularPredicate};
use pctld::{
    encode_frame, Client, Config, Daemon, Request, RequestEnvelope, Response, RetryPolicy,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 10;

/// Deterministic hostile-byte source (xorshift64) — no RNG dependency.
struct Bytes(u64);

impl Bytes {
    fn next(&mut self) -> u8 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 & 0xff) as u8
    }
}

fn retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 60,
        ..RetryPolicy::default()
    }
}

/// Queries share the session queue with appends, and appends are acked on
/// enqueue — so a detect/control fired right after the last append Ok can
/// land on a still-full queue and bounce with Busy. Absorb it like the
/// append path does.
fn query_retry(
    c: &mut Client,
    mut f: impl FnMut(&mut Client) -> std::io::Result<Response>,
) -> Response {
    loop {
        match f(c).unwrap() {
            Response::Busy { retry_after_ms } => {
                std::thread::sleep(Duration::from_millis(retry_after_ms))
            }
            other => return other,
        }
    }
}

#[test]
fn torture_concurrent_sessions_survive_chaos_and_drain_clean() {
    let slow_dir = std::env::temp_dir().join(format!("pctld_torture_{}", std::process::id()));
    std::fs::create_dir_all(&slow_dir).expect("create slow-log dir");
    let slow_path = slow_dir.join("slow.jsonl");
    let d = Daemon::spawn(Config {
        // A shallow queue so the Sleep-stalled sessions genuinely bounce
        // appends with Busy and the retry loop has to absorb it.
        queue_depth: 4,
        fault_injection: true,
        // Full telemetry under fire: request histograms, per-session trace
        // rings, and a log-everything slow log — the verdict asserts below
        // prove observation stays strictly observational.
        trace_ring: 64,
        slow_log: Some(slow_path.clone()),
        slow_ms: 0,
        // The flight recorder sampling fast, dumping postmortem bundles on
        // any anomaly the chaos provokes (garbage frames alone guarantee
        // frame-rejected) — all while the verdict asserts below must stay
        // bit-identical to the batch engines: the recorder is strictly
        // observational even under fire.
        flight_interval: Duration::from_millis(25),
        postmortem_dir: Some(slow_dir.join("postmortems")),
        ..Config::default()
    })
    .expect("bind daemon");
    let addr = d.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    // Chaos crew, on their own connections, running for the whole test.
    let mut chaos = Vec::new();

    // 1. Garbage: valid frames holding non-JSON bytes, raw junk that will
    //    parse as absurd length prefixes, and abrupt disconnects.
    {
        let stop = Arc::clone(&stop);
        chaos.push(std::thread::spawn(move || {
            let mut rng = Bytes(0x9e3779b97f4a7c15);
            while !stop.load(Ordering::SeqCst) {
                let Ok(mut s) = TcpStream::connect(addr) else {
                    continue;
                };
                let _ = s.set_nodelay(true);
                match rng.next() % 3 {
                    0 => {
                        // Well-framed garbage payload: daemon must answer
                        // with a structured Malformed error, not die.
                        let body: Vec<u8> = (0..40).map(|_| rng.next()).collect();
                        let mut wire = Vec::new();
                        encode_frame(&body, &mut wire);
                        let _ = s.write_all(&wire);
                        let mut buf = [0u8; 512];
                        let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                        let _ = s.read(&mut buf);
                    }
                    1 => {
                        // Oversized declaration: one error frame, then the
                        // daemon hangs up on this connection only.
                        let _ = s.write_all(&[0xff, 0xff, 0xff, 0xff, 0, 0]);
                        let mut buf = [0u8; 512];
                        let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                        let _ = s.read(&mut buf);
                    }
                    _ => {
                        // Truncated header, then vanish mid-frame.
                        let _ = s.write_all(&[0, 0]);
                    }
                }
                drop(s);
                std::thread::sleep(Duration::from_millis(2));
            }
        }));
    }

    // 2. Slow loris: open a connection, drip two header bytes, then just
    //    sit on it. Per-connection threading means it ties up one blocked
    //    reader and nothing else.
    {
        let stop = Arc::clone(&stop);
        chaos.push(std::thread::spawn(move || {
            let loris = TcpStream::connect(addr).ok();
            if let Some(mut s) = loris {
                let _ = s.write_all(&[0, 0]);
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }));
    }

    // 3. Fragmentation: a valid Stats request delivered one byte at a
    //    time must still get a well-formed answer every round.
    {
        let stop = Arc::clone(&stop);
        chaos.push(std::thread::spawn(move || {
            let env = RequestEnvelope {
                seq: 1,
                req: Request::Stats,
            };
            let json = serde_json::to_string(&env).unwrap();
            let mut wire = Vec::new();
            encode_frame(json.as_bytes(), &mut wire);
            while !stop.load(Ordering::SeqCst) {
                let Ok(mut s) = TcpStream::connect(addr) else {
                    continue;
                };
                let _ = s.set_nodelay(true);
                for b in &wire {
                    if s.write_all(&[*b]).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                let mut hdr = [0u8; 4];
                if s.read_exact(&mut hdr).is_ok() {
                    let n = u32::from_be_bytes(hdr) as usize;
                    let mut body = vec![0u8; n];
                    s.read_exact(&mut body).expect("complete stats response");
                    let text = std::str::from_utf8(&body).expect("utf-8 response");
                    assert!(
                        text.contains("Stats"),
                        "fragmented request got a non-stats answer: {text}"
                    );
                }
            }
        }));
    }

    // 4. Concurrent scraper: hammer /metrics for the whole test, and every
    //    single response must be a complete, validating exposition — the
    //    histogram invariants (le ordering, cumulative buckets, +Inf ==
    //    _count) must hold mid-torture, not just at rest.
    let metrics = d.spawn_metrics("127.0.0.1:0").expect("metrics bind");
    let scrapes = {
        let stop = Arc::clone(&stop);
        let maddr = metrics.local_addr();
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            let mut saw_request_histogram = false;
            while !stop.load(Ordering::SeqCst) {
                let Ok(mut s) = TcpStream::connect(maddr) else {
                    continue;
                };
                let _ = write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
                let mut resp = String::new();
                if s.read_to_string(&mut resp).is_err() {
                    continue;
                }
                let body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
                pctl_obs::prom::validate_exposition(body)
                    .unwrap_or_else(|e| panic!("mid-torture scrape invalid: {e}\n{body}"));
                if body.contains("pctld_request_seconds_bucket") {
                    saw_request_histogram = true;
                }
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            assert!(
                saw_request_histogram,
                "request histograms never appeared across {scrapes} scrapes"
            );
            scrapes
        })
    };

    // Honest sessions: each streams its own seeded computation, drops its
    // connection halfway through (sessions belong to the daemon, not the
    // connection), and finally checks the daemon's verdicts against a
    // batch engine over the same computation.
    let mut workers = Vec::new();
    for i in 0..SESSIONS {
        workers.push(std::thread::spawn(move || {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 24,
                    send_prob: 0.4,
                    flip_prob: 0.4,
                },
                1000 + i as u64,
            );
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            // Every third session streams a *regular* conjunctive class:
            // its verdicts route through the slicing engine on the daemon
            // side, under the same chaos as the disjunctive sessions.
            let class = (i % 3 == 2)
                .then(|| PredicateClass::regular(3, RegularPredicate::conj_var(&[0, 1, 2], "ok")));
            let (init, ops) = pctl_deposet::linearize(&dep);
            let name = format!("torture-{i}");
            let mut c = Client::connect(addr).expect("connect");
            match &class {
                Some(cl) => assert_eq!(
                    c.hello_class(&name, cl.clone(), Some(init)).unwrap(),
                    Response::Ok
                ),
                None => assert_eq!(
                    c.hello(&name, pred.locals().to_vec(), Some(init)).unwrap(),
                    Response::Ok
                ),
            }
            let midpoint = ops.len() / 2;
            let appended = ops.len() as u64;
            let mut sleeper = None;
            for (k, op) in ops.into_iter().enumerate() {
                if k == midpoint && k > 0 {
                    // Mid-stream disconnect + reconnect.
                    c = Client::connect(addr).expect("reconnect");
                    if i % 4 == 0 {
                        // Stall the worker so the shallow queue fills and
                        // the remaining appends ride out real Busy
                        // bounces through the retry loop. Sleep replies
                        // only after the stall ends, so it goes through a
                        // throwaway connection — this client must keep
                        // flooding *during* the stall.
                        let sleeper_name = name.clone();
                        sleeper = Some(std::thread::spawn(move || {
                            let mut s = Client::connect(addr).expect("sleeper connect");
                            loop {
                                match s
                                    .request(Request::Sleep {
                                        session: sleeper_name.clone(),
                                        ms: 300,
                                    })
                                    .unwrap()
                                {
                                    Response::Ok => break,
                                    Response::Busy { retry_after_ms } => {
                                        std::thread::sleep(Duration::from_millis(retry_after_ms));
                                    }
                                    other => panic!("unexpected sleep answer: {other:?}"),
                                }
                            }
                        }));
                        // Give the Sleep command time to enqueue ahead of
                        // the flood (enqueue happens on frame receipt, well
                        // before its post-stall reply).
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
                assert_eq!(
                    c.append_retry(&name, op, retry()).unwrap(),
                    Response::Ok,
                    "session {name} append {k}"
                );
            }
            if let Some(h) = sleeper {
                h.join().expect("sleeper thread failed");
            }
            let batch = match &class {
                Some(cl) => PredicateEngine::for_class(&dep, cl).expect("valid class"),
                None => PredicateEngine::new(&dep, pred),
            };
            match query_retry(&mut c, |c| c.detect(&name)) {
                Response::Detect { violation } => assert_eq!(
                    violation,
                    batch.detect_violation().map(|g| g.indices().to_vec()),
                    "session {name}"
                ),
                other => panic!("unexpected detect answer: {other:?}"),
            }
            match query_retry(&mut c, |c| c.control(&name)) {
                Response::Control { relation, witness } => {
                    match batch.control(OfflineOptions::default()) {
                        Ok(rel) => {
                            assert_eq!(relation, Some(rel), "session {name}");
                            assert_eq!(witness, None);
                        }
                        Err(inf) => {
                            assert_eq!(relation, None);
                            assert_eq!(witness, Some(inf.witness), "session {name}");
                        }
                    }
                }
                other => panic!("unexpected control answer: {other:?}"),
            }
            assert_eq!(c.close(&name).unwrap(), Response::Ok);
            appended
        }));
    }
    let mut total_appends = 0u64;
    for w in workers {
        total_appends += w.join().expect("an honest session failed under chaos");
    }
    stop.store(true, Ordering::SeqCst);
    for c in chaos {
        c.join().expect("a chaos thread panicked");
    }
    let scrape_count = scrapes.join().expect("the scraper thread panicked");
    assert!(scrape_count > 0, "the scraper never completed a scrape");
    metrics.shutdown();

    // Every honest session closed itself; chaos opened none.
    assert_eq!(d.session_count(), 0, "leaked sessions before drain");
    let stats = d.stats();
    assert_eq!(stats.poisoned_total, 0, "chaos must not poison workers");
    assert!(
        stats.busy_total > 0,
        "the stalled sessions should have bounced at least one append"
    );
    assert_eq!(stats.appends_total, total_appends);
    // The garbage chaos thread guarantees frame rejections, so the flight
    // recorder must have seen at least that anomaly and counted it.
    assert!(
        stats.frames_rejected_total > 0,
        "garbage frames must be counted as rejections"
    );
    assert_eq!(d.shutdown(), 0, "drain must leak nothing");

    // Whatever bundles the chaos provoked must all be schema-valid and
    // renderable — a corrupt postmortem is worse than none.
    let pm_dir = slow_dir.join("postmortems");
    let mut bundles = 0usize;
    if let Ok(entries) = std::fs::read_dir(&pm_dir) {
        for e in entries.flatten() {
            let bundle = pctl_obs::flight::validate_bundle(&e.path())
                .unwrap_or_else(|err| panic!("bundle {:?} invalid: {err}", e.path()));
            let report = pctl_obs::flight::render_report(&bundle);
            assert!(report.contains("postmortem:"), "{report}");
            bundles += 1;
        }
    }
    assert!(
        bundles > 0,
        "chaos (guaranteed frame rejections) must have dumped at least one bundle"
    );
    // `stats` was snapped before shutdown; the sampler may have dumped
    // once more since, so the counter is a floor for what's on disk.
    assert!(bundles >= stats.postmortems_total as usize);

    // The log-everything slow log captured the torture as structured JSONL.
    let text = std::fs::read_to_string(&slow_path).expect("slow log written");
    assert!(
        text.lines().count() as u64 >= total_appends,
        "every accepted append is a logged request"
    );
    for line in text.lines().take(50) {
        let v: serde_json::Value = serde_json::from_str(line).expect("slow-log line parses");
        assert!(v.as_object().is_some(), "record is an object: {line}");
    }
    std::fs::remove_dir_all(&slow_dir).ok();
}
