//! Hostile-input properties of the frame decoder: arbitrary byte garbage,
//! truncation, and oversized declarations always produce a structured
//! outcome — never a panic, never a silent desync.

use pctld::{encode_frame, FrameDecoder, FrameError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random byte garbage, delivered in random fragments: every
    /// `next_frame` call returns a structured result. Any frame it does
    /// yield is a faithful slice of the input (the declared length), and
    /// an error only ever reports a genuinely over-cap declaration.
    #[test]
    fn garbage_never_panics_and_errors_are_structured(
        bytes in proptest::collection::vec(0u8..=255, 0..2048),
        cuts in proptest::collection::vec(1usize..64, 0..64),
        max_frame in 16usize..512,
    ) {
        let mut dec = FrameDecoder::new(max_frame);
        let mut fed = 0usize;
        let mut cut_iter = cuts.iter();
        while fed < bytes.len() {
            let step = cut_iter.next().copied().unwrap_or(17).min(bytes.len() - fed);
            dec.push(&bytes[fed..fed + step]);
            fed += step;
            loop {
                match dec.next_frame() {
                    Ok(Some(frame)) => prop_assert!(frame.len() <= max_frame),
                    Ok(None) => break,
                    Err(FrameError::Oversized { declared, max }) => {
                        prop_assert!(declared > max);
                        prop_assert_eq!(max, max_frame);
                        // Poisoned forever; feeding more changes nothing.
                        dec.push(&bytes[fed..]);
                        prop_assert!(dec.next_frame().is_err());
                        return Ok(());
                    }
                }
            }
        }
    }

    /// A well-formed frame stream survives arbitrary fragmentation with no
    /// desync: the decoder reproduces exactly the encoded payloads, in
    /// order, regardless of how the bytes were chopped up.
    #[test]
    fn valid_streams_never_desync_under_fragmentation(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..200), 0..12),
        cuts in proptest::collection::vec(1usize..48, 1..64),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            encode_frame(p, &mut wire);
        }
        let mut dec = FrameDecoder::new(4096);
        let mut got = Vec::new();
        let mut fed = 0usize;
        let mut cut_iter = cuts.iter().cycle();
        while fed < wire.len() {
            let step = (*cut_iter.next().unwrap()).min(wire.len() - fed);
            dec.push(&wire[fed..fed + step]);
            fed += step;
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Truncating a valid stream anywhere yields only the complete frames
    /// before the cut — no partial frame is ever surfaced.
    #[test]
    fn truncation_yields_only_complete_frames(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..100), 1..8),
        cut_pct in 0usize..=100,
    ) {
        let mut wire = Vec::new();
        let mut boundaries = Vec::new();
        for p in &payloads {
            encode_frame(p, &mut wire);
            boundaries.push(wire.len());
        }
        let cut = wire.len() * cut_pct / 100;
        let complete = boundaries.iter().filter(|&&b| b <= cut).count();
        let mut dec = FrameDecoder::new(4096);
        dec.push(&wire[..cut]);
        let mut got = Vec::new();
        while let Some(f) = dec.next_frame().unwrap() {
            got.push(f);
        }
        prop_assert_eq!(&got, &payloads[..complete]);
    }
}
