//! On-line weak conjunctive detection with a checker process.
//!
//! The off-line detector ([`crate::conjunctive`]) walks a finished trace;
//! debugging a *running* system needs the classic on-line formulation
//! (Garg & Waldecker): every monitored process maintains a vector clock at
//! runtime, and whenever its local predicate turns true it reports the
//! current clock to a dedicated **checker** process. The checker keeps one
//! candidate queue per process and runs the elimination rule incrementally
//! — `cand[i] → cand[j]` (decided from the reported clocks alone) kills
//! `cand[i]` — announcing detection the moment the heads are pairwise
//! concurrent.
//!
//! The checker logic is sans-I/O ([`CheckerState`]); it is exercised here
//! on the simulator with token-ring application traffic (so the runtime
//! clocks actually entangle), and its verdicts are validated against the
//! off-line detector on the recorded trace.

use pctl_causality::{ProcessId, VectorClock};
use pctl_deposet::Deposet;
use pctl_sim::{Ctx, Payload, Process, SimConfig, SimResult, Simulation, TimerId};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Incremental weak-conjunctive checker over reported candidate clocks.
///
/// Feed it `(process, clock)` reports in any arrival order;
/// [`CheckerState::detected`] returns the satisfying cut's clocks once all
/// heads are pairwise concurrent.
#[derive(Clone, Debug)]
pub struct CheckerState {
    queues: Vec<VecDeque<VectorClock>>,
    detected: Option<Vec<VectorClock>>,
}

impl CheckerState {
    /// A checker for `n` monitored processes.
    pub fn new(n: usize) -> Self {
        CheckerState {
            queues: vec![VecDeque::new(); n],
            detected: None,
        }
    }

    /// Report that `process`'s local predicate holds at `clock`. Reports
    /// from one process must arrive in its local (FIFO) order.
    pub fn report(&mut self, process: ProcessId, clock: VectorClock) {
        if self.detected.is_some() {
            return;
        }
        self.queues[process.index()].push_back(clock);
        self.eliminate();
    }

    /// The satisfying candidate cut, if found.
    pub fn detected(&self) -> Option<&[VectorClock]> {
        self.detected.as_deref()
    }

    /// Clock comparison for candidate states: candidate of `i` precedes
    /// candidate of `j` iff `cand_i[i] ≤ cand_j[i]` (Fidge–Mattern on
    /// states).
    fn precedes(a: &VectorClock, i: usize, b: &VectorClock) -> bool {
        a.get(ProcessId(i as u32)) <= b.get(ProcessId(i as u32))
    }

    fn eliminate(&mut self) {
        let n = self.queues.len();
        loop {
            // Need a full front line.
            if self.queues.iter().any(VecDeque::is_empty) {
                return;
            }
            let mut eliminated = false;
            'scan: for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let ci = self.queues[i].front().unwrap();
                    let cj = self.queues[j].front().unwrap();
                    if Self::precedes(ci, i, cj) {
                        // cand[i] precedes cand[j] and hence every later
                        // candidate of j: it can never be in a solution.
                        self.queues[i].pop_front();
                        eliminated = true;
                        break 'scan;
                    }
                }
            }
            if !eliminated {
                let cut = self
                    .queues
                    .iter()
                    .map(|q| q.front().unwrap().clone())
                    .collect();
                self.detected = Some(cut);
                return;
            }
        }
    }
}

/// Messages of the monitored system: ring tokens entangle the runtime
/// clocks; reports carry candidate clocks to the checker.
#[derive(Clone, Debug)]
pub enum MonMsg {
    /// Application traffic around the ring (carries the sender's clock).
    Ring(VectorClock),
    /// "My predicate holds at this clock."
    Report(VectorClock),
}

impl Payload for MonMsg {
    fn tag(&self) -> &'static str {
        match self {
            MonMsg::Ring(_) => "ring",
            MonMsg::Report(_) => "report",
        }
    }
    fn is_control(&self) -> bool {
        matches!(self, MonMsg::Report(_))
    }
}

/// A monitored process: alternates predicate-false and predicate-true
/// phases; maintains a runtime vector clock (ticked per traced step,
/// merged on ring receipts); reports clock snapshots of predicate-true
/// states to the checker.
struct Monitored {
    n: usize,
    clock: VectorClock,
    phases: VecDeque<(u64, bool)>,
    checker: ProcessId,
}

impl Monitored {
    fn tick_step(&mut self, ctx: &mut Ctx<'_, MonMsg>, value: bool) {
        ctx.step(&[("flag", i64::from(value))]);
        self.clock.tick(ctx.me());
        if value {
            ctx.send(self.checker, MonMsg::Report(self.clock.clone()));
        }
    }
}

impl Process<MonMsg> for Monitored {
    fn on_start(&mut self, ctx: &mut Ctx<'_, MonMsg>) {
        ctx.init_var("flag", 0);
        self.clock.tick(ctx.me()); // ⊥ counts as one state
        if let Some(&(d, _)) = self.phases.front() {
            ctx.set_timer(d);
        } else {
            ctx.set_done();
        }
        // Kick the ring from P0.
        if ctx.me().index() == 0 && self.n > 1 {
            let next = ProcessId(((ctx.me().index() + 1) % self.n) as u32);
            ctx.send(next, MonMsg::Ring(self.clock.clone()));
        }
    }

    fn on_message(&mut self, _from: ProcessId, msg: MonMsg, ctx: &mut Ctx<'_, MonMsg>) {
        if let MonMsg::Ring(clock) = msg {
            // Receive event: the trace already recorded it; track it in the
            // runtime clock too.
            self.clock.merge(&clock);
            self.clock.tick(ctx.me());
            // Keep the ring alive a little.
            if clock.entries().iter().map(|&e| u64::from(e)).sum::<u64>() < 60 {
                let next = ProcessId(((ctx.me().index() + 1) % self.n) as u32);
                ctx.send(next, MonMsg::Ring(self.clock.clone()));
            }
        }
    }

    fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, MonMsg>) {
        let Some((_, value)) = self.phases.pop_front() else {
            return;
        };
        self.tick_step(ctx, value);
        if let Some(&(d, _)) = self.phases.front() {
            ctx.set_timer(d);
        } else {
            ctx.set_done();
        }
    }
}

/// The checker process: runs [`CheckerState`] on incoming reports.
struct Checker {
    state: CheckerState,
    slot: Rc<RefCell<Option<Vec<VectorClock>>>>,
}

impl Process<MonMsg> for Checker {
    fn on_start(&mut self, ctx: &mut Ctx<'_, MonMsg>) {
        ctx.set_done();
    }
    fn on_message(&mut self, from: ProcessId, msg: MonMsg, ctx: &mut Ctx<'_, MonMsg>) {
        if let MonMsg::Report(clock) = msg {
            self.state.report(from, clock);
            if let Some(cut) = self.state.detected() {
                if self.slot.borrow().is_none() {
                    *self.slot.borrow_mut() = Some(cut.to_vec());
                    ctx.count("detections", 1);
                }
            }
        }
    }
}

/// Outcome of an on-line detection run.
pub struct OnlineRun {
    /// The traced computation (monitored processes + checker).
    pub deposet: Deposet,
    /// The checker's verdict: candidate clocks of the detected cut.
    pub detected: Option<Vec<VectorClock>>,
    /// Simulation result metadata.
    pub sim_end: pctl_sim::SimTime,
}

/// Run `n` monitored processes with the given per-process phase scripts
/// (`(delay, predicate_value)` steps) plus a checker as process `n`.
pub fn run_online_detection(scripts: Vec<Vec<(u64, bool)>>, seed: u64) -> OnlineRun {
    let n = scripts.len();
    let slot: Rc<RefCell<Option<Vec<VectorClock>>>> = Rc::new(RefCell::new(None));
    let checker = ProcessId(n as u32);
    let mut procs: Vec<Box<dyn Process<MonMsg>>> = scripts
        .into_iter()
        .map(|script| {
            Box::new(Monitored {
                n,
                clock: VectorClock::zero(n + 1),
                phases: script.into(),
                checker,
            }) as Box<dyn Process<MonMsg>>
        })
        .collect();
    procs.push(Box::new(Checker {
        state: CheckerState::new(n),
        slot: Rc::clone(&slot),
    }));
    let cfg = SimConfig {
        seed,
        delay: pctl_sim::DelayModel::Uniform { min: 2, max: 12 },
        ..SimConfig::default()
    };
    let r: SimResult = Simulation::new(cfg, procs).run();
    let detected = slot.borrow().clone();
    OnlineRun {
        deposet: r.deposet,
        detected,
        sim_end: r.end_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conjunctive::possibly_conjunction;
    use pctl_deposet::LocalPredicate;

    #[test]
    fn checker_state_detects_concurrent_candidates() {
        // Two processes, candidates with incomparable clocks.
        let mut c = CheckerState::new(2);
        c.report(ProcessId(0), VectorClock::from_entries(vec![2, 0]));
        assert!(c.detected().is_none(), "needs a full front line");
        c.report(ProcessId(1), VectorClock::from_entries(vec![0, 2]));
        assert!(c.detected().is_some());
    }

    #[test]
    fn checker_state_eliminates_ordered_candidates() {
        let mut c = CheckerState::new(2);
        // P0's candidate at clock ⟨1,0⟩ precedes P1's at ⟨2,3⟩ (entry 0:
        // 1 ≤ 2) → P0's is eliminated; a later concurrent one succeeds.
        c.report(ProcessId(0), VectorClock::from_entries(vec![1, 0]));
        c.report(ProcessId(1), VectorClock::from_entries(vec![2, 3]));
        assert!(c.detected().is_none());
        c.report(ProcessId(0), VectorClock::from_entries(vec![5, 0]));
        let cut = c.detected().expect("now concurrent");
        assert_eq!(cut[0].entries(), &[5, 0]);
    }

    #[test]
    fn checker_stops_after_detection() {
        let mut c = CheckerState::new(1);
        c.report(ProcessId(0), VectorClock::from_entries(vec![1]));
        let first = c.detected().unwrap().to_vec();
        c.report(ProcessId(0), VectorClock::from_entries(vec![9]));
        assert_eq!(c.detected().unwrap(), first.as_slice());
    }

    /// The end-to-end agreement test: the on-line checker's verdict equals
    /// the off-line detector's on the recorded trace (restricted to the
    /// monitored processes; the checker is a pure sink so its column does
    /// not influence monitored causality).
    #[test]
    fn online_verdict_matches_offline_detection() {
        let mut agreements = 0;
        for seed in 0..12u64 {
            // Random-ish staggered scripts; the seed shifts the phases.
            let mk = |i: u64| {
                vec![
                    (5 + (seed * 3 + i) % 7, false),
                    (4 + (seed + i) % 5, true),
                    (6 + (seed * 2) % 5, false),
                    (3 + (seed + 2 * i) % 6, true),
                    (4, false),
                ]
            };
            let scripts = vec![mk(0), mk(1), mk(2)];
            let run = run_online_detection(scripts, seed);
            let n = 3;
            // Off-line ground truth on the full trace (checker's local
            // predicate is vacuously true).
            let mut locals: Vec<LocalPredicate> =
                (0..n).map(|_| LocalPredicate::var("flag")).collect();
            locals.push(LocalPredicate::True);
            let offline: Option<pctl_deposet::GlobalState> =
                possibly_conjunction(&run.deposet, &locals);
            assert_eq!(
                run.detected.is_some(),
                offline.is_some(),
                "seed {seed}: online and offline detectors disagree"
            );
            if run.detected.is_some() {
                agreements += 1;
            }
        }
        assert!(agreements >= 3, "workload never triggered a detection");
    }
}
