//! Strong (definitely) conjunctive detection via interval overlap —
//! the detection side of the paper's Lemma 2.
//!
//! *Definitely(∧ᵢ qᵢ)* holds iff **every** interleaved execution passes a
//! consistent global state where all conjuncts hold. For conjuncts given by
//! per-process intervals (maximal runs where `qᵢ` holds), this is exactly
//! the existence of an *overlapping* interval set:
//!
//! ```text
//! ∀ i ≠ j:  (pred(Iᵢ.lo) → succ(Iⱼ.hi))  ∨  (Iᵢ.lo = ⊥ᵢ)  ∨  (Iⱼ.hi = ⊤ⱼ)
//! ```
//!
//! (`pred(lo)`/`succ(hi)` — the intervals' entering and ending *events* —
//! are the state-based translation of the paper's event-based condition;
//! the literal `lo → hi` reading is incomplete. The decided notion is the
//! *enforceable*, interleaving-based one; see `pctl-core`'s `overlap`
//! module docs for the derivation and counterexamples.)
//!
//! Applied with `qᵢ = ¬lᵢ` this decides infeasibility of the disjunctive
//! predicate `∨ᵢ lᵢ` (no control strategy can exist — the paper's
//! "No Controller Exists" case).
//!
//! The polynomial search mirrors the crossing loop of the off-line control
//! algorithm: while some pair `(i, j)` has `crossable(N(i), N(j))`, the
//! interval `N(j)` can be discarded (it can be fully crossed before `N(i)`
//! — or any later interval of `i` — is entered, so it belongs to no
//! overlapping set); if some process runs out of intervals there is no
//! overlap; if no pair is crossable the current fronts overlap.

use pctl_deposet::{Deposet, FalseIntervals, Interval};

/// Check the overlap condition on a full set (one interval per process).
/// Thin wrapper over the computation store's
/// [`set_overlaps`](pctl_deposet::store::set_overlaps).
pub fn overlapping(dep: &Deposet, set: &[Interval]) -> bool {
    pctl_deposet::store::set_overlaps(dep, set)
}

/// Polynomial search for an overlapping set among `intervals` (one
/// interval per process drawn from each process's list). Returns the
/// witness or `None`.
///
/// The front-advance search itself lives in the computation store
/// ([`pctl_deposet::store::find_overlap`]); see the module docs above for
/// why discarding the crossable front is sound.
pub fn find_overlap(dep: &Deposet, intervals: &FalseIntervals) -> Option<Vec<Interval>> {
    pctl_deposet::store::find_overlap(dep, intervals)
}

/// Definitely-detection for a disjunctive predicate's negation: does every
/// global sequence hit a state where all of `pred`'s disjuncts are false?
/// (Equivalently: is `pred` infeasible for the computation?)
pub fn definitely_all_false(
    dep: &Deposet,
    pred: &pctl_deposet::DisjunctivePredicate,
) -> Option<Vec<Interval>> {
    let intervals = FalseIntervals::extract(dep, pred);
    find_overlap(dep, &intervals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_deposet::{DeposetBuilder, DisjunctivePredicate};

    /// Brute-force overlap search (ground truth).
    fn brute(dep: &Deposet, intervals: &FalseIntervals) -> bool {
        let per: Vec<&[Interval]> = dep.processes().map(|p| intervals.of(p)).collect();
        if per.iter().any(|v| v.is_empty()) {
            return false;
        }
        fn rec(dep: &Deposet, per: &[&[Interval]], chosen: &mut Vec<Interval>, k: usize) -> bool {
            if k == per.len() {
                return overlapping(dep, chosen);
            }
            for &iv in per[k] {
                chosen.push(iv);
                if rec(dep, per, chosen, k + 1) {
                    return true;
                }
                chosen.pop();
            }
            false
        }
        rec(dep, &per, &mut Vec::new(), 0)
    }

    #[test]
    fn whole_lifetime_false_overlaps() {
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[]);
        b.internal(1, &[]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "up");
        let w = definitely_all_false(&dep, &pred).expect("overlap");
        assert!(overlapping(&dep, &w));
    }

    #[test]
    fn concurrent_interior_intervals_do_not_overlap() {
        let mut b = DeposetBuilder::new(3);
        for p in 0..3 {
            b.init_vars(p, &[("up", 1)]);
            b.internal(p, &[("up", 0)]);
            b.internal(p, &[("up", 1)]);
        }
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(3, "up");
        assert_eq!(definitely_all_false(&dep, &pred), None);
    }

    #[test]
    fn agrees_with_brute_force_on_random_workloads() {
        use pctl_deposet::generator::{pipelined_workload, random_deposet, CsConfig, RandomConfig};
        for seed in 0..25 {
            let dep = pipelined_workload(
                &CsConfig {
                    processes: 3,
                    sections_per_process: 3,
                    ..CsConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
            let iv = FalseIntervals::extract(&dep, &pred);
            assert_eq!(
                find_overlap(&dep, &iv).is_some(),
                brute(&dep, &iv),
                "pipelined seed {seed}"
            );
        }
        for seed in 0..25 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 20,
                    ..RandomConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            let iv = FalseIntervals::extract(&dep, &pred);
            assert_eq!(
                find_overlap(&dep, &iv).is_some(),
                brute(&dep, &iv),
                "random seed {seed}"
            );
        }
    }

    #[test]
    fn overlap_iff_no_satisfying_interleaving() {
        // Lemma 2 both ways, on small random traces, against exhaustive
        // interleaving search (the enforceable semantics).
        use pctl_deposet::generator::{random_deposet, RandomConfig};
        use pctl_deposet::sequences::find_satisfying_interleaving;
        for seed in 0..40 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 14,
                    ..RandomConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            let overlap = definitely_all_false(&dep, &pred).is_some();
            let seq = find_satisfying_interleaving(&dep, 2_000_000, |d, g| pred.eval(d, g))
                .expect("budget");
            assert_eq!(overlap, seq.is_none(), "seed {seed}: Lemma 2 violated");
        }
    }
}
