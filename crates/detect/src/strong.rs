//! Strong (definitely) conjunctive detection via interval overlap —
//! the detection side of the paper's Lemma 2.
//!
//! *Definitely(∧ᵢ qᵢ)* holds iff **every** interleaved execution passes a
//! consistent global state where all conjuncts hold. For conjuncts given by
//! per-process intervals (maximal runs where `qᵢ` holds), this is exactly
//! the existence of an *overlapping* interval set:
//!
//! ```text
//! ∀ i ≠ j:  (pred(Iᵢ.lo) → succ(Iⱼ.hi))  ∨  (Iᵢ.lo = ⊥ᵢ)  ∨  (Iⱼ.hi = ⊤ⱼ)
//! ```
//!
//! (`pred(lo)`/`succ(hi)` — the intervals' entering and ending *events* —
//! are the state-based translation of the paper's event-based condition;
//! the literal `lo → hi` reading is incomplete. The decided notion is the
//! *enforceable*, interleaving-based one; see `pctl-core`'s `overlap`
//! module docs for the derivation and counterexamples.)
//!
//! Applied with `qᵢ = ¬lᵢ` this decides infeasibility of the disjunctive
//! predicate `∨ᵢ lᵢ` (no control strategy can exist — the paper's
//! "No Controller Exists" case).
//!
//! The polynomial search mirrors the crossing loop of the off-line control
//! algorithm: while some pair `(i, j)` has `crossable(N(i), N(j))`, the
//! interval `N(j)` can be discarded (it can be fully crossed before `N(i)`
//! — or any later interval of `i` — is entered, so it belongs to no
//! overlapping set); if some process runs out of intervals there is no
//! overlap; if no pair is crossable the current fronts overlap.

use pctl_deposet::{Deposet, FalseIntervals, Interval, ProcessId};

/// Check the overlap condition on a full set (one interval per process).
pub fn overlapping(dep: &Deposet, set: &[Interval]) -> bool {
    assert_eq!(set.len(), dep.process_count());
    for (i, ii) in set.iter().enumerate() {
        for (j, ij) in set.iter().enumerate() {
            if i == j {
                continue;
            }
            let lo_bottom = ii.lo == 0;
            let hi_top = (ij.hi as usize) == dep.len_of(ij.process) - 1;
            if lo_bottom || hi_top {
                continue;
            }
            let entry = ii.lo_state().predecessor().expect("lo ≠ ⊥");
            let exit = ij.hi_state().successor();
            if !dep.precedes(entry, exit) {
                return false;
            }
        }
    }
    true
}

/// Polynomial search for an overlapping set among `intervals` (one
/// interval per process drawn from each process's list). Returns the
/// witness or `None`.
pub fn find_overlap(dep: &Deposet, intervals: &FalseIntervals) -> Option<Vec<Interval>> {
    let n = dep.process_count();
    assert_eq!(intervals.process_count(), n);
    let mut pos = vec![0usize; n];
    let front = |pos: &[usize], i: usize| -> Option<Interval> {
        intervals.of(ProcessId(i as u32)).get(pos[i]).copied()
    };
    loop {
        // Exhausted process ⇒ no overlapping set.
        if (0..n).any(|i| front(&pos, i).is_none()) {
            return None;
        }
        // Look for a crossable pair.
        let mut crossed = false;
        'scan: for i in 0..n {
            let ii = front(&pos, i).unwrap();
            for j in 0..n {
                if i == j {
                    continue;
                }
                let ij = front(&pos, j).unwrap();
                let in_range = ii.lo != 0 && (ij.hi as usize) < dep.len_of(ij.process) - 1;
                let crossable = in_range
                    && !dep.precedes(
                        ii.lo_state().predecessor().expect("lo ≠ ⊥"),
                        ij.hi_state().successor(),
                    );
                if crossable {
                    pos[j] += 1;
                    crossed = true;
                    break 'scan;
                }
            }
        }
        if !crossed {
            let witness: Vec<Interval> = (0..n).map(|i| front(&pos, i).unwrap()).collect();
            debug_assert!(overlapping(dep, &witness));
            return Some(witness);
        }
    }
}

/// Definitely-detection for a disjunctive predicate's negation: does every
/// global sequence hit a state where all of `pred`'s disjuncts are false?
/// (Equivalently: is `pred` infeasible for the computation?)
pub fn definitely_all_false(
    dep: &Deposet,
    pred: &pctl_deposet::DisjunctivePredicate,
) -> Option<Vec<Interval>> {
    let intervals = FalseIntervals::extract(dep, pred);
    find_overlap(dep, &intervals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_deposet::{DeposetBuilder, DisjunctivePredicate};

    /// Brute-force overlap search (ground truth).
    fn brute(dep: &Deposet, intervals: &FalseIntervals) -> bool {
        let per: Vec<&[Interval]> = dep.processes().map(|p| intervals.of(p)).collect();
        if per.iter().any(|v| v.is_empty()) {
            return false;
        }
        fn rec(dep: &Deposet, per: &[&[Interval]], chosen: &mut Vec<Interval>, k: usize) -> bool {
            if k == per.len() {
                return overlapping(dep, chosen);
            }
            for &iv in per[k] {
                chosen.push(iv);
                if rec(dep, per, chosen, k + 1) {
                    return true;
                }
                chosen.pop();
            }
            false
        }
        rec(dep, &per, &mut Vec::new(), 0)
    }

    #[test]
    fn whole_lifetime_false_overlaps() {
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[]);
        b.internal(1, &[]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "up");
        let w = definitely_all_false(&dep, &pred).expect("overlap");
        assert!(overlapping(&dep, &w));
    }

    #[test]
    fn concurrent_interior_intervals_do_not_overlap() {
        let mut b = DeposetBuilder::new(3);
        for p in 0..3 {
            b.init_vars(p, &[("up", 1)]);
            b.internal(p, &[("up", 0)]);
            b.internal(p, &[("up", 1)]);
        }
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(3, "up");
        assert_eq!(definitely_all_false(&dep, &pred), None);
    }

    #[test]
    fn agrees_with_brute_force_on_random_workloads() {
        use pctl_deposet::generator::{pipelined_workload, random_deposet, CsConfig, RandomConfig};
        for seed in 0..25 {
            let dep = pipelined_workload(
                &CsConfig {
                    processes: 3,
                    sections_per_process: 3,
                    ..CsConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
            let iv = FalseIntervals::extract(&dep, &pred);
            assert_eq!(
                find_overlap(&dep, &iv).is_some(),
                brute(&dep, &iv),
                "pipelined seed {seed}"
            );
        }
        for seed in 0..25 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 20,
                    ..RandomConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            let iv = FalseIntervals::extract(&dep, &pred);
            assert_eq!(
                find_overlap(&dep, &iv).is_some(),
                brute(&dep, &iv),
                "random seed {seed}"
            );
        }
    }

    #[test]
    fn overlap_iff_no_satisfying_interleaving() {
        // Lemma 2 both ways, on small random traces, against exhaustive
        // interleaving search (the enforceable semantics).
        use pctl_deposet::generator::{random_deposet, RandomConfig};
        use pctl_deposet::sequences::find_satisfying_interleaving;
        for seed in 0..40 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 14,
                    ..RandomConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            let overlap = definitely_all_false(&dep, &pred).is_some();
            let seq = find_satisfying_interleaving(&dep, 2_000_000, |d, g| pred.eval(d, g))
                .expect("budget");
            assert_eq!(overlap, seq.is_none(), "seed {seed}: Lemma 2 violated");
        }
    }
}
