//! Reference detectors over the consistent-global-state lattice:
//! *possibly* and *definitely* for arbitrary global predicates.
//!
//! These are exponential-time oracles (the lattice can have `O(kⁿ)`
//! states); the polynomial detectors in [`crate::conjunctive`] and
//! [`crate::strong`] are validated against them. `definitely(φ)` is
//! computed by the dual search: φ is *definite* iff no global sequence
//! avoids φ everywhere, i.e. iff there is no `¬φ`-satisfying sequence.

use pctl_deposet::lattice::{self, LatticeBudgetExceeded};
use pctl_deposet::sequences::find_satisfying_sequence;
use pctl_deposet::{Deposet, GlobalPredicate, GlobalState};

/// Some consistent global state satisfies `pred` (returns a witness).
pub fn possibly(
    dep: &Deposet,
    pred: &GlobalPredicate,
    limit: usize,
) -> Result<Option<GlobalState>, LatticeBudgetExceeded> {
    lattice::possibly(dep, limit, |d, g| pred.eval(d, g))
}

/// Every global sequence (subset steps allowed — the paper's semantics)
/// passes through a `pred`-state.
pub fn definitely(
    dep: &Deposet,
    pred: &GlobalPredicate,
    limit: usize,
) -> Result<bool, LatticeBudgetExceeded> {
    let avoiding = find_satisfying_sequence(dep, limit, |d, g| !pred.eval(d, g))?;
    Ok(avoiding.is_none())
}

/// Every *interleaved* execution passes through a `pred`-state — the
/// enforceable-semantics counterpart of [`definitely`], matching the
/// interval-overlap detector in [`crate::strong`].
pub fn definitely_interleaving(
    dep: &Deposet,
    pred: &GlobalPredicate,
    limit: usize,
) -> Result<bool, LatticeBudgetExceeded> {
    let avoiding =
        pctl_deposet::sequences::find_satisfying_interleaving(dep, limit, |d, g| !pred.eval(d, g))?;
    Ok(avoiding.is_none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_deposet::{DeposetBuilder, DisjunctivePredicate, LocalPredicate};

    fn two_cs() -> Deposet {
        let mut b = DeposetBuilder::new(2);
        for p in 0..2 {
            b.init_vars(p, &[("cs", 0)]);
            b.internal(p, &[("cs", 1)]);
            b.internal(p, &[("cs", 0)]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn possibly_but_not_definitely() {
        let dep = two_cs();
        // "both in CS" is possible (cut ⟨1,1⟩) but avoidable.
        let both = GlobalPredicate::And(vec![
            GlobalPredicate::local(0usize, LocalPredicate::var("cs")),
            GlobalPredicate::local(1usize, LocalPredicate::var("cs")),
        ]);
        assert!(possibly(&dep, &both, 100_000).unwrap().is_some());
        assert!(!definitely(&dep, &both, 100_000).unwrap());
    }

    #[test]
    fn definitely_when_unavoidable() {
        // Single process passing through a bad state: unavoidable.
        let mut b = DeposetBuilder::new(1);
        b.internal(0, &[("bad", 1)]);
        b.internal(0, &[("bad", 0)]);
        let dep = b.finish().unwrap();
        let bad = GlobalPredicate::local(0usize, LocalPredicate::var("bad"));
        assert!(definitely(&dep, &bad, 100_000).unwrap());
        assert!(possibly(&dep, &bad, 100_000).unwrap().is_some());
    }

    #[test]
    fn impossible_predicate() {
        let dep = two_cs();
        let never = GlobalPredicate::local(0usize, LocalPredicate::var("nonexistent"));
        assert_eq!(possibly(&dep, &never, 100_000).unwrap(), None);
        assert!(!definitely(&dep, &never, 100_000).unwrap());
    }

    #[test]
    fn definitely_interleaving_matches_strong_detection() {
        use crate::strong::definitely_all_false;
        use pctl_deposet::generator::{random_deposet, RandomConfig};
        for seed in 0..15 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 12,
                    ..RandomConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            let all_false = GlobalPredicate::Not(Box::new(pred.to_global()));
            let reference = definitely_interleaving(&dep, &all_false, 2_000_000).unwrap();
            let fast = definitely_all_false(&dep, &pred).is_some();
            assert_eq!(reference, fast, "seed {seed}");
            // The subset-step notion is weaker or equal: definitely ⇒
            // definitely_interleaving.
            if definitely(&dep, &all_false, 2_000_000).unwrap() {
                assert!(fast, "seed {seed}: subset-definitely without overlap");
            }
        }
    }
}
