//! Global-predicate detection substrate for the active-debugging cycle.
//!
//! The paper's debugging loop (Section 7) interleaves *detection* — find a
//! bad consistent global state in a traced computation — with *control* —
//! replay under added causality so the bad state cannot recur. This crate
//! supplies the detection half:
//!
//! * [`conjunctive`] — weak conjunctive detection (Garg–Waldecker,
//!   reference \[4]): `possibly(∧ lᵢ)` in polynomial time, which doubles as
//!   the disjunctive-violation detector used before invoking control;
//! * [`strong`] — definitely-detection via overlapping interval sets
//!   (Lemma 2): decides infeasibility of disjunctive predicates;
//! * [`lattice_check`] — exponential reference oracles (*possibly* /
//!   *definitely* for arbitrary predicates) used to validate the fast
//!   detectors;
//! * [`online_checker`] — the *on-line* formulation: runtime vector clocks
//!   plus a checker process running the elimination incrementally, for
//!   detecting bugs in computations as they run (the paper's on-line
//!   debugging scenario);
//! * [`snapshot`] — Chandy–Lamport snapshots (reference \[3]) on the
//!   simulator, with per-run consistency proofs against the trace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conjunctive;
pub mod lattice_check;
pub mod online_checker;
pub mod snapshot;
pub mod strong;

pub use conjunctive::{detect_disjunctive_violation, possibly_conjunction, possibly_from_queues};
pub use lattice_check::{definitely, definitely_interleaving, possibly};
pub use online_checker::{run_online_detection, CheckerState};
pub use strong::{definitely_all_false, find_overlap, overlapping};
