//! Weak conjunctive predicate detection (Garg & Waldecker — the paper's
//! reference \[4], used by its Section 7 debugging cycle).
//!
//! *Possibly(∧ᵢ lᵢ)*: does some consistent global state satisfy every local
//! conjunct? The classic queue-based algorithm keeps one candidate state
//! per process (the earliest not-yet-eliminated state satisfying its
//! conjunct) and repeatedly eliminates any candidate that causally precedes
//! another: if `cand[i] → cand[j]`, then `cand[i]` also precedes every
//! later candidate of `j` (same process, later states), and since a
//! solution's `j`-component can only be `cand[j]` or later, `cand[i]` can
//! never appear in a solution — advance `i`. When no elimination applies
//! the candidates are pairwise concurrent: the *earliest* satisfying
//! consistent cut. Complexity O(n²·m) for m candidate states, versus the
//! exponential lattice walk.

use pctl_causality::{ProcessId, StateId};
use pctl_deposet::{CausalStore, Deposet, GlobalState, LocalPredicate};

/// Find the earliest consistent global state where every `locals[i]` holds
/// on process `i`, or `None`.
pub fn possibly_conjunction(dep: &Deposet, locals: &[LocalPredicate]) -> Option<GlobalState> {
    assert_eq!(locals.len(), dep.process_count());
    // Candidate queues: indices of satisfying states per process.
    let queues: Vec<Vec<u32>> = dep
        .processes()
        .map(|p| {
            dep.states_of(p)
                .iter()
                .enumerate()
                .filter(|(_, s)| locals[p.index()].eval(s))
                .map(|(k, _)| k as u32)
                .collect()
        })
        .collect();
    possibly_from_queues(dep, &queues)
}

/// The queue-based elimination core, over *precomputed* candidate queues:
/// `queues[i]` lists (in increasing order) the state indices of process `i`
/// that satisfy its conjunct. Callers that already hold per-state truth
/// columns (the engine layer's verification sweep) feed them here directly,
/// paying predicate evaluation once instead of once per detector call.
///
/// Generic over any [`CausalStore`]: the elimination loop only needs
/// `precedes`, so the same monomorphised code serves the batch engine and
/// the streaming daemon's growing per-session stores.
pub fn possibly_from_queues<C: CausalStore + ?Sized>(
    dep: &C,
    queues: &[Vec<u32>],
) -> Option<GlobalState> {
    assert_eq!(queues.len(), dep.process_count());
    let n = queues.len();
    let mut head = vec![0usize; n];
    if queues.iter().any(Vec::is_empty) {
        return None;
    }
    let cand = |head: &[usize], i: usize| -> StateId {
        StateId::new(ProcessId(i as u32), queues[i][head[i]])
    };
    loop {
        // Find an eliminable candidate.
        let mut advanced = false;
        'scan: for i in 0..n {
            for j in 0..n {
                if i != j && dep.precedes(cand(&head, i), cand(&head, j)) {
                    head[i] += 1;
                    if head[i] == queues[i].len() {
                        return None;
                    }
                    advanced = true;
                    break 'scan;
                }
            }
        }
        if !advanced {
            // Pairwise non-precedence of the members is exactly cut
            // consistency (V(G[j])[i] ≤ cut[i] ⟺ ¬(G[i] → G[j])).
            debug_assert!((0..n).all(|i| {
                (0..n).all(|j| i == j || !dep.precedes(cand(&head, i), cand(&head, j)))
            }));
            return Some(GlobalState::from_indices(
                (0..n).map(|i| queues[i][head[i]]).collect(),
            ));
        }
    }
}

/// Detect a *violation* of a disjunctive predicate `B = ∨ᵢ lᵢ`: a
/// consistent global state where every `lᵢ` is false (i.e.
/// possibly(∧ᵢ ¬lᵢ)). This is the detector a debugging session runs before
/// reaching for predicate control.
pub fn detect_disjunctive_violation(
    dep: &Deposet,
    pred: &pctl_deposet::DisjunctivePredicate,
) -> Option<GlobalState> {
    let negated: Vec<LocalPredicate> = pred.locals().iter().map(|l| l.clone().negated()).collect();
    possibly_conjunction(dep, &negated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_deposet::lattice::find_all_consistent;
    use pctl_deposet::{DeposetBuilder, DisjunctivePredicate};

    #[test]
    fn finds_earliest_satisfying_cut() {
        // Both processes set flag twice; earliest joint cut is ⟨1,1⟩.
        let mut b = DeposetBuilder::new(2);
        for p in 0..2 {
            b.internal(p, &[("flag", 1)]);
            b.internal(p, &[("flag", 0)]);
            b.internal(p, &[("flag", 1)]);
        }
        let dep = b.finish().unwrap();
        let locals = vec![LocalPredicate::var("flag"), LocalPredicate::var("flag")];
        let g = possibly_conjunction(&dep, &locals).unwrap();
        assert_eq!(g, GlobalState::from_indices(vec![1, 1]));
    }

    #[test]
    fn causality_forces_later_candidates() {
        // P0's flag state precedes P1's only flag state: they can't be cut
        // together unless concurrent. P0 flag at state 1 → (msg) P1 flag at
        // state 1: must advance P0 to its second flag state.
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[("flag", 1)]);
        let t = b.send_with(0, "m", &[("flag", 0)]);
        b.recv(1, t, &[("flag", 1)]);
        b.internal(0, &[("flag", 1)]); // state 3 on P0, concurrent with P1's
        let dep = b.finish().unwrap();
        let locals = vec![LocalPredicate::var("flag"), LocalPredicate::var("flag")];
        let g = possibly_conjunction(&dep, &locals).unwrap();
        assert!(g.is_consistent(&dep));
        assert_eq!(g.index_of(ProcessId(1)), 1);
        assert_eq!(
            g.index_of(ProcessId(0)),
            3,
            "P0's first flag state is eliminated"
        );
    }

    #[test]
    fn unsatisfiable_conjunction_returns_none() {
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[("flag", 1)]);
        b.internal(1, &[]);
        let dep = b.finish().unwrap();
        // P1 never sets flag.
        let locals = vec![LocalPredicate::var("flag"), LocalPredicate::var("flag")];
        assert_eq!(possibly_conjunction(&dep, &locals), None);
        // And a chain where every candidate is eliminated:
        let mut b2 = DeposetBuilder::new(2);
        b2.internal(0, &[("flag", 1)]);
        let t = b2.send_with(0, "m", &[("flag", 0)]);
        b2.recv(1, t, &[("flag", 1)]);
        let dep2 = b2.finish().unwrap();
        // P0's flag precedes P1's flag and has no later candidate.
        assert_eq!(possibly_conjunction(&dep2, &locals), None);
    }

    #[test]
    fn agrees_with_lattice_reference_on_random_traces() {
        use pctl_deposet::generator::{random_deposet, RandomConfig};
        for seed in 0..40 {
            let cfg = RandomConfig {
                processes: 3,
                events: 18,
                ..RandomConfig::default()
            };
            let dep = random_deposet(&cfg, seed);
            let locals = vec![
                LocalPredicate::var("ok"),
                LocalPredicate::not_var("ok"),
                LocalPredicate::var("ok"),
            ];
            let fast = possibly_conjunction(&dep, &locals);
            let reference = find_all_consistent(&dep, 100_000, |d, g| {
                (0..3).all(|i| locals[i].eval(d.state(g.state_of(ProcessId(i as u32)))))
            })
            .unwrap();
            assert_eq!(
                fast.is_some(),
                !reference.is_empty(),
                "seed {seed}: GW and lattice disagree"
            );
            if let Some(g) = fast {
                assert!(reference.contains(&g));
                // GW returns the minimum satisfying cut.
                for r in &reference {
                    assert!(g.meet(r) == g || !g.leq(r) || g == *r);
                    assert!(g.leq(&g.join(r)));
                }
                let min = reference
                    .iter()
                    .fold(reference[0].clone(), |a, b| a.meet(b));
                assert_eq!(g, min, "GW finds the infimum of satisfying cuts");
            }
        }
    }

    #[test]
    fn violation_detection_is_negated_conjunction() {
        // Two servers both unavailable at overlapping times.
        let mut b = DeposetBuilder::new(2);
        for p in 0..2 {
            b.init_vars(p, &[("avail", 1)]);
            b.internal(p, &[("avail", 0)]);
            b.internal(p, &[("avail", 1)]);
        }
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "avail");
        let g = detect_disjunctive_violation(&dep, &pred).unwrap();
        assert_eq!(g, GlobalState::from_indices(vec![1, 1]));
        assert!(!pred.eval(&dep, &g));
    }
}
