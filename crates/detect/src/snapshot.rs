//! Chandy–Lamport distributed snapshots (the paper's reference \[3]) on the
//! simulator.
//!
//! The seminal detection substrate: an initiator records its local state
//! and floods `Marker`s; every process records its state on first marker,
//! then records each incoming channel until that channel's marker arrives.
//! The recorded (states, channel contents) form a consistent global state
//! of the underlying computation — which we *prove per run* by checking the
//! recorded cut against the traced deposet's vector clocks.
//!
//! Requires FIFO channels: run with [`DelayModel::Fixed`], under which the
//! simulator delivers same-channel messages in send order.
//!
//! The demo application is token conservation: processes pass around `T`
//! tokens; a correct snapshot must account for exactly `T` tokens across
//! recorded states and recorded channels (the classic stable-property
//! check).

use pctl_deposet::{Deposet, GlobalState, ProcessId, StateId};
use pctl_sim::{Ctx, DelayModel, Payload, Process, SimConfig, Simulation, TimerId};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Messages of the token + snapshot protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenMsg {
    /// Application payload: a bag of tokens.
    Tokens(u64),
    /// Chandy–Lamport marker.
    Marker,
}

impl Payload for TokenMsg {
    fn tag(&self) -> &'static str {
        match self {
            TokenMsg::Tokens(_) => "tokens",
            TokenMsg::Marker => "marker",
        }
    }
    fn is_control(&self) -> bool {
        matches!(self, TokenMsg::Marker)
    }
}

/// Per-process recorded snapshot data.
#[derive(Clone, Debug, Default)]
pub struct Recorded {
    /// Recorded local token count.
    pub tokens: Option<u64>,
    /// Trace state at which the local state was recorded.
    pub at: Option<StateId>,
    /// Tokens recorded in transit on each incoming channel (by source).
    pub channels: BTreeMap<u32, u64>,
}

struct TokenProcess {
    n: usize,
    tokens: u64,
    sends_left: u32,
    recorded: Option<Recorded>,
    markers_pending: usize,
    recording_from: Vec<bool>,
    initiate_at: Option<u64>,
    done_reported: bool,
    /// Shared cell the recording is mirrored into (results escape the
    /// simulator through here).
    slot: Rc<RefCell<Recorded>>,
}

impl TokenProcess {
    /// Record the local state. When triggered by a marker receipt the
    /// recorded state is the one *before* the marker's receive event — the
    /// post-receive state already causally depends on the initiator, which
    /// would make the recorded cut inconsistent.
    fn record_now(&mut self, ctx: &mut Ctx<'_, TokenMsg>, on_marker: bool) {
        let at = if on_marker {
            ctx.current_state()
                .predecessor()
                .expect("receive events have predecessors")
        } else {
            ctx.current_state()
        };
        let rec = Recorded {
            tokens: Some(self.tokens),
            at: Some(at),
            channels: BTreeMap::new(),
        };
        self.recorded = Some(rec);
        self.markers_pending = self.n - 1;
        self.recording_from = vec![true; self.n];
        self.recording_from[ctx.me().index()] = false;
        for q in 0..self.n {
            if q != ctx.me().index() {
                ctx.send(ProcessId(q as u32), TokenMsg::Marker);
            }
        }
        ctx.count("snapshots_started", 1);
        self.sync();
    }

    fn sync(&self) {
        if let Some(rec) = &self.recorded {
            *self.slot.borrow_mut() = rec.clone();
        }
    }

    fn markers_done(&self) -> bool {
        self.recorded.is_none() || self.markers_pending == 0
    }

    fn maybe_finish(&mut self, ctx: &mut Ctx<'_, TokenMsg>) {
        if !self.done_reported && self.sends_left == 0 && self.markers_done() {
            self.done_reported = true;
            ctx.set_done();
        }
    }
}

impl Process<TokenMsg> for TokenProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, TokenMsg>) {
        ctx.init_var("tokens", self.tokens as i64);
        if let Some(t) = self.initiate_at {
            ctx.set_timer(t);
        }
        if self.sends_left > 0 {
            ctx.set_timer(7 + ctx.me().index() as u64 * 3);
        } else {
            self.maybe_finish(ctx);
        }
    }

    fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, TokenMsg>) {
        // Either the initiation timer or a send timer; the initiation timer
        // is the one that fires while initiation is still pending.
        if self.initiate_at.is_some() && self.recorded.is_none() {
            self.initiate_at = None;
            self.record_now(ctx, false);
            self.maybe_finish(ctx);
            return;
        }
        if self.sends_left > 0 && self.tokens > 0 && self.n > 1 {
            let give = (1 + ctx.rand_below(self.tokens)).min(self.tokens);
            self.tokens -= give;
            ctx.step(&[("tokens", self.tokens as i64)]);
            let mut q = ctx.rand_below(self.n as u64 - 1) as usize;
            if q >= ctx.me().index() {
                q += 1;
            }
            ctx.send(ProcessId(q as u32), TokenMsg::Tokens(give));
            self.sends_left -= 1;
            if self.sends_left > 0 {
                let jitter = ctx.rand_below(10);
                ctx.set_timer(5 + jitter);
            }
        } else if self.sends_left > 0 {
            // Broke: skip this turn (other processes may all be done, so
            // waiting could never terminate).
            self.sends_left -= 1;
            if self.sends_left > 0 {
                ctx.set_timer(5);
            }
        }
        self.maybe_finish(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: TokenMsg, ctx: &mut Ctx<'_, TokenMsg>) {
        match msg {
            TokenMsg::Tokens(k) => {
                self.tokens += k;
                ctx.step(&[("tokens", self.tokens as i64)]);
                if self.recorded.is_some() && self.recording_from[from.index()] {
                    if let Some(rec) = &mut self.recorded {
                        *rec.channels.entry(from.0).or_insert(0) += k;
                    }
                    self.sync();
                }
            }
            TokenMsg::Marker => {
                if self.recorded.is_none() {
                    self.record_now(ctx, true);
                }
                if self.recording_from[from.index()] {
                    self.recording_from[from.index()] = false;
                    self.markers_pending -= 1;
                }
            }
        }
        self.maybe_finish(ctx);
    }
}

/// Result of a snapshot run.
pub struct SnapshotRun {
    /// The traced computation.
    pub deposet: Deposet,
    /// Per-process recordings.
    pub recorded: Vec<Recorded>,
    /// Total tokens in the system (conserved invariant).
    pub total_tokens: u64,
    /// Whether all processes completed their scripts and markers.
    pub completed: bool,
}

impl SnapshotRun {
    /// Tokens accounted for by the snapshot: recorded states + recorded
    /// channel contents. Must equal [`Self::total_tokens`].
    pub fn snapshot_token_count(&self) -> u64 {
        self.recorded
            .iter()
            .map(|r| r.tokens.unwrap_or(0) + r.channels.values().sum::<u64>())
            .sum()
    }

    /// The recorded cut as a global state of the traced deposet.
    pub fn recorded_cut(&self) -> Option<GlobalState> {
        let idx: Option<Vec<u32>> = self
            .recorded
            .iter()
            .map(|r| r.at.map(|s| s.index))
            .collect();
        idx.map(GlobalState::from_indices)
    }
}

/// Run the token-passing application with a Chandy–Lamport snapshot
/// initiated by `P0` at simulated time `initiate_at`.
pub fn run_snapshot(
    n: usize,
    tokens_per_process: u64,
    sends_per_process: u32,
    initiate_at: u64,
    seed: u64,
) -> SnapshotRun {
    assert!(n >= 2);
    // FIFO channels required by Chandy–Lamport: fixed delay.
    let config = SimConfig {
        seed,
        delay: DelayModel::Fixed(6),
        ..SimConfig::default()
    };
    let slots: Vec<Rc<RefCell<Recorded>>> = (0..n)
        .map(|_| Rc::new(RefCell::new(Recorded::default())))
        .collect();
    let procs: Vec<Box<dyn Process<TokenMsg>>> = (0..n)
        .map(|i| {
            Box::new(TokenProcess {
                n,
                tokens: tokens_per_process,
                sends_left: sends_per_process,
                recorded: None,
                markers_pending: 0,
                recording_from: vec![],
                initiate_at: (i == 0).then_some(initiate_at),
                done_reported: false,
                slot: Rc::clone(&slots[i]),
            }) as Box<dyn Process<TokenMsg>>
        })
        .collect();
    let sim = Simulation::new(config, procs).run();
    let completed = !sim.deadlocked() && sim.done.iter().all(|&d| d);
    SnapshotRun {
        completed,
        deposet: sim.deposet,
        recorded: slots.iter().map(|s| s.borrow().clone()).collect(),
        total_tokens: tokens_per_process * n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_conserves_tokens() {
        for seed in 0..10 {
            let run = run_snapshot(4, 5, 6, 25, seed);
            assert!(run.completed, "seed {seed}: run did not complete");
            assert_eq!(
                run.snapshot_token_count(),
                run.total_tokens,
                "seed {seed}: snapshot lost or duplicated tokens"
            );
        }
    }

    #[test]
    fn recorded_cut_is_consistent_in_the_trace() {
        for seed in 0..10 {
            let run = run_snapshot(3, 4, 5, 20, seed);
            assert!(run.completed);
            let cut = run.recorded_cut().expect("all processes recorded");
            assert!(
                cut.is_consistent(&run.deposet),
                "seed {seed}: Chandy–Lamport cut {cut:?} is inconsistent"
            );
            // The recorded token counts match the trace variables at the cut.
            for p in run.deposet.processes() {
                let traced = run.deposet.state(cut.state_of(p)).vars.get("tokens");
                assert_eq!(
                    traced,
                    run.recorded[p.index()].tokens.map(|t| t as i64),
                    "seed {seed}: recorded state disagrees with trace"
                );
            }
        }
    }

    #[test]
    fn early_snapshot_sees_initial_tokens() {
        // Initiated at time 0 before any transfer completes: channel
        // recordings may still catch in-flight tokens; conservation holds.
        let run = run_snapshot(2, 3, 4, 0, 1);
        assert!(run.completed);
        assert_eq!(run.snapshot_token_count(), run.total_tokens);
    }
}
