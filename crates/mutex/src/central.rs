//! Centralized-coordinator k-mutual exclusion (baseline).
//!
//! A dedicated coordinator process grants up to `k` concurrent critical
//! sections; excess requests queue FIFO. Cost: 2 messages per entry
//! (request + grant) plus 1 release — the classic 3-messages-per-entry
//! centralized scheme, with the coordinator as a bottleneck and single
//! point of failure. Contrast with the anti-token's 2 messages per
//! *handover* (Section 6 of the paper).

use crate::driver::{Driver, Phase, WorkloadConfig};
use pctl_deposet::ProcessId;
use pctl_sim::{Ctx, DelayModel, Payload, Process, SimConfig, SimResult, Simulation, TimerId};
use std::collections::VecDeque;

/// Messages of the centralized protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CentralMsg {
    /// Worker → coordinator: may I enter?
    Request,
    /// Coordinator → worker: you may.
    Grant,
    /// Worker → coordinator: I left.
    Release,
}

impl Payload for CentralMsg {
    fn tag(&self) -> &'static str {
        match self {
            CentralMsg::Request => "request",
            CentralMsg::Grant => "grant",
            CentralMsg::Release => "release",
        }
    }
    fn is_control(&self) -> bool {
        true
    }
}

/// A worker under the shared driver.
struct Worker {
    driver: Driver,
    coordinator: ProcessId,
}

impl Process<CentralMsg> for Worker {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CentralMsg>) {
        ctx.init_var("cs", 0);
        self.driver.start_thinking(ctx);
    }

    fn on_message(&mut self, _from: ProcessId, msg: CentralMsg, ctx: &mut Ctx<'_, CentralMsg>) {
        match msg {
            CentralMsg::Grant => self.driver.enter_cs(ctx),
            other => unreachable!("worker got {other:?}"),
        }
    }

    fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, CentralMsg>) {
        match self.driver.phase {
            Phase::Thinking => {
                self.driver.begin_request(ctx);
                ctx.send(self.coordinator, CentralMsg::Request);
            }
            Phase::InCs => {
                ctx.send(self.coordinator, CentralMsg::Release);
                self.driver.exit_cs(ctx);
            }
            other => unreachable!("timer in phase {other:?}"),
        }
    }
}

/// The coordinator: grants up to `k` concurrent sections.
struct Coordinator {
    k: usize,
    active: usize,
    queue: VecDeque<ProcessId>,
}

impl Process<CentralMsg> for Coordinator {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CentralMsg>) {
        ctx.set_done();
    }

    fn on_message(&mut self, from: ProcessId, msg: CentralMsg, ctx: &mut Ctx<'_, CentralMsg>) {
        match msg {
            CentralMsg::Request => {
                if self.active < self.k {
                    self.active += 1;
                    ctx.send(from, CentralMsg::Grant);
                } else {
                    self.queue.push_back(from);
                }
            }
            CentralMsg::Release => {
                if let Some(next) = self.queue.pop_front() {
                    ctx.send(next, CentralMsg::Grant);
                } else {
                    self.active -= 1;
                }
            }
            CentralMsg::Grant => unreachable!("coordinator got a grant"),
        }
    }
}

/// Run the centralized baseline with `k` concurrent sections allowed
/// (workers are processes `0..n`; the coordinator is process `n`).
pub fn run_central(cfg: &WorkloadConfig, k: usize) -> SimResult {
    let n = cfg.processes;
    assert!(k >= 1 && n >= 1);
    let coordinator = ProcessId(n as u32);
    let mut procs: Vec<Box<dyn Process<CentralMsg>>> = (0..n)
        .map(|_| {
            Box::new(Worker {
                driver: Driver::new(cfg),
                coordinator,
            }) as Box<dyn Process<CentralMsg>>
        })
        .collect();
    procs.push(Box::new(Coordinator {
        k,
        active: 0,
        queue: VecDeque::new(),
    }));
    let sim_cfg = SimConfig {
        seed: cfg.seed,
        delay: DelayModel::Fixed(cfg.delay),
        ..SimConfig::default()
    };
    Simulation::new(sim_cfg, procs).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::max_concurrent;

    #[test]
    fn central_respects_k() {
        for (k, seed) in [(1, 0), (2, 1), (3, 2)] {
            let cfg = WorkloadConfig {
                processes: 4,
                entries_per_process: 6,
                seed,
                think: (5, 15),
                ..WorkloadConfig::default()
            };
            let r = run_central(&cfg, k);
            assert!(!r.deadlocked(), "k={k}");
            assert_eq!(r.metrics.counter("entries"), 24);
            assert!(max_concurrent(&r.metrics, 4) <= k, "k={k} violated");
        }
    }

    #[test]
    fn message_cost_is_three_per_entry() {
        let cfg = WorkloadConfig {
            processes: 3,
            entries_per_process: 4,
            ..WorkloadConfig::default()
        };
        let r = run_central(&cfg, 2);
        let entries = r.metrics.counter("entries");
        assert_eq!(r.metrics.counter("msgs_ctrl"), 3 * entries);
    }

    #[test]
    fn response_time_lower_bound_is_round_trip() {
        let cfg = WorkloadConfig {
            processes: 2,
            delay: 10,
            ..WorkloadConfig::default()
        };
        let r = run_central(&cfg, 1);
        let s = r.metrics.summary("response").unwrap();
        assert!(s.min >= 20, "request+grant is at least 2T, got {}", s.min);
    }

    #[test]
    fn saturated_k1_serializes_everything() {
        // All workers request constantly with k = 1: entries must still all
        // complete, strictly serialized.
        let cfg = WorkloadConfig {
            processes: 5,
            entries_per_process: 3,
            think: (1, 2),
            cs: (10, 10),
            ..WorkloadConfig::default()
        };
        let r = run_central(&cfg, 1);
        assert!(!r.deadlocked());
        assert_eq!(r.metrics.counter("entries"), 15);
        assert_eq!(max_concurrent(&r.metrics, 5), 1);
    }
}
