//! Generalizing the anti-token: `m` anti-tokens give (n−m)-mutual
//! exclusion.
//!
//! The paper's Section 6 closes with the observation that its strategy
//! "uses a single anti-token which acts as a liability rather than a
//! privilege", and that for large `k` this class of algorithms is the
//! appropriate one. This module makes that concrete: `m = n − k`
//! anti-token roles circulate; a process holding a role must stay out of
//! the critical section until another process takes it over (same
//! req/ack handover as Figure 3, per role).
//!
//! Three rules keep the generalization sound and live:
//!
//! * **Distinctness** — a controller only accepts a role while true,
//!   unblocked and role-free, so the `m` roles always sit on `m` distinct
//!   processes, each pinned outside the CS: at most `n − m` processes can
//!   be inside simultaneously.
//! * **Busy-bounce** — with several roles in play, two blocked holders
//!   could request *each other* and wait forever (the single-token
//!   conservation argument `#roles = 1 + #acks-in-flight` no longer
//!   applies). A holder or blocked controller therefore answers `Busy`
//!   and the requester retries another peer. Only predicate-false
//!   (in-CS) processes defer — they recover by A1 and then answer.
//! * **Termination of retries** — a non-holder is never blocked (only
//!   holders block on handovers), so a non-holder always accepts or
//!   defers; since `m < n` there is always at least one, and round-robin
//!   retrying reaches it.
//!
//! As with the single anti-token, only the holders' own CS entries pay
//! messages — everyone else enters free.

use crate::driver::{Driver, Phase, WorkloadConfig};
use pctl_core::online::CtrlMsg;
use pctl_deposet::ProcessId;
use pctl_sim::{Ctx, DelayModel, Process, SimConfig, SimResult, Simulation, TimerId};
use std::collections::VecDeque;

/// Effects requested by [`MultiAntiToken`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Send a control message.
    Send {
        /// Destination controller.
        to: ProcessId,
        /// The message.
        msg: CtrlMsg,
    },
    /// The blocked CS entry may proceed.
    Grant,
    /// The contacted peer was busy: re-issue the request to another peer.
    Retry,
}

/// Sans-I/O controller state for the m-anti-token protocol (one per
/// process; a controller holds at most one role at a time).
#[derive(Clone, Debug)]
pub struct MultiAntiToken {
    me: ProcessId,
    holds_role: bool,
    waiting_ack: bool,
    local_true: bool,
    pending: VecDeque<ProcessId>,
}

impl MultiAntiToken {
    /// A controller, initially holding a role or not.
    pub fn new(me: ProcessId, holds_role: bool) -> Self {
        MultiAntiToken {
            me,
            holds_role,
            waiting_ack: false,
            local_true: true,
            pending: VecDeque::new(),
        }
    }

    /// Whether this controller currently holds an anti-token role.
    pub fn holds_role(&self) -> bool {
        self.holds_role
    }

    /// Whether the process is blocked awaiting a handover ack.
    pub fn is_blocked(&self) -> bool {
        self.waiting_ack
    }

    /// The process wants to enter its critical section. Returns the
    /// request to send (the caller picks `peer`), or `None` when entry is
    /// granted immediately (role-free processes enter for free).
    pub fn request_enter(&mut self, peer: Option<ProcessId>) -> Option<Action> {
        assert!(self.local_true, "already in the critical section");
        assert!(!self.waiting_ack, "already blocked");
        if !self.holds_role {
            self.local_true = false;
            return None;
        }
        let peer = peer.expect("holder needs a peer to hand its role to");
        assert_ne!(peer, self.me);
        self.waiting_ack = true;
        Some(Action::Send {
            to: peer,
            msg: CtrlMsg::Req { from: self.me },
        })
    }

    fn can_accept(&self) -> bool {
        self.local_true && !self.waiting_ack && !self.holds_role
    }

    /// A control message arrived.
    pub fn on_message(&mut self, msg: CtrlMsg) -> Vec<Action> {
        match msg {
            CtrlMsg::Req { from } => {
                if self.can_accept() {
                    self.holds_role = true;
                    vec![Action::Send {
                        to: from,
                        msg: CtrlMsg::Ack,
                    }]
                } else if !self.local_true {
                    // In the CS: will recover (A1) and answer then.
                    self.pending.push_back(from);
                    vec![]
                } else {
                    // Holder or blocked: bounce so the requester retries a
                    // different peer (prevents holder↔holder deadlock).
                    vec![Action::Send {
                        to: from,
                        msg: CtrlMsg::Busy,
                    }]
                }
            }
            CtrlMsg::Ack => {
                assert!(self.waiting_ack, "unexpected ack");
                self.waiting_ack = false;
                self.holds_role = false;
                self.local_true = false;
                vec![Action::Grant]
            }
            CtrlMsg::Busy => {
                assert!(self.waiting_ack, "unexpected busy");
                self.waiting_ack = false;
                vec![Action::Retry]
            }
        }
    }

    /// The process left its critical section: accept at most one deferred
    /// request (accepting makes this controller a holder, which bounces
    /// the rest).
    pub fn notify_exit(&mut self) -> Vec<Action> {
        self.local_true = true;
        let mut actions = Vec::new();
        if self.can_accept() {
            if let Some(j) = self.pending.pop_front() {
                self.holds_role = true;
                actions.push(Action::Send {
                    to: j,
                    msg: CtrlMsg::Ack,
                });
            }
        }
        // Bounce everyone else; they retry other peers.
        while let Some(j) = self.pending.pop_front() {
            actions.push(Action::Send {
                to: j,
                msg: CtrlMsg::Busy,
            });
        }
        actions
    }
}

/// Worker process: the shared driver + an m-anti-token controller.
pub struct MultiAntiTokenProcess {
    driver: Driver,
    ctrl: MultiAntiToken,
    n: usize,
    /// Round-robin retry pointer over peers.
    next_peer: usize,
}

impl MultiAntiTokenProcess {
    fn next_peer(&mut self) -> ProcessId {
        let me = self.ctrl.me.index();
        loop {
            self.next_peer = (self.next_peer + 1) % self.n;
            if self.next_peer != me {
                return ProcessId(self.next_peer as u32);
            }
        }
    }

    fn apply(&mut self, actions: Vec<Action>, ctx: &mut Ctx<'_, CtrlMsg>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => ctx.send(to, msg),
                Action::Grant => self.driver.enter_cs(ctx),
                Action::Retry => {
                    let peer = self.next_peer();
                    ctx.count("handover_retries", 1);
                    if let Some(req) = self.ctrl.request_enter(Some(peer)) {
                        self.apply(vec![req], ctx);
                    } else {
                        unreachable!("a retrying controller still holds its role");
                    }
                }
            }
        }
    }
}

impl Process<CtrlMsg> for MultiAntiTokenProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CtrlMsg>) {
        ctx.init_var("cs", 0);
        self.driver.start_thinking(ctx);
    }

    fn on_message(&mut self, _from: ProcessId, msg: CtrlMsg, ctx: &mut Ctx<'_, CtrlMsg>) {
        let actions = self.ctrl.on_message(msg);
        self.apply(actions, ctx);
    }

    fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, CtrlMsg>) {
        match self.driver.phase {
            Phase::Thinking => {
                self.driver.begin_request(ctx);
                let peer = self.ctrl.holds_role().then(|| self.next_peer());
                match self.ctrl.request_enter(peer) {
                    None => self.driver.enter_cs(ctx),
                    Some(req) => self.apply(vec![req], ctx),
                }
            }
            Phase::InCs => {
                // Trace ordering matters: record cs := 0 before any ack.
                self.driver.exit_cs(ctx);
                let actions = self.ctrl.notify_exit();
                self.apply(actions, ctx);
            }
            other => unreachable!("timer in phase {other:?}"),
        }
    }
}

/// Run the m-anti-token workload enforcing `k = n − m` mutual exclusion;
/// roles start on processes `0..m`.
pub fn run_multi_antitoken(cfg: &WorkloadConfig, m: usize) -> SimResult {
    let n = cfg.processes;
    assert!(m >= 1 && m < n, "need 1 ≤ m < n");
    let procs: Vec<Box<dyn Process<CtrlMsg>>> = (0..n)
        .map(|i| {
            Box::new(MultiAntiTokenProcess {
                driver: Driver::new(cfg),
                ctrl: MultiAntiToken::new(ProcessId(i as u32), i < m),
                n,
                next_peer: i,
            }) as Box<dyn Process<CtrlMsg>>
        })
        .collect();
    let sim_cfg = SimConfig {
        seed: cfg.seed,
        delay: DelayModel::Fixed(cfg.delay),
        ..SimConfig::default()
    };
    Simulation::new(sim_cfg, procs).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::max_concurrent;
    use pctl_deposet::lattice::consistent_global_states;

    #[test]
    fn controller_handover() {
        let mut holder = MultiAntiToken::new(ProcessId(0), true);
        let mut peer = MultiAntiToken::new(ProcessId(1), false);
        let req = holder
            .request_enter(Some(ProcessId(1)))
            .expect("holder blocks");
        assert_eq!(
            req,
            Action::Send {
                to: ProcessId(1),
                msg: CtrlMsg::Req { from: ProcessId(0) }
            }
        );
        let ack = peer.on_message(CtrlMsg::Req { from: ProcessId(0) });
        assert!(peer.holds_role());
        assert_eq!(
            ack,
            vec![Action::Send {
                to: ProcessId(0),
                msg: CtrlMsg::Ack
            }]
        );
        assert_eq!(holder.on_message(CtrlMsg::Ack), vec![Action::Grant]);
        assert!(!holder.holds_role());
    }

    #[test]
    fn holders_bounce_instead_of_deadlocking() {
        // Two blocked holders requesting each other both get Busy and are
        // told to retry — the m ≥ 2 deadlock scenario.
        let mut a = MultiAntiToken::new(ProcessId(0), true);
        let mut b = MultiAntiToken::new(ProcessId(1), true);
        let _ = a.request_enter(Some(ProcessId(1)));
        let _ = b.request_enter(Some(ProcessId(0)));
        let ra = a.on_message(CtrlMsg::Req { from: ProcessId(1) });
        let rb = b.on_message(CtrlMsg::Req { from: ProcessId(0) });
        assert_eq!(
            ra,
            vec![Action::Send {
                to: ProcessId(1),
                msg: CtrlMsg::Busy
            }]
        );
        assert_eq!(
            rb,
            vec![Action::Send {
                to: ProcessId(0),
                msg: CtrlMsg::Busy
            }]
        );
        assert_eq!(a.on_message(CtrlMsg::Busy), vec![Action::Retry]);
        assert!(
            !a.is_blocked(),
            "retry clears the wait so a new peer can be asked"
        );
    }

    #[test]
    fn in_cs_processes_defer_and_answer_on_exit() {
        let mut c = MultiAntiToken::new(ProcessId(1), false);
        assert!(c.request_enter(None).is_none()); // enters CS free
        assert!(c.on_message(CtrlMsg::Req { from: ProcessId(0) }).is_empty());
        let actions = c.notify_exit();
        assert_eq!(
            actions,
            vec![Action::Send {
                to: ProcessId(0),
                msg: CtrlMsg::Ack
            }]
        );
        assert!(c.holds_role());
    }

    #[test]
    fn extra_pending_requests_are_bounced_on_exit() {
        let mut c = MultiAntiToken::new(ProcessId(2), false);
        assert!(c.request_enter(None).is_none());
        let _ = c.on_message(CtrlMsg::Req { from: ProcessId(0) });
        let _ = c.on_message(CtrlMsg::Req { from: ProcessId(1) });
        let actions = c.notify_exit();
        assert_eq!(
            actions,
            vec![
                Action::Send {
                    to: ProcessId(0),
                    msg: CtrlMsg::Ack
                },
                Action::Send {
                    to: ProcessId(1),
                    msg: CtrlMsg::Busy
                },
            ]
        );
    }

    #[test]
    fn k_mutex_holds_for_various_m() {
        for (n, m) in [(4usize, 1usize), (4, 2), (5, 2), (6, 3), (6, 5)] {
            for seed in 0..4u64 {
                let cfg = WorkloadConfig {
                    processes: n,
                    entries_per_process: 6,
                    think: (15, 50),
                    cs: (5, 12),
                    seed,
                    delay: 8,
                };
                let r = run_multi_antitoken(&cfg, m);
                assert!(!r.deadlocked(), "n={n} m={m} seed={seed}");
                assert_eq!(r.metrics.counter("entries"), (n * 6) as u64);
                let k = n - m;
                assert!(
                    max_concurrent(&r.metrics, n) <= k,
                    "n={n} m={m} seed={seed}: more than k={k} in CS"
                );
            }
        }
    }

    #[test]
    fn consistent_cut_safety_small_system() {
        // Exhaustive: no consistent cut of the traced computation has more
        // than k processes in their critical sections.
        let cfg = WorkloadConfig {
            processes: 3,
            entries_per_process: 2,
            think: (10, 30),
            cs: (5, 10),
            seed: 2,
            delay: 6,
        };
        let r = run_multi_antitoken(&cfg, 2); // k = 1: full mutual exclusion
        assert!(!r.deadlocked());
        for g in consistent_global_states(&r.deposet, 3_000_000).unwrap() {
            let in_cs = g
                .states()
                .filter(|&s| r.deposet.state(s).vars.get_bool("cs"))
                .count();
            assert!(in_cs <= 1, "cut {g:?} has {in_cs} processes in CS");
        }
    }

    #[test]
    fn m_equals_one_matches_the_paper_protocol_costs() {
        let cfg = WorkloadConfig {
            processes: 5,
            entries_per_process: 8,
            think: (20, 60),
            cs: (5, 15),
            seed: 1,
            delay: 10,
        };
        let single = crate::antitoken::run_antitoken(&cfg, pctl_core::online::PeerSelect::Random);
        let multi = run_multi_antitoken(&cfg, 1);
        assert!(!single.deadlocked() && !multi.deadlocked());
        // Same order of magnitude of control traffic (both pay only on
        // holder entries; busy-bounces add a little).
        let s = single.metrics.counter("msgs_ctrl");
        let m = multi.metrics.counter("msgs_ctrl");
        assert!(m <= s * 3 + 12 && s <= m * 3 + 12, "single={s} multi={m}");
    }
}
