//! Head-to-head comparison harness for the Section 6 evaluation.
//!
//! Runs the same workload (same seed, same think/CS distributions) through
//! each algorithm at `k = n − 1` and reports the metrics the paper argues
//! about: control messages per CS entry and response-time statistics.

use crate::antitoken::run_antitoken;
use crate::central::run_central;
use crate::driver::{max_concurrent, WorkloadConfig};
use crate::multi::run_multi_antitoken;
use crate::suzuki::run_suzuki;
use pctl_core::online::PeerSelect;
use pctl_sim::{SimResult, Summary};
use serde::Serialize;

/// One algorithm's aggregated numbers for a workload.
#[derive(Clone, Debug, Serialize)]
pub struct AlgoReport {
    /// Algorithm name.
    pub algo: String,
    /// Concurrency bound enforced.
    pub k: usize,
    /// Total CS entries performed.
    pub entries: u64,
    /// Control messages sent.
    pub ctrl_messages: u64,
    /// Control messages per entry.
    pub msgs_per_entry: f64,
    /// Response-time summary (simulated ticks).
    pub response: Option<Summary>,
    /// Peak simultaneous CS occupancy observed.
    pub max_concurrent: usize,
    /// Simulated completion time.
    pub end_time: u64,
    /// Whether the run deadlocked (must be false).
    pub deadlocked: bool,
}

fn report(algo: &str, k: usize, n: usize, r: &SimResult) -> AlgoReport {
    let entries = r.metrics.counter("entries");
    let ctrl = r.metrics.counter("msgs_ctrl");
    AlgoReport {
        algo: algo.to_owned(),
        k,
        entries,
        ctrl_messages: ctrl,
        msgs_per_entry: if entries > 0 {
            ctrl as f64 / entries as f64
        } else {
            0.0
        },
        response: r.metrics.summary("response"),
        max_concurrent: max_concurrent(&r.metrics, n),
        end_time: r.end_time.0,
        deadlocked: r.deadlocked(),
    }
}

/// Run all algorithms at `k = n − 1` on the same workload.
pub fn compare_all(cfg: &WorkloadConfig) -> Vec<AlgoReport> {
    let n = cfg.processes;
    let k = n - 1;
    vec![
        report(
            "anti-token",
            k,
            n,
            &run_antitoken(cfg, PeerSelect::NextInRing),
        ),
        report(
            "anti-token-bcast",
            k,
            n,
            &run_antitoken(cfg, PeerSelect::Broadcast),
        ),
        report("centralized", k, n, &run_central(cfg, k)),
        report("suzuki-kasami-k", k, n, &run_suzuki(cfg, k)),
    ]
}

/// Run the general-k algorithms (`m = n − k` anti-tokens, `k`-token
/// Suzuki–Kasami, centralized) on the same workload — the crossover
/// experiment for the paper's conjecture that anti-tokens suit large `k`
/// and privilege tokens small `k`.
pub fn compare_at_k(cfg: &WorkloadConfig, k: usize) -> Vec<AlgoReport> {
    let n = cfg.processes;
    assert!(k >= 1 && k < n);
    vec![
        report("anti-token-m", k, n, &run_multi_antitoken(cfg, n - k)),
        report("centralized", k, n, &run_central(cfg, k)),
        report("suzuki-kasami-k", k, n, &run_suzuki(cfg, k)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_safe_and_live_on_shared_workload() {
        let cfg = WorkloadConfig {
            processes: 4,
            entries_per_process: 6,
            seed: 7,
            ..WorkloadConfig::default()
        };
        let reports = compare_all(&cfg);
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(!r.deadlocked, "{} deadlocked", r.algo);
            assert_eq!(r.entries, 24, "{}", r.algo);
            assert!(r.max_concurrent <= r.k, "{} violated k-mutex", r.algo);
        }
    }

    #[test]
    fn antitoken_beats_baselines_on_messages_at_k_n_minus_1() {
        // The paper's headline comparison: for k = n − 1 the anti-token
        // costs far fewer messages per entry than per-entry protocols.
        let mut anti = 0.0;
        let mut central = 0.0;
        let mut suzuki = 0.0;
        for seed in 0..5 {
            let cfg = WorkloadConfig {
                processes: 6,
                entries_per_process: 8,
                seed,
                ..WorkloadConfig::default()
            };
            let reports = compare_all(&cfg);
            anti += reports[0].msgs_per_entry;
            central += reports[2].msgs_per_entry;
            suzuki += reports[3].msgs_per_entry;
        }
        assert!(
            anti < central && anti < suzuki,
            "anti-token {anti:.2} must beat centralized {central:.2} and token-based {suzuki:.2}"
        );
        assert!(
            central == 15.0,
            "centralized is exactly 3 per entry (got {central})"
        );
    }
}
