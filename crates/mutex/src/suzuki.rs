//! Token-based k-mutual exclusion: `k` independent Suzuki–Kasami
//! instances (baseline).
//!
//! The paper contrasts its single *anti-token* against classical k-mutex
//! algorithms that manage `k` privilege tokens. This baseline runs `k`
//! independent Suzuki–Kasami broadcast instances; a requester picks an
//! instance round-robin and competes for that instance's token. Cost per
//! entry: `n − 1` broadcast request messages plus one token transfer
//! (unless the requester already holds the token) — the Θ(n) per-entry
//! profile the paper's Section 6 argues against for `k = n − 1`.
//!
//! Suzuki–Kasami per instance: every process keeps `RN[j]` (highest request
//! number heard from `j`); the token carries `LN[j]` (request number last
//! *served* for `j`) and a FIFO queue. A holder passes the token to `j`
//! when `RN[j] = LN[j] + 1` (an unserved request) and the holder is idle on
//! that instance.

use crate::driver::{Driver, Phase, WorkloadConfig};
use pctl_deposet::ProcessId;
use pctl_sim::{Ctx, DelayModel, Payload, Process, SimConfig, SimResult, Simulation, TimerId};
use std::collections::VecDeque;

/// Token state for one Suzuki–Kasami instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenData {
    /// `LN[j]`: last served request number per process.
    pub ln: Vec<u64>,
    /// FIFO of processes with outstanding served-next requests.
    pub queue: VecDeque<u32>,
}

/// Messages of the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SkMsg {
    /// Broadcast CS request for an instance.
    Request {
        /// Token instance.
        inst: u32,
        /// Requester's sequence number.
        seq: u64,
    },
    /// Token transfer.
    Token {
        /// Token instance.
        inst: u32,
        /// The token itself.
        token: TokenData,
    },
}

impl Payload for SkMsg {
    fn tag(&self) -> &'static str {
        match self {
            SkMsg::Request { .. } => "sk_request",
            SkMsg::Token { .. } => "sk_token",
        }
    }
    fn is_control(&self) -> bool {
        true
    }
}

struct SkProcess {
    n: usize,
    k: usize,
    driver: Driver,
    /// `rn[inst][j]`.
    rn: Vec<Vec<u64>>,
    /// Held tokens per instance.
    tokens: Vec<Option<TokenData>>,
    /// Instance this process is currently using (waiting or in CS).
    using: Option<u32>,
    /// Round-robin instance picker.
    next_inst: u32,
}

impl SkProcess {
    fn idle_on(&self, inst: u32) -> bool {
        self.using != Some(inst)
    }

    /// Try to pass `inst`'s token to an unserved requester (holder idle).
    fn try_pass(&mut self, inst: u32, ctx: &mut Ctx<'_, SkMsg>) {
        if !self.idle_on(inst) {
            return;
        }
        let Some(token) = &mut self.tokens[inst as usize] else {
            return;
        };
        let rn = &self.rn[inst as usize];
        // Refresh the queue with newly unserved requesters.
        for j in 0..self.n as u32 {
            if rn[j as usize] == token.ln[j as usize] + 1 && !token.queue.contains(&j) {
                token.queue.push_back(j);
            }
        }
        if let Some(j) = token.queue.pop_front() {
            let token = self.tokens[inst as usize].take().expect("held");
            ctx.send(ProcessId(j), SkMsg::Token { inst, token });
        }
    }

    fn enter_if_possible(&mut self, ctx: &mut Ctx<'_, SkMsg>) {
        let Some(inst) = self.using else { return };
        if self.driver.phase == Phase::Waiting && self.tokens[inst as usize].is_some() {
            self.driver.enter_cs(ctx);
        }
    }
}

impl Process<SkMsg> for SkProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SkMsg>) {
        ctx.init_var("cs", 0);
        self.driver.start_thinking(ctx);
    }

    fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, SkMsg>) {
        match self.driver.phase {
            Phase::Thinking => {
                self.driver.begin_request(ctx);
                let inst = self.next_inst % self.k as u32;
                self.next_inst = self.next_inst.wrapping_add(1);
                self.using = Some(inst);
                if self.tokens[inst as usize].is_some() {
                    // Already holding: enter for free.
                    self.driver.enter_cs(ctx);
                } else {
                    let me = ctx.me().index();
                    self.rn[inst as usize][me] += 1;
                    let seq = self.rn[inst as usize][me];
                    for j in 0..self.n {
                        if j != me {
                            ctx.send(ProcessId(j as u32), SkMsg::Request { inst, seq });
                        }
                    }
                }
            }
            Phase::InCs => {
                let inst = self.using.take().expect("in CS on an instance");
                let me = ctx.me().index();
                // Release: LN[me] := RN[me]; then hand off if anyone waits.
                if let Some(token) = &mut self.tokens[inst as usize] {
                    token.ln[me] = self.rn[inst as usize][me];
                }
                self.driver.exit_cs(ctx);
                self.try_pass(inst, ctx);
            }
            other => unreachable!("timer in phase {other:?}"),
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: SkMsg, ctx: &mut Ctx<'_, SkMsg>) {
        match msg {
            SkMsg::Request { inst, seq } => {
                let rn = &mut self.rn[inst as usize][from.index()];
                *rn = (*rn).max(seq);
                self.try_pass(inst, ctx);
            }
            SkMsg::Token { inst, token } => {
                debug_assert!(self.tokens[inst as usize].is_none());
                self.tokens[inst as usize] = Some(token);
                self.enter_if_possible(ctx);
                // Not waiting on it (stale hand-off): pass along if others
                // want it.
                self.try_pass(inst, ctx);
            }
        }
    }
}

/// Run the `k`-token Suzuki–Kasami baseline; token `t` starts at process
/// `t % n`.
pub fn run_suzuki(cfg: &WorkloadConfig, k: usize) -> SimResult {
    let n = cfg.processes;
    assert!(k >= 1 && n >= 2);
    let procs: Vec<Box<dyn Process<SkMsg>>> = (0..n)
        .map(|i| {
            let tokens: Vec<Option<TokenData>> = (0..k)
                .map(|t| {
                    (t % n == i).then(|| TokenData {
                        ln: vec![0; n],
                        queue: VecDeque::new(),
                    })
                })
                .collect();
            Box::new(SkProcess {
                n,
                k,
                driver: Driver::new(cfg),
                rn: vec![vec![0; n]; k],
                tokens,
                using: None,
                next_inst: i as u32, // stagger instance choice per process
            }) as Box<dyn Process<SkMsg>>
        })
        .collect();
    let sim_cfg = SimConfig {
        seed: cfg.seed,
        delay: DelayModel::Fixed(cfg.delay),
        ..SimConfig::default()
    };
    Simulation::new(sim_cfg, procs).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::max_concurrent;

    #[test]
    fn suzuki_respects_k() {
        for (k, seed) in [(1usize, 0u64), (2, 1), (3, 2)] {
            let cfg = WorkloadConfig {
                processes: 4,
                entries_per_process: 5,
                think: (5, 20),
                seed,
                ..WorkloadConfig::default()
            };
            let r = run_suzuki(&cfg, k);
            assert!(!r.deadlocked(), "k={k} seed={seed}");
            assert_eq!(r.metrics.counter("entries"), 20, "k={k}");
            assert!(max_concurrent(&r.metrics, 4) <= k, "k={k} violated");
        }
    }

    #[test]
    fn single_token_is_classic_suzuki_kasami() {
        let cfg = WorkloadConfig {
            processes: 3,
            entries_per_process: 6,
            think: (1, 5),
            cs: (5, 10),
            ..WorkloadConfig::default()
        };
        let r = run_suzuki(&cfg, 1);
        assert!(!r.deadlocked());
        assert_eq!(max_concurrent(&r.metrics, 3), 1);
        // Broadcast cost: a contended entry costs n-1 requests + 1 token.
        let entries = r.metrics.counter("entries");
        assert!(
            r.metrics.counter("msgs_ctrl") <= entries * 3,
            "n-1 + 1 = 3 per entry max"
        );
    }

    #[test]
    fn k_equals_n_minus_1_matches_antitoken_semantics() {
        // Safety for the paper's comparison point.
        let cfg = WorkloadConfig {
            processes: 4,
            entries_per_process: 6,
            ..WorkloadConfig::default()
        };
        let r = run_suzuki(&cfg, 3);
        assert!(!r.deadlocked());
        assert!(max_concurrent(&r.metrics, 4) <= 3);
    }

    #[test]
    fn token_holder_enters_for_free() {
        // Single process holding the only token with no contention: zero
        // messages for repeated entries. (n must be ≥ 2; the peer never
        // requests because its think time exceeds the horizon.)
        let cfg = WorkloadConfig {
            processes: 2,
            entries_per_process: 1,
            think: (1, 1),
            cs: (1, 1),
            ..WorkloadConfig::default()
        };
        let r = run_suzuki(&cfg, 2); // two tokens: one each — no contention
        assert!(!r.deadlocked());
        assert_eq!(
            r.metrics.counter("msgs_ctrl"),
            0,
            "uncontended holders are free"
        );
    }
}
