//! k-mutual exclusion on the simulator: the paper's Section 6 application
//! and its baselines.
//!
//! * [`antitoken`] — (n−1)-mutual exclusion as on-line disjunctive
//!   predicate control (`lᵢ = ¬csᵢ`): the scapegoat role is a single
//!   *anti-token* (a liability, not a privilege);
//! * [`ft_antitoken`] — the same workload on the hardened scapegoat
//!   protocol, surviving message loss and scapegoat crashes injected by a
//!   `pctl_sim::FaultPlan`;
//! * [`multi`] — the generalization the paper's evaluation hints at:
//!   `m` anti-tokens give (n−m)-mutual exclusion for any `k`;
//! * [`central`] — centralized-coordinator k-mutex (3 messages/entry);
//! * [`suzuki`] — `k` independent Suzuki–Kasami token instances
//!   (Θ(n) messages per contended entry);
//! * [`driver`] — the shared think/CS workload and the post-run safety
//!   sweep;
//! * [`compare`] — the head-to-head harness behind the Section 6 numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod antitoken;
pub mod central;
pub mod compare;
pub mod driver;
pub mod ft_antitoken;
pub mod multi;
pub mod suzuki;

pub use antitoken::{run_antitoken, run_antitoken_recorded};
pub use central::run_central;
pub use compare::{compare_all, compare_at_k, AlgoReport};
pub use driver::{max_concurrent, WorkloadConfig};
pub use ft_antitoken::{run_ft_antitoken, run_ft_antitoken_recorded, run_ft_antitoken_with};
pub use multi::run_multi_antitoken;
pub use suzuki::run_suzuki;
