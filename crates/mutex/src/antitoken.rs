//! (n−1)-mutual exclusion via the paper's on-line control strategy.
//!
//! With local predicates `lᵢ = ¬csᵢ`, the disjunctive predicate
//! `∨ᵢ ¬csᵢ` says *at least one process is outside its critical section* —
//! exactly (n−1)-mutual exclusion. The scapegoat protocol solves it with a
//! single *anti-token* (the scapegoat role is a liability: its holder must
//! stay out of the CS until someone takes it), versus the `k` privileged
//! tokens of classical k-mutex algorithms. Expected overhead: 2 control
//! messages per handover, and a handover only when the scapegoat itself
//! wants the CS — the paper's "2 messages per n CS entries".

use crate::driver::{Driver, Phase, WorkloadConfig};
use pctl_core::online::{CtrlAction, CtrlMsg, FalsifyDecision, PeerSelect, ScapegoatController};
use pctl_deposet::ProcessId;
use pctl_sim::{Ctx, DelayModel, Process, SimConfig, SimResult, Simulation, TimerId};

/// A worker process running the anti-token protocol under the shared
/// workload driver.
pub struct AntiTokenProcess {
    driver: Driver,
    ctrl: ScapegoatController,
    n: usize,
    select: PeerSelect,
}

impl AntiTokenProcess {
    /// Build worker `me` out of `n`; process 0 holds the initial anti-token.
    pub fn new(me: ProcessId, n: usize, cfg: &WorkloadConfig, select: PeerSelect) -> Self {
        AntiTokenProcess {
            driver: Driver::new(cfg),
            ctrl: ScapegoatController::new(me, me.index() == 0),
            n,
            select,
        }
    }

    fn peers(&self, ctx: &mut Ctx<'_, CtrlMsg>) -> Vec<ProcessId> {
        let me = ctx.me().index();
        let others: Vec<ProcessId> = (0..self.n)
            .filter(|&i| i != me)
            .map(|i| ProcessId(i as u32))
            .collect();
        match self.select {
            PeerSelect::Broadcast => others,
            PeerSelect::NextInRing => vec![ProcessId(((me + 1) % self.n) as u32)],
            PeerSelect::Random => {
                let k = ctx.rand_below(others.len() as u64) as usize;
                vec![others[k]]
            }
        }
    }

    fn apply(&mut self, actions: Vec<CtrlAction>, ctx: &mut Ctx<'_, CtrlMsg>) {
        for a in actions {
            match a {
                CtrlAction::Send { to, msg } => ctx.send(to, msg),
                CtrlAction::Grant => self.driver.enter_cs(ctx),
            }
        }
    }
}

impl Process<CtrlMsg> for AntiTokenProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CtrlMsg>) {
        ctx.init_var("cs", 0);
        self.driver.start_thinking(ctx);
    }

    fn on_message(&mut self, _from: ProcessId, msg: CtrlMsg, ctx: &mut Ctx<'_, CtrlMsg>) {
        let had_role = self.ctrl.is_scapegoat();
        let actions = self.ctrl.on_message(msg);
        if ctx.recording() && self.ctrl.is_scapegoat() != had_role {
            ctx.trace_instant(if self.ctrl.is_scapegoat() {
                "scapegoat_acquired"
            } else {
                "scapegoat_released"
            });
        }
        self.apply(actions, ctx);
    }

    fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, CtrlMsg>) {
        match self.driver.phase {
            Phase::Thinking => {
                self.driver.begin_request(ctx);
                let peers = self.peers(ctx);
                match self.ctrl.request_false(&peers) {
                    FalsifyDecision::Granted => self.driver.enter_cs(ctx),
                    FalsifyDecision::Blocked(actions) => self.apply(actions, ctx),
                }
            }
            Phase::InCs => {
                // Leaving the CS makes lᵢ true again. Order matters for the
                // trace: record cs := 0 *before* answering deferred
                // requests, so every ack is sent from a predicate-true
                // state (the chain argument for consistent-cut safety
                // hinges on ack-send states being true).
                self.driver.exit_cs(ctx);
                let actions = self.ctrl.notify_true();
                self.apply(actions, ctx);
            }
            other => unreachable!("timer in phase {other:?}"),
        }
    }
}

/// Run the anti-token workload; `k = n − 1`.
pub fn run_antitoken(cfg: &WorkloadConfig, select: PeerSelect) -> SimResult {
    run_antitoken_recorded(cfg, select, Box::new(pctl_sim::NullRecorder))
}

/// [`run_antitoken`] with a telemetry recorder attached; the recorder
/// comes back in [`SimResult::recorder`] after the run flushes it.
pub fn run_antitoken_recorded(
    cfg: &WorkloadConfig,
    select: PeerSelect,
    recorder: Box<dyn pctl_sim::Recorder>,
) -> SimResult {
    let n = cfg.processes;
    assert!(n >= 2);
    let procs: Vec<Box<dyn Process<CtrlMsg>>> = (0..n)
        .map(|i| {
            Box::new(AntiTokenProcess::new(ProcessId(i as u32), n, cfg, select))
                as Box<dyn Process<CtrlMsg>>
        })
        .collect();
    let sim_cfg = SimConfig {
        seed: cfg.seed,
        delay: DelayModel::Fixed(cfg.delay),
        ..SimConfig::default()
    };
    Simulation::with_recorder(sim_cfg, procs, recorder).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::max_concurrent;

    #[test]
    fn antitoken_maintains_k_mutex() {
        for seed in 0..8 {
            let cfg = WorkloadConfig {
                processes: 4,
                seed,
                ..WorkloadConfig::default()
            };
            let r = run_antitoken(&cfg, PeerSelect::NextInRing);
            assert!(!r.deadlocked(), "seed {seed}");
            assert_eq!(r.metrics.counter("entries"), 20);
            assert!(
                max_concurrent(&r.metrics, 4) <= 3,
                "seed {seed}: more than n-1 processes in CS"
            );
        }
    }

    #[test]
    fn two_process_antitoken_is_full_mutex() {
        // n = 2 ⇒ k = 1: classic mutual exclusion.
        for seed in 0..8 {
            let cfg = WorkloadConfig {
                processes: 2,
                seed,
                ..WorkloadConfig::default()
            };
            let r = run_antitoken(&cfg, PeerSelect::NextInRing);
            assert!(!r.deadlocked());
            assert_eq!(max_concurrent(&r.metrics, 2).max(1), 1, "seed {seed}");
        }
    }

    #[test]
    fn response_time_bounds_hold_for_handovers() {
        // The paper: response time of a scapegoat handover lies in
        // [2T, 2T + E_max]; free entries respond in 0.
        let cfg = WorkloadConfig {
            processes: 3,
            entries_per_process: 10,
            delay: 10,
            cs: (5, 15),
            seed: 42,
            ..WorkloadConfig::default()
        };
        let r = run_antitoken(&cfg, PeerSelect::NextInRing);
        assert!(!r.deadlocked());
        let t = 10u64;
        let e_max = 15u64;
        let mut in_paper_band = 0usize;
        let mut handovers = 0usize;
        for &resp in r.metrics.samples("response") {
            // Free entries are instantaneous; every handover costs at least
            // the req + ack round trip.
            assert!(resp == 0 || resp >= 2 * t, "response {resp} under 2T");
            if resp > 0 {
                handovers += 1;
                if resp <= 2 * t + e_max {
                    in_paper_band += 1;
                }
            }
        }
        assert!(handovers > 0, "workload never exercised a handover");
        // The paper's [2T, 2T + E_max] band assumes the responder is free
        // or in its CS; deferral chains can exceed it, but the band must
        // dominate.
        assert!(
            in_paper_band * 2 >= handovers,
            "band {in_paper_band}/{handovers}"
        );
    }

    #[test]
    fn no_consistent_cut_violation_at_scale() {
        // Regression for the ack-before-exit trace-ordering bug: check the
        // consistent-cut guarantee with the polynomial GW detector on
        // larger systems and all peer-selection policies.
        use pctl_deposet::{DisjunctivePredicate, LocalPredicate};
        for n in [4usize, 6, 8] {
            for select in [
                PeerSelect::NextInRing,
                PeerSelect::Random,
                PeerSelect::Broadcast,
            ] {
                for seed in 0..4u64 {
                    let cfg = WorkloadConfig {
                        processes: n,
                        entries_per_process: 8,
                        think: (20, 60),
                        cs: (5, 15),
                        seed,
                        delay: 10,
                    };
                    let r = run_antitoken(&cfg, select);
                    assert!(!r.deadlocked(), "n={n} {select:?} seed={seed}");
                    let all_in_cs: Vec<LocalPredicate> =
                        (0..n).map(|_| LocalPredicate::var("cs")).collect();
                    let hit = pctl_detect::possibly_conjunction(&r.deposet, &all_in_cs);
                    assert_eq!(
                        hit, None,
                        "n={n} {select:?} seed={seed}: consistent cut with all in CS"
                    );
                    let _ = DisjunctivePredicate::at_least_one_not(n, "cs");
                }
            }
        }
    }

    #[test]
    fn trace_satisfies_disjunctive_predicate_exhaustively() {
        use pctl_deposet::lattice::consistent_global_states;
        use pctl_deposet::DisjunctivePredicate;
        let cfg = WorkloadConfig {
            processes: 3,
            entries_per_process: 2,
            seed: 5,
            ..WorkloadConfig::default()
        };
        let r = run_antitoken(&cfg, PeerSelect::NextInRing);
        let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
        for g in consistent_global_states(&r.deposet, 3_000_000).unwrap() {
            assert!(pred.eval(&r.deposet, &g), "violating consistent cut {g:?}");
        }
    }
}
