//! Shared workload driver: think → request → critical section → release.
//!
//! All three k-mutual-exclusion algorithms are exercised by the same
//! driver so their metrics are comparable: per entry it records the
//! *response time* (request → entry, the paper's Section 6 metric) and
//! stamps `enter_p{i}` / `exit_p{i}` sample series used by the post-run
//! safety sweep ([`max_concurrent`]).

use pctl_sim::{Ctx, Metrics, Payload, SimTime};

/// Workload parameters shared by every algorithm run.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Worker processes competing for the critical section.
    pub processes: usize,
    /// Critical-section entries per process.
    pub entries_per_process: u32,
    /// Think time range `[min, max]` between entries.
    pub think: (u64, u64),
    /// Critical-section duration range `[min, max]`; `cs.1` is the paper's
    /// `E_max`.
    pub cs: (u64, u64),
    /// RNG seed.
    pub seed: u64,
    /// Mean message delay `T` (fixed-delay model is used for comparability).
    pub delay: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            processes: 4,
            entries_per_process: 5,
            think: (20, 60),
            cs: (5, 15),
            seed: 0,
            delay: 10,
        }
    }
}

/// Driver phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Outside the CS, timer pending until the next request.
    Thinking,
    /// Requested, waiting for the algorithm to grant entry.
    Waiting,
    /// Inside the CS, timer pending until release.
    InCs,
    /// All entries performed.
    Done,
}

/// Per-process workload state machine.
#[derive(Debug)]
pub struct Driver {
    /// Current phase.
    pub phase: Phase,
    entries_left: u32,
    think: (u64, u64),
    cs: (u64, u64),
    requested_at: Option<SimTime>,
}

impl Driver {
    /// New driver for one process.
    pub fn new(cfg: &WorkloadConfig) -> Self {
        Driver {
            phase: Phase::Thinking,
            entries_left: cfg.entries_per_process,
            think: cfg.think,
            cs: cfg.cs,
            requested_at: None,
        }
    }

    /// Begin (or resume) thinking; call from `on_start` and after each
    /// release. Marks the process done when its entries are exhausted.
    pub fn start_thinking<M: Payload>(&mut self, ctx: &mut Ctx<'_, M>) {
        if self.entries_left == 0 {
            self.phase = Phase::Done;
            ctx.set_done();
            return;
        }
        self.phase = Phase::Thinking;
        let d = ctx.rand_range(self.think.0, self.think.1);
        ctx.set_timer(d);
    }

    /// The thinking timer fired: transition to `Waiting` and stamp the
    /// request time. The caller must now invoke the algorithm's request
    /// path (and call [`enter_cs`](Self::enter_cs) if entry is immediate).
    pub fn begin_request<M: Payload>(&mut self, ctx: &mut Ctx<'_, M>) {
        debug_assert_eq!(self.phase, Phase::Thinking);
        self.phase = Phase::Waiting;
        self.requested_at = Some(ctx.now());
        ctx.trace_begin("wait");
    }

    /// Enter the critical section (algorithm granted access).
    pub fn enter_cs<M: Payload>(&mut self, ctx: &mut Ctx<'_, M>) {
        debug_assert_eq!(self.phase, Phase::Waiting);
        self.phase = Phase::InCs;
        if let Some(at) = self.requested_at.take() {
            ctx.record("response", ctx.now().since(at));
        }
        ctx.trace_end("wait");
        ctx.trace_begin("cs");
        ctx.count("entries", 1);
        ctx.step(&[("cs", 1)]);
        let me = ctx.me().index();
        ctx.record(&format!("enter_p{me}"), ctx.now().0);
        let d = ctx.rand_range(self.cs.0, self.cs.1);
        ctx.set_timer(d);
    }

    /// The CS timer fired: leave the critical section. The caller must run
    /// the algorithm's release path, then this restarts thinking.
    pub fn exit_cs<M: Payload>(&mut self, ctx: &mut Ctx<'_, M>) {
        debug_assert_eq!(self.phase, Phase::InCs);
        ctx.trace_end("cs");
        ctx.step(&[("cs", 0)]);
        let me = ctx.me().index();
        ctx.record(&format!("exit_p{me}"), ctx.now().0);
        self.entries_left -= 1;
        self.start_thinking(ctx);
    }

    /// The process restarted after a crash (`pctl_sim::Process::on_restart`).
    /// Every pre-crash timer is stale, so each phase recovers
    /// conservatively: an interrupted critical section is abandoned — `cs`
    /// reset, an exit stamp recorded so [`max_concurrent`] sees a balanced
    /// span, the entry charged against the quota and counted as
    /// `aborted_cs` — a pending request is forgotten (the algorithm layer
    /// re-requests from scratch), and thinking resumes.
    pub fn on_restart<M: Payload>(&mut self, ctx: &mut Ctx<'_, M>) {
        match self.phase {
            Phase::InCs => {
                // Close the span the crash interrupted so exported
                // timelines stay balanced.
                ctx.trace_end("cs");
                ctx.step(&[("cs", 0)]);
                let me = ctx.me().index();
                ctx.record(&format!("exit_p{me}"), ctx.now().0);
                ctx.count("aborted_cs", 1);
                self.entries_left -= 1;
                self.start_thinking(ctx);
            }
            Phase::Waiting => {
                ctx.trace_end("wait");
                self.requested_at = None;
                self.start_thinking(ctx);
            }
            Phase::Thinking => self.start_thinking(ctx),
            Phase::Done => ctx.set_done(),
        }
    }
}

/// Post-run safety sweep: the maximum number of processes simultaneously
/// inside the critical section, from the `enter_p*` / `exit_p*` stamps.
/// A correct k-mutex run has `max_concurrent ≤ k`.
pub fn max_concurrent(metrics: &Metrics, n: usize) -> usize {
    let mut events: Vec<(u64, i32)> = Vec::new();
    for p in 0..n {
        let enters = metrics.samples(&format!("enter_p{p}"));
        let exits = metrics.samples(&format!("exit_p{p}"));
        assert!(enters.len() >= exits.len());
        for &t in enters {
            events.push((t, 1));
        }
        for &t in exits {
            events.push((t, -1));
        }
    }
    // Exits sort before enters at equal timestamps (CS spans are closed on
    // the left, open on the right).
    events.sort_by_key(|&(t, d)| (t, d));
    let mut cur = 0i32;
    let mut max = 0i32;
    for (_, d) in events {
        cur += d;
        max = max.max(cur);
    }
    max as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_concurrent_sweep() {
        let mut m = Metrics::default();
        // P0 in CS [0,10), P1 in [5,15), P2 in [10,20): peak 2.
        m.record("enter_p0", 0);
        m.record("exit_p0", 10);
        m.record("enter_p1", 5);
        m.record("exit_p1", 15);
        m.record("enter_p2", 10);
        m.record("exit_p2", 20);
        assert_eq!(max_concurrent(&m, 3), 2);
    }

    #[test]
    fn max_concurrent_counts_disjoint_as_one() {
        let mut m = Metrics::default();
        m.record("enter_p0", 0);
        m.record("exit_p0", 5);
        m.record("enter_p1", 5);
        m.record("exit_p1", 9);
        assert_eq!(max_concurrent(&m, 2), 1);
    }

    #[test]
    fn empty_metrics_mean_zero_concurrency() {
        assert_eq!(max_concurrent(&Metrics::default(), 4), 0);
    }
}
