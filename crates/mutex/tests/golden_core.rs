//! Golden-fingerprint pins for the simulator dispatch core.
//!
//! These fixtures were captured against the pre-actor-core dispatcher (the
//! single global `BinaryHeap` loop) and pin its observable behavior byte for
//! byte: the traced deposet (FNV-1a hash + length of the canonical trace
//! JSON), the full metrics JSON, and the run verdict. Any engine rework must
//! reproduce them exactly — same `(time, seq)` dispatch order, same RNG draw
//! order, same trace and metrics — for both the k-mutex and the
//! fault-tolerant mutex scenarios, with and without an active `FaultPlan`.
//!
//! If a fingerprint legitimately changes (it should not, short of a
//! deliberate semantic change to the simulator), regenerate with
//! `UPDATE_GOLDEN=1` and review the diff.

use pctl_core::online::ft::FtParams;
use pctl_core::online::PeerSelect;
use pctl_deposet::trace;
use pctl_mutex::{run_antitoken, run_ft_antitoken, WorkloadConfig};
use pctl_sim::{FaultPlan, ProcessId, SimResult, SimTime};

/// FNV-1a 64-bit — dependency-free stable hash for the deposet trace JSON.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The pinned fingerprint: everything downstream layers can observe from a
/// run, with the (large) deposet JSON collapsed to hash+length.
fn fingerprint(r: &SimResult) -> String {
    let dep_json = trace::to_json(&r.deposet);
    format!(
        "deposet fnv1a={:016x} len={}\nmetrics {}\nend_time {:?}\ndone {:?}\nstopped {:?}\n",
        fnv1a(dep_json.as_bytes()),
        dep_json.len(),
        serde_json::to_string(&r.metrics).expect("metrics serialize"),
        r.end_time,
        r.done,
        r.stopped,
    )
}

fn workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        processes: 4,
        entries_per_process: 5,
        think: (20, 60),
        cs: (5, 15),
        seed,
        delay: 10,
    }
}

fn check(name: &str, got: &str) {
    let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, got).expect("update golden file");
    }
    let golden = std::fs::read_to_string(&path).expect("read golden file");
    assert_eq!(
        got, golden,
        "sim-core fingerprint drifted from tests/golden/{name}.txt — the \
         engine no longer reproduces the pre-refactor dispatcher bit for bit \
         (UPDATE_GOLDEN=1 regenerates, but treat any diff as a determinism \
         regression until proven otherwise)"
    );
}

#[test]
fn kmutex_empty_plan_matches_prerefactor_golden() {
    let r = run_antitoken(&workload(0xD51A_BE11), PeerSelect::NextInRing);
    check("kmutex_empty_plan", &fingerprint(&r));
}

#[test]
fn ft_mutex_empty_plan_matches_prerefactor_golden() {
    let r = run_ft_antitoken(
        &workload(0xD51A_BE12),
        PeerSelect::NextInRing,
        FtParams::default(),
        FaultPlan::none(),
    );
    check("ft_mutex_empty_plan", &fingerprint(&r));
}

#[test]
fn ft_mutex_faulty_plan_matches_prerefactor_golden() {
    let plan = FaultPlan::uniform_loss(0.05).with_crash(ProcessId(1), SimTime(300), Some(400));
    let r = run_ft_antitoken(
        &workload(0xD51A_BE13),
        PeerSelect::NextInRing,
        FtParams::default(),
        plan,
    );
    check("ft_mutex_faulty_plan", &fingerprint(&r));
}
