//! Fidge–Mattern vector clocks.
//!
//! A vector clock timestamps each local state `s` of process `P_i` with a
//! vector `V(s)` of length `n` such that `V(s)[j]` is the number of states
//! of `P_j` that causally precede or equal `s` along `→`. With this scheme
//! (Mattern, *Virtual Time and Global States of Distributed Systems*, 1989 —
//! reference \[8] of the paper):
//!
//! * `s → t`  ⇔  `s ≠ t` and `V(s)[proc(s)] ≤ V(t)[proc(s)]`,
//! * `s ∥ t`  ⇔  neither precedes the other.
//!
//! The deposet crate assigns clocks at trace-construction time; this module
//! only implements the clock algebra (tick, merge, comparison).

use crate::ids::ProcessId;
use crate::order::Causality;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A vector clock over a fixed number of processes.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VectorClock {
    entries: Vec<u32>,
}

impl VectorClock {
    /// The zero clock for `n` processes.
    pub fn zero(n: usize) -> Self {
        VectorClock {
            entries: vec![0; n],
        }
    }

    /// Build a clock from raw entries.
    pub fn from_entries(entries: Vec<u32>) -> Self {
        VectorClock { entries }
    }

    /// Number of processes this clock covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the clock covers zero processes (degenerate).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The component for process `p`.
    #[inline]
    pub fn get(&self, p: ProcessId) -> u32 {
        self.entries[p.index()]
    }

    /// Raw components.
    #[inline]
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }

    /// Increment the component of process `p` (a local step of `p`).
    #[inline]
    pub fn tick(&mut self, p: ProcessId) {
        self.entries[p.index()] += 1;
    }

    /// Component-wise maximum with `other` (message receipt).
    ///
    /// # Panics
    /// Panics if the clocks have different lengths.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(
            self.entries.len(),
            other.entries.len(),
            "clock width mismatch"
        );
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            *a = (*a).max(*b);
        }
    }

    /// `self ≤ other` component-wise.
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        self.entries.len() == other.entries.len()
            && self.entries.iter().zip(&other.entries).all(|(a, b)| a <= b)
    }

    /// Full causal comparison of two *clock values*.
    ///
    /// Note that for *state* comparisons the deposet layer uses the cheaper
    /// single-component test (`V(s)[proc(s)] ≤ V(t)[proc(s)]`); this method
    /// is the general vector comparison, correct for any two events/states.
    pub fn causality(&self, other: &VectorClock) -> Causality {
        let le = self.dominated_by(other);
        let ge = other.dominated_by(self);
        match (le, ge) {
            (true, true) => Causality::Equal,
            (true, false) => Causality::Before,
            (false, true) => Causality::After,
            (false, false) => Causality::Concurrent,
        }
    }
}

impl PartialOrd for VectorClock {
    /// The partial order of the clock lattice: `Some(Less)` iff strictly
    /// dominated, `None` iff concurrent.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.causality(other) {
            Causality::Equal => Some(Ordering::Equal),
            Causality::Before => Some(Ordering::Less),
            Causality::After => Some(Ordering::Greater),
            Causality::Concurrent => None,
        }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(e: &[u32]) -> VectorClock {
        VectorClock::from_entries(e.to_vec())
    }

    #[test]
    fn zero_is_dominated_by_everything() {
        let z = VectorClock::zero(3);
        assert!(z.dominated_by(&vc(&[0, 0, 0])));
        assert!(z.dominated_by(&vc(&[1, 2, 3])));
        assert_eq!(z.causality(&vc(&[1, 0, 0])), Causality::Before);
    }

    #[test]
    fn tick_and_merge() {
        let mut a = VectorClock::zero(3);
        a.tick(ProcessId(0));
        a.tick(ProcessId(0));
        let mut b = VectorClock::zero(3);
        b.tick(ProcessId(1));
        b.merge(&a);
        assert_eq!(b.entries(), &[2, 1, 0]);
    }

    #[test]
    fn concurrent_clocks() {
        let a = vc(&[1, 0]);
        let b = vc(&[0, 1]);
        assert_eq!(a.causality(&b), Causality::Concurrent);
        assert_eq!(a.partial_cmp(&b), None);
    }

    #[test]
    fn strict_domination_is_before() {
        let a = vc(&[1, 2, 0]);
        let b = vc(&[2, 2, 0]);
        assert_eq!(a.causality(&b), Causality::Before);
        assert_eq!(b.causality(&a), Causality::After);
        assert!(a < b);
    }

    #[test]
    fn equal_clocks() {
        let a = vc(&[3, 1]);
        assert_eq!(a.causality(&a.clone()), Causality::Equal);
    }

    #[test]
    #[should_panic(expected = "clock width mismatch")]
    fn merge_width_mismatch_panics() {
        let mut a = VectorClock::zero(2);
        a.merge(&VectorClock::zero(3));
    }
}
