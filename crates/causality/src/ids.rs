//! Typed identifiers for processes, local states and messages.
//!
//! Using newtypes instead of raw integers makes it impossible to confuse a
//! process index with a state index, which matters in algorithms (like the
//! off-line control algorithm of the paper's Figure 2) that juggle both in
//! tight loops.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a sequential process `P_i` in the distributed system.
///
/// Processes are numbered densely from `0` to `n - 1`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// The process index as a `usize`, for indexing per-process tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(u32::try_from(i).expect("process index fits in u32"))
    }
}

/// Identifier of a local state: the `index`-th state in the sequential
/// execution of process `process`.
///
/// Index `0` is the special start state `⊥_i`; the largest index on a
/// process is the special final state `⊤_i` (see deposet constraint D1/D2 in
/// the paper, Section 3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateId {
    /// The owning process.
    pub process: ProcessId,
    /// Position in the process's local state sequence (0-based).
    pub index: u32,
}

impl StateId {
    /// Construct a state id from raw parts.
    #[inline]
    pub fn new(process: impl Into<ProcessId>, index: u32) -> Self {
        StateId {
            process: process.into(),
            index,
        }
    }

    /// The state index as a `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.index as usize
    }

    /// The id of the state immediately following this one on the same
    /// process (the `im` successor), without bounds knowledge.
    #[inline]
    pub fn successor(self) -> StateId {
        StateId {
            process: self.process,
            index: self.index + 1,
        }
    }

    /// The id of the state immediately preceding this one on the same
    /// process, or `None` for the initial state.
    #[inline]
    pub fn predecessor(self) -> Option<StateId> {
        self.index.checked_sub(1).map(|i| StateId {
            process: self.process,
            index: i,
        })
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s({},{})", self.process.0, self.index)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}[{}]", self.process.0, self.index)
    }
}

/// Identifier of an application message, dense per computation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MsgId(pub u32);

impl MsgId {
    /// The message index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let p = ProcessId::from(7usize);
        assert_eq!(p.index(), 7);
        assert_eq!(format!("{p}"), "P7");
        assert_eq!(format!("{p:?}"), "P7");
    }

    #[test]
    fn state_id_neighbours() {
        let s = StateId::new(2usize, 5);
        assert_eq!(s.successor(), StateId::new(2usize, 6));
        assert_eq!(s.predecessor(), Some(StateId::new(2usize, 4)));
        assert_eq!(StateId::new(0usize, 0).predecessor(), None);
    }

    #[test]
    fn state_id_ordering_is_process_major() {
        // Ordering is only used for canonical container ordering; it sorts
        // by process first, then index.
        let a = StateId::new(0usize, 9);
        let b = StateId::new(1usize, 0);
        assert!(a < b);
    }

    #[test]
    fn ids_serde_roundtrip() {
        let s = StateId::new(3usize, 4);
        let json = serde_json::to_string(&s).unwrap();
        let back: StateId = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
