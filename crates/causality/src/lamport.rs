//! Lamport scalar clocks.
//!
//! Scalar clocks are consistent with causality (`s → t ⇒ L(s) < L(t)`) but
//! not characterizing. The simulator uses them for deterministic tie-break
//! ordering of trace events; the deposet layer uses vector clocks for the
//! full `→` relation.

use serde::{Deserialize, Serialize};

/// A Lamport logical clock.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct LamportClock(pub u64);

impl LamportClock {
    /// The initial clock value.
    pub const ZERO: LamportClock = LamportClock(0);

    /// Advance for a local or send event and return the new value.
    #[inline]
    pub fn tick(&mut self) -> LamportClock {
        self.0 += 1;
        *self
    }

    /// Advance for a receive event carrying timestamp `msg` and return the
    /// new value: `max(local, msg) + 1`.
    #[inline]
    pub fn receive(&mut self, msg: LamportClock) -> LamportClock {
        self.0 = self.0.max(msg.0) + 1;
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_increments() {
        let mut c = LamportClock::ZERO;
        assert_eq!(c.tick(), LamportClock(1));
        assert_eq!(c.tick(), LamportClock(2));
    }

    #[test]
    fn receive_takes_max_plus_one() {
        let mut c = LamportClock(3);
        assert_eq!(c.receive(LamportClock(10)), LamportClock(11));
        assert_eq!(c.receive(LamportClock(2)), LamportClock(12));
    }

    #[test]
    fn clock_condition_on_a_message_chain() {
        // send on A, receive on B: L(send) < L(recv).
        let mut a = LamportClock::ZERO;
        let send = a.tick();
        let mut b = LamportClock(7);
        let recv = b.receive(send);
        assert!(send < recv);
    }
}
