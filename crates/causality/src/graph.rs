//! Directed-graph utilities: topological sort, cycle extraction, and bitset
//! transitive closure.
//!
//! Used by the control layer in two places:
//!
//! 1. **Interference checking.** Adding a control relation `C→` to a deposet
//!    is only valid if the extended causality `(→ ∪ C→)⁺` remains
//!    irreflexive (Section 3 of the paper). We model the states as graph
//!    nodes, `im ∪ ; ∪ C→` as edges, and reject the control relation iff the
//!    graph has a cycle — returning the offending cycle as a diagnostic.
//! 2. **Extended clocks.** After a successful interference check, extended
//!    vector clocks are recomputed by dynamic programming over a topological
//!    order of the same graph.
//!
//! The transitive closure (used as ground truth in tests and for small-graph
//! reachability queries) is computed with bit-parallel DP over the
//! topological order: O(V·E/64) time, O(V²/64) space.

use std::fmt;

/// A directed graph on `n` densely-numbered nodes, specialised for DAG
/// workflows (topological sorting, closure) but tolerant of cycles (it
/// reports them instead of looping).
#[derive(Clone, Debug, Default)]
pub struct Dag {
    adj: Vec<Vec<u32>>,
    edge_count: usize,
}

/// Error returned when a graph expected to be acyclic contains a cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// Nodes forming a directed cycle, in order; `cycle[i] → cycle[i+1]` and
    /// the last node has an edge back to the first.
    pub cycle: Vec<u32>,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph contains a cycle through nodes {:?}", self.cycle)
    }
}

impl std::error::Error for CycleError {}

impl Dag {
    /// An edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Dag {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Add the directed edge `u → v`. Parallel edges are permitted (the
    /// algorithms are insensitive to them).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        debug_assert!(u < self.adj.len() && v < self.adj.len());
        self.adj[u].push(v as u32);
        self.edge_count += 1;
    }

    /// Successors of `u`.
    #[inline]
    pub fn successors(&self, u: usize) -> &[u32] {
        &self.adj[u]
    }

    /// Kahn topological sort. Returns a topological order, or the cycle that
    /// prevents one.
    pub fn topo_sort(&self) -> Result<Vec<u32>, CycleError> {
        let n = self.adj.len();
        let mut indeg = vec![0u32; n];
        for succs in &self.adj {
            for &v in succs {
                indeg[v as usize] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &self.adj[u as usize] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(CycleError {
                cycle: self.extract_cycle(&indeg),
            })
        }
    }

    /// Whether the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topo_sort().is_ok()
    }

    /// Find a concrete cycle among nodes with nonzero residual in-degree.
    /// Such nodes lie on or downstream of a cycle; we first trim away nodes
    /// with no successor inside the region (pure downstream nodes), after
    /// which every remaining node has an in-region successor and a forward
    /// walk must revisit a node.
    fn extract_cycle(&self, indeg: &[u32]) -> Vec<u32> {
        let n = self.adj.len();
        let mut in_cycle_region: Vec<bool> = (0..n).map(|v| indeg[v] > 0).collect();
        loop {
            let mut trimmed = false;
            for v in 0..n {
                if in_cycle_region[v] && !self.adj[v].iter().any(|&w| in_cycle_region[w as usize]) {
                    in_cycle_region[v] = false;
                    trimmed = true;
                }
            }
            if !trimmed {
                break;
            }
        }
        let start = (0..n)
            .find(|&v| in_cycle_region[v])
            .expect("cycle region nonempty");
        // Walk forward within the region until a repeat.
        let mut seen_at = vec![usize::MAX; n];
        let mut path: Vec<u32> = Vec::new();
        let mut cur = start;
        loop {
            if seen_at[cur] != usize::MAX {
                return path[seen_at[cur]..].to_vec();
            }
            seen_at[cur] = path.len();
            path.push(cur as u32);
            cur = self.adj[cur]
                .iter()
                .map(|&v| v as usize)
                .find(|&v| in_cycle_region[v])
                .expect("node in cycle region has a successor in cycle region")
        }
    }

    /// Bit-parallel transitive closure. `result.reaches(u, v)` is true iff
    /// there is a nonempty path `u →⁺ v`.
    ///
    /// Requires the graph to be acyclic.
    pub fn transitive_closure(&self) -> Result<Reachability, CycleError> {
        let order = self.topo_sort()?;
        let n = self.adj.len();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        // Process in reverse topological order so successors' rows are done.
        for &u in order.iter().rev() {
            let u = u as usize;
            // Own successors + their closures.
            // Borrow-splitting: collect successor rows first.
            for &v in &self.adj[u] {
                let v = v as usize;
                bits[u * words + v / 64] |= 1u64 << (v % 64);
                let (head, tail) = if u < v {
                    let (a, b) = bits.split_at_mut(v * words);
                    (&mut a[u * words..u * words + words], &b[..words])
                } else {
                    let (a, b) = bits.split_at_mut(u * words);
                    (&mut b[..words], &a[v * words..v * words + words])
                };
                for (h, t) in head.iter_mut().zip(tail) {
                    *h |= *t;
                }
            }
        }
        Ok(Reachability { words, bits })
    }
}

/// Dense reachability matrix produced by [`Dag::transitive_closure`].
#[derive(Clone, Debug)]
pub struct Reachability {
    words: usize,
    bits: Vec<u64>,
}

impl Reachability {
    /// Whether there is a nonempty directed path from `u` to `v`.
    #[inline]
    pub fn reaches(&self, u: usize, v: usize) -> bool {
        self.bits[u * self.words + v / 64] >> (v % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_sorts() {
        let g = Dag::new(0);
        assert_eq!(g.topo_sort().unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn chain_topo_order_respects_edges() {
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let order = g.topo_sort().unwrap();
        let pos: Vec<usize> = (0..4)
            .map(|v| order.iter().position(|&x| x == v as u32).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2] && pos[2] < pos[3]);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = Dag::new(2);
        g.add_edge(1, 1);
        let err = g.topo_sort().unwrap_err();
        assert_eq!(err.cycle, vec![1]);
    }

    #[test]
    fn two_cycle_detected_with_witness() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        let err = g.topo_sort().unwrap_err();
        // Witness must be a real cycle.
        assert!(!err.cycle.is_empty());
        for w in err.cycle.windows(2) {
            assert!(g.successors(w[0] as usize).contains(&w[1]));
        }
        let (&first, &last) = (err.cycle.first().unwrap(), err.cycle.last().unwrap());
        assert!(g.successors(last as usize).contains(&first));
    }

    #[test]
    fn cycle_with_downstream_tail_still_yields_witness() {
        // 0 → 1 → 2 → 1, plus tail 1 → 3 (3 is downstream of the cycle and
        // must be trimmed before the forward walk).
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 3);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        let err = g.topo_sort().unwrap_err();
        let mut sorted = err.cycle.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn closure_on_a_diamond() {
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let r = g.transitive_closure().unwrap();
        assert!(r.reaches(0, 3));
        assert!(r.reaches(0, 1));
        assert!(!r.reaches(1, 2));
        assert!(!r.reaches(3, 0));
        assert!(!r.reaches(0, 0), "closure is irreflexive on a DAG");
    }

    #[test]
    fn closure_rejects_cycles() {
        let mut g = Dag::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert!(g.transitive_closure().is_err());
    }

    #[test]
    fn closure_on_wide_graph_crosses_word_boundary() {
        // 130 nodes: a chain, so node 0 reaches node 129 (bit in word 2).
        let n = 130;
        let mut g = Dag::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        let r = g.transitive_closure().unwrap();
        assert!(r.reaches(0, 129));
        assert!(r.reaches(64, 65));
        assert!(!r.reaches(129, 0));
    }
}
