//! Columnar vector-clock storage: one flat `u32` arena for a whole
//! computation.
//!
//! The naive representation of a computation's Fidge–Mattern clocks is
//! `Vec<Vec<VectorClock>>` — one heap allocation per *state*. The DP that
//! assigns clocks then clones a full clock per state (and one more per
//! receive), so constructing a computation with `S` states over `n`
//! processes costs `O(S)` allocator round-trips and `O(n·S)` copied words
//! scattered across the heap.
//!
//! A [`ClockArena`] stores all `S` clocks in **one** flat `Vec<u32>` of
//! exactly `n·S` words: row `r` (one per state, in a caller-chosen flat
//! order) occupies `words[r·n .. (r+1)·n]`. The DP becomes
//! `copy_within` + an indexed component-wise max — no per-state allocation
//! at all — and reads hand out [`ClockRef`] slices that borrow the arena.
//!
//! [`fill_fidge_mattern`] is the shared clock-assignment DP used for both
//! base causality (message edges) and extended causality (message + control
//! edges); the extra merge edges are passed in CSR form (see
//! [`csr_from_edges`]).

use crate::ids::ProcessId;
use crate::order::Causality;
use crate::vclock::VectorClock;
use std::fmt;

/// A borrowed vector-clock value: one row of a [`ClockArena`].
///
/// Supports the same read API as [`VectorClock`] (`get`, `entries`,
/// comparison) without owning storage. Two refs compare equal iff their
/// component vectors are equal, regardless of which arena they borrow from.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ClockRef<'a> {
    entries: &'a [u32],
}

impl<'a> ClockRef<'a> {
    /// Wrap a raw component slice.
    #[inline]
    pub fn new(entries: &'a [u32]) -> Self {
        ClockRef { entries }
    }

    /// Number of processes this clock covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the clock covers zero processes (degenerate).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The component for process `p`.
    #[inline]
    pub fn get(&self, p: ProcessId) -> u32 {
        self.entries[p.index()]
    }

    /// Raw components.
    #[inline]
    pub fn entries(&self) -> &'a [u32] {
        self.entries
    }

    /// Copy into an owned [`VectorClock`].
    pub fn to_owned_clock(&self) -> VectorClock {
        VectorClock::from_entries(self.entries.to_vec())
    }

    /// `self ≤ other` component-wise.
    pub fn dominated_by(&self, other: &ClockRef<'_>) -> bool {
        self.entries.len() == other.entries.len()
            && self.entries.iter().zip(other.entries).all(|(a, b)| a <= b)
    }

    /// Full causal comparison of two clock values.
    pub fn causality(&self, other: &ClockRef<'_>) -> Causality {
        let le = self.dominated_by(other);
        let ge = other.dominated_by(self);
        match (le, ge) {
            (true, true) => Causality::Equal,
            (true, false) => Causality::Before,
            (false, true) => Causality::After,
            (false, false) => Causality::Concurrent,
        }
    }
}

impl fmt::Debug for ClockRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "⟩")
    }
}

impl PartialEq<VectorClock> for ClockRef<'_> {
    fn eq(&self, other: &VectorClock) -> bool {
        self.entries == other.entries()
    }
}

/// Flat struct-of-arrays storage for the vector clocks of a computation.
///
/// One allocation of exactly `rows · width` words; see module docs.
#[derive(Clone, PartialEq, Eq)]
pub struct ClockArena {
    width: usize,
    words: Vec<u32>,
}

impl ClockArena {
    /// A zeroed arena of `rows` clocks over `width` processes.
    pub fn zeroed(width: usize, rows: usize) -> Self {
        ClockArena {
            width,
            words: vec![0; width * rows],
        }
    }

    /// Number of processes per clock (`n`).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of clock rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.words.len().checked_div(self.width).unwrap_or(0)
    }

    /// Total `u32` words held — the arena's entire storage footprint.
    ///
    /// Always exactly `width() · rows()`; callers assert this after
    /// construction to pin the O(n·S)-words storage bound.
    #[inline]
    pub fn allocated_words(&self) -> usize {
        self.words.len()
    }

    /// The clock in row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> ClockRef<'_> {
        ClockRef::new(&self.words[r * self.width..(r + 1) * self.width])
    }

    /// Single component read: clock `r`, process `p`.
    #[inline]
    pub fn word(&self, r: usize, p: ProcessId) -> u32 {
        self.words[r * self.width + p.index()]
    }

    /// Overwrite row `dst` with row `src` (`memmove` within the arena).
    #[inline]
    pub fn copy_row(&mut self, dst: usize, src: usize) {
        if dst != src {
            let w = self.width;
            self.words.copy_within(src * w..(src + 1) * w, dst * w);
        }
    }

    /// Component-wise maximum of row `dst` with row `src`, in place.
    pub fn merge_row(&mut self, dst: usize, src: usize) {
        if dst == src {
            return;
        }
        let w = self.width;
        let (d0, s0) = (dst * w, src * w);
        for i in 0..w {
            let v = self.words[s0 + i];
            if v > self.words[d0 + i] {
                self.words[d0 + i] = v;
            }
        }
    }

    /// Component-wise maximum of row `dst` with an *external* clock row —
    /// one copied out of another arena. This is the cross-shard merge step
    /// of the sharded DP: gather buffers hold rows from foreign shards, and
    /// the owning shard folds them in without touching foreign storage.
    ///
    /// # Panics
    /// Panics if `src.len() != width()`.
    pub fn merge_from(&mut self, dst: usize, src: &[u32]) {
        assert_eq!(src.len(), self.width, "external row width mismatch");
        let d0 = dst * self.width;
        for (i, &v) in src.iter().enumerate() {
            if v > self.words[d0 + i] {
                self.words[d0 + i] = v;
            }
        }
    }

    /// Increment component `p` of row `r` (a local step of `p`).
    #[inline]
    pub fn tick(&mut self, r: usize, p: ProcessId) {
        self.words[r * self.width + p.index()] += 1;
    }

    /// One Fidge–Mattern DP step — the single row-kernel shared by the
    /// flat fill ([`fill_fidge_mattern`]), the sharded fill
    /// (`fill_sharded`'s compute phase) and the incremental per-session
    /// append. Row `r` becomes:
    ///
    /// 1. its local predecessor `r - 1` (skipped when `chain_start`; the
    ///    arena row must then already be zeroed);
    /// 2. merged with every row named in `intra_src` (sources *within this
    ///    arena*, already final);
    /// 3. merged with every `width()`-word row of `external` (rows gathered
    ///    out of *other* arenas, concatenated);
    /// 4. ticked in component `p`.
    ///
    /// Keeping this in one place is what makes "sharded ≡ flat
    /// bit-identical" an invariant by construction rather than by parallel
    /// maintenance of two loop bodies.
    ///
    /// # Panics
    /// Panics if `external.len()` is not a multiple of `width()`.
    pub fn fm_row(
        &mut self,
        r: usize,
        chain_start: bool,
        intra_src: &[u32],
        external: &[u32],
        p: ProcessId,
    ) {
        if !chain_start {
            self.copy_row(r, r - 1);
        }
        for &s in intra_src {
            self.merge_row(r, s as usize);
        }
        if !external.is_empty() {
            assert_eq!(
                external.len() % self.width,
                0,
                "external rows must be whole width()-word rows"
            );
            for row in external.chunks_exact(self.width) {
                self.merge_from(r, row);
            }
        }
        self.tick(r, p);
    }

    /// Append one zeroed row, returning its index. Amortized O(width):
    /// `Vec` growth doubles, so a stream of appends costs O(1) reallocations
    /// per row on average — the storage primitive behind the incremental
    /// per-session stores.
    ///
    /// # Panics
    /// Panics if the arena already holds [`MAX_ROWS`] rows (the `u32` row
    /// addressing would overflow).
    pub fn push_zero_row(&mut self) -> usize {
        let r = self.rows();
        assert!(r < MAX_ROWS, "arena row count would exceed u32 addressing");
        self.words.resize(self.words.len() + self.width, 0);
        r
    }
}

/// Largest row count the flat `u32` edge/row addressing supports.
///
/// [`csr_from_edges`] and [`topo_order_chained`] store row indices and edge
/// counts as `u32`; anything above this bound would silently truncate, so
/// both assert it *before* allocating anything (cheap to unit-test without
/// materialising multi-gigabyte chains). Deposet construction converts the
/// same bound into a recoverable `TooManyStates` error.
pub const MAX_ROWS: usize = u32::MAX as usize;

impl fmt::Debug for ClockArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries((0..self.rows()).map(|r| self.row(r)))
            .finish()
    }
}

/// Build a CSR adjacency (offsets + flat source list) from `(dst, src)`
/// edge pairs over `rows` nodes. For node `r`, its sources are
/// `src[off[r] as usize .. off[r + 1] as usize]`, in input order.
pub fn csr_from_edges(rows: usize, edges: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    assert!(
        rows <= MAX_ROWS,
        "row count {rows} exceeds u32 addressing (max {MAX_ROWS})"
    );
    assert!(
        edges.len() <= MAX_ROWS,
        "edge count {} exceeds u32 addressing (max {MAX_ROWS})",
        edges.len()
    );
    let mut off = vec![0u32; rows + 1];
    for &(dst, _) in edges {
        off[dst as usize + 1] += 1;
    }
    for r in 0..rows {
        off[r + 1] += off[r];
    }
    let mut src = vec![0u32; edges.len()];
    let mut cursor: Vec<u32> = off[..rows].to_vec();
    for &(dst, s) in edges {
        src[cursor[dst as usize] as usize] = s;
        cursor[dst as usize] += 1;
    }
    (off, src)
}

/// Topological order of a computation's implicit state graph: the local
/// chains `proc_starts[p] .. proc_starts[p+1]` (edge `r → r+1` inside each
/// chain) plus explicit cross edges given as `(dst, src)` pairs — the same
/// pair format [`csr_from_edges`] consumes.
///
/// Returns `None` when the combined relation has a cycle (the computation
/// would not have an irreflexive `→`). Unlike a general adjacency-list
/// graph, this needs no per-node allocation: the chain edges stay implicit
/// and the cross edges live in one flat CSR, so the whole sort costs a
/// handful of `O(rows + edges)` arrays — it is the hot path of every
/// deposet construction.
pub fn topo_order_chained(proc_starts: &[usize], edges: &[(u32, u32)]) -> Option<Vec<u32>> {
    let _prof = pctl_prof::span("topo_order_chained");
    let rows = *proc_starts.last().expect("proc_starts has n+1 entries");
    assert!(
        rows <= MAX_ROWS,
        "row count {rows} exceeds u32 addressing (max {MAX_ROWS})"
    );
    assert!(
        edges.len() <= MAX_ROWS,
        "edge count {} exceeds u32 addressing (max {MAX_ROWS})",
        edges.len()
    );
    // Outgoing CSR keyed by *source* (csr_from_edges keys by destination).
    let mut out_off = vec![0u32; rows + 1];
    for &(_, src) in edges {
        out_off[src as usize + 1] += 1;
    }
    for r in 0..rows {
        out_off[r + 1] += out_off[r];
    }
    let mut out_dst = vec![0u32; edges.len()];
    let mut cursor: Vec<u32> = out_off[..rows].to_vec();
    for &(dst, src) in edges {
        out_dst[cursor[src as usize] as usize] = dst;
        cursor[src as usize] += 1;
    }
    // In-degrees: one implicit edge onto every non-initial chain row, plus
    // the cross edges. `chain_last` marks rows with no implicit successor.
    let mut indeg = vec![0u32; rows];
    let mut chain_last = vec![false; rows];
    for p in 0..proc_starts.len() - 1 {
        let (lo, hi) = (proc_starts[p], proc_starts[p + 1]);
        // Skip empty chains: `lo + 1 .. hi` would be a reversed range.
        if hi > lo {
            for d in &mut indeg[lo + 1..hi] {
                *d = 1;
            }
            chain_last[hi - 1] = true;
        }
    }
    for &(dst, _) in edges {
        indeg[dst as usize] += 1;
    }
    let mut stack: Vec<u32> = (0..rows as u32)
        .filter(|&r| indeg[r as usize] == 0)
        .collect();
    let mut order = Vec::with_capacity(rows);
    while let Some(u) = stack.pop() {
        order.push(u);
        let r = u as usize;
        if !chain_last[r] {
            indeg[r + 1] -= 1;
            if indeg[r + 1] == 0 {
                stack.push(u + 1);
            }
        }
        for &d in &out_dst[out_off[r] as usize..out_off[r + 1] as usize] {
            indeg[d as usize] -= 1;
            if indeg[d as usize] == 0 {
                stack.push(d);
            }
        }
    }
    (order.len() == rows).then_some(order)
}

/// Assign Fidge–Mattern clocks into a fresh zeroed `arena` by DP over a
/// topological `order` of the computation's state graph.
///
/// Rows are grouped per process: rows `proc_starts[p] .. proc_starts[p+1]`
/// are the states of process `p` in local (`≺`) order, so the local
/// predecessor of a non-initial row is simply `row - 1`. Cross-process
/// merge edges (message receipt, control edges) come in CSR form from
/// [`csr_from_edges`]. For every row, in topological order:
///
/// 1. start from the local predecessor's clock (`copy_row`), or from zero
///    for the initial state of the process (the arena starts zeroed);
/// 2. merge every CSR source row (component-wise max);
/// 3. tick the row's own process component.
///
/// No allocation happens inside the loop; the whole DP touches exactly the
/// `width · rows` words of the arena.
///
/// # Panics
/// Panics if the arena shape does not match `proc_starts`, or if it is not
/// zeroed where initial states expect it (debug builds assert shape only).
pub fn fill_fidge_mattern(
    arena: &mut ClockArena,
    proc_starts: &[usize],
    order: &[u32],
    merge_off: &[u32],
    merge_src: &[u32],
) {
    let _prof = pctl_prof::span("fill_fidge_mattern");
    let rows = *proc_starts.last().expect("proc_starts has n+1 entries");
    assert_eq!(arena.rows(), rows, "arena row count mismatch");
    assert_eq!(arena.width(), proc_starts.len() - 1, "arena width mismatch");
    assert_eq!(merge_off.len(), rows + 1, "CSR offsets length mismatch");
    // proc_of[r] = owning process of row r, precomputed once so the DP loop
    // does no binary searches.
    let mut proc_of = vec![0u32; rows];
    for p in 0..proc_starts.len() - 1 {
        for owner in &mut proc_of[proc_starts[p]..proc_starts[p + 1]] {
            *owner = p as u32;
        }
    }
    for &node in order {
        let r = node as usize;
        let p = proc_of[r] as usize;
        arena.fm_row(
            r,
            r == proc_starts[p],
            &merge_src[merge_off[r] as usize..merge_off[r + 1] as usize],
            &[],
            ProcessId(p as u32),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_is_one_flat_allocation() {
        let a = ClockArena::zeroed(3, 5);
        assert_eq!(a.width(), 3);
        assert_eq!(a.rows(), 5);
        assert_eq!(a.allocated_words(), 15);
        assert_eq!(a.row(4).entries(), &[0, 0, 0]);
    }

    #[test]
    fn copy_merge_tick() {
        let mut a = ClockArena::zeroed(3, 3);
        a.tick(0, ProcessId(0));
        a.tick(0, ProcessId(0));
        a.tick(1, ProcessId(1));
        // row2 := max(row0, row1) + tick(P2)
        a.copy_row(2, 0);
        a.merge_row(2, 1);
        a.tick(2, ProcessId(2));
        assert_eq!(a.row(2).entries(), &[2, 1, 1]);
        assert_eq!(a.word(2, ProcessId(0)), 2);
    }

    #[test]
    fn clock_ref_compares_like_vector_clock() {
        let mut a = ClockArena::zeroed(2, 2);
        a.tick(0, ProcessId(0));
        a.tick(1, ProcessId(0));
        a.merge_row(1, 0); // no-op: row1 already ≥ row0
        assert_eq!(a.row(0), a.row(1));
        assert_eq!(a.row(0), VectorClock::from_entries(vec![1, 0]));
        assert_eq!(a.row(0).causality(&a.row(1)), Causality::Equal);
        let owned = a.row(0).to_owned_clock();
        assert_eq!(owned.entries(), &[1, 0]);
        assert_eq!(format!("{:?}", a.row(0)), "⟨1,0⟩");
    }

    #[test]
    fn csr_groups_sources_by_destination() {
        let (off, src) = csr_from_edges(4, &[(2, 0), (1, 3), (2, 1)]);
        assert_eq!(off, vec![0, 0, 1, 3, 3]);
        assert_eq!(&src[off[2] as usize..off[3] as usize], &[0, 1]);
        assert_eq!(&src[off[1] as usize..off[2] as usize], &[3]);
        assert_eq!(off[0], off[1], "node 0 has no sources");
    }

    #[test]
    fn topo_order_chained_respects_chains_and_messages() {
        // P0: rows 0,1; P1: rows 2,3; message row 0 → row 3.
        let order = topo_order_chained(&[0, 2, 4], &[(3, 0)]).expect("acyclic");
        assert_eq!(order.len(), 4);
        let pos = |r: u32| order.iter().position(|&x| x == r).unwrap();
        assert!(pos(0) < pos(1), "chain edge 0→1");
        assert!(pos(2) < pos(3), "chain edge 2→3");
        assert!(pos(0) < pos(3), "message edge 0→3");
    }

    #[test]
    fn topo_order_chained_detects_cycles() {
        // Messages 1 → 2 and 3 → 0 close a cycle with the two chains.
        assert_eq!(topo_order_chained(&[0, 2, 4], &[(2, 1), (0, 3)]), None);
        // Degenerate: no rows at all.
        assert_eq!(topo_order_chained(&[0], &[]), Some(vec![]));
    }

    #[test]
    fn topo_order_chained_tolerates_zero_state_chains() {
        // P1 owns no rows: proc_starts [0, 2, 2, 3]. Used to slice the
        // reversed range `3..2` and panic instead of sorting.
        let order = topo_order_chained(&[0, 2, 2, 3], &[(2, 1)]).expect("acyclic");
        assert_eq!(order.len(), 3);
        let pos = |r: u32| order.iter().position(|&x| x == r).unwrap();
        assert!(pos(0) < pos(1), "chain edge 0→1");
        assert!(pos(1) < pos(2), "cross edge 1→2");
    }

    #[test]
    fn merge_from_takes_component_max_of_external_row() {
        let mut a = ClockArena::zeroed(3, 2);
        a.tick(1, ProcessId(0));
        a.merge_from(1, &[0, 5, 2]);
        assert_eq!(a.row(1).entries(), &[1, 5, 2]);
        a.merge_from(1, &[3, 1, 2]);
        assert_eq!(a.row(1).entries(), &[3, 5, 2]);
        assert_eq!(a.row(0).entries(), &[0, 0, 0], "other rows untouched");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_from_rejects_wrong_width() {
        let mut a = ClockArena::zeroed(3, 1);
        a.merge_from(0, &[1, 2]);
    }

    // The u32-addressing guards fire before any allocation, so these tests
    // never materialise the multi-gigabyte structures they guard against.
    #[test]
    #[should_panic(expected = "exceeds u32 addressing")]
    fn csr_rejects_untruncatable_row_counts() {
        let _ = csr_from_edges(MAX_ROWS + 1, &[]);
    }

    #[test]
    #[should_panic(expected = "exceeds u32 addressing")]
    fn topo_rejects_untruncatable_row_counts() {
        let _ = topo_order_chained(&[0, MAX_ROWS + 1], &[]);
    }

    #[test]
    fn fidge_mattern_two_procs_one_message() {
        // P0: rows 0,1; P1: rows 2,3; message from row 0 into row 3.
        let proc_starts = [0usize, 2, 4];
        let mut arena = ClockArena::zeroed(2, 4);
        let (off, src) = csr_from_edges(4, &[(3, 0)]);
        fill_fidge_mattern(&mut arena, &proc_starts, &[0, 2, 1, 3], &off, &src);
        assert_eq!(arena.row(0).entries(), &[1, 0]);
        assert_eq!(arena.row(1).entries(), &[2, 0]);
        assert_eq!(arena.row(2).entries(), &[0, 1]);
        assert_eq!(arena.row(3).entries(), &[1, 2]);
        assert_eq!(arena.allocated_words(), 2 * 4);
    }
}
