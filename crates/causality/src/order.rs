//! The four-way outcome of a causal comparison.

use serde::{Deserialize, Serialize};

/// Result of comparing two states/events under Lamport's happened-before
/// relation `→` (the paper's *causally precedes*).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Causality {
    /// The left operand causally precedes the right (`s → t`).
    Before,
    /// The right operand causally precedes the left (`t → s`).
    After,
    /// Neither precedes the other (`s ∥ t`, *concurrent*).
    Concurrent,
    /// Same state/event.
    Equal,
}

impl Causality {
    /// `s →= t`: before or equal (the paper's `s →̲ t`).
    #[inline]
    pub fn before_or_equal(self) -> bool {
        matches!(self, Causality::Before | Causality::Equal)
    }

    /// Concurrency test `s ∥ t`.
    #[inline]
    pub fn is_concurrent(self) -> bool {
        matches!(self, Causality::Concurrent)
    }

    /// Swap the operands.
    #[inline]
    pub fn reverse(self) -> Causality {
        match self {
            Causality::Before => Causality::After,
            Causality::After => Causality::Before,
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_is_involutive() {
        for c in [
            Causality::Before,
            Causality::After,
            Causality::Concurrent,
            Causality::Equal,
        ] {
            assert_eq!(c.reverse().reverse(), c);
        }
    }

    #[test]
    fn before_or_equal_semantics() {
        assert!(Causality::Before.before_or_equal());
        assert!(Causality::Equal.before_or_equal());
        assert!(!Causality::After.before_or_equal());
        assert!(!Causality::Concurrent.before_or_equal());
    }
}
