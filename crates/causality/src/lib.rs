//! Logical clocks and causal-order utilities for predicate control.
//!
//! This crate is the bottom layer of the predicate-control workspace. It
//! provides the vocabulary used by every other crate:
//!
//! * typed identifiers for processes, local states and messages ([`ids`]);
//! * Fidge–Mattern [vector clocks](vclock::VectorClock) and
//!   [Lamport clocks](lamport::LamportClock), the mechanisms used to answer
//!   `s → t` ("s causally precedes t", Lamport's *happened-before* relation)
//!   in O(1) / O(n);
//! * a columnar [clock arena](arena::ClockArena) that stores every clock of
//!   a computation in one flat `u32` allocation, plus the shared
//!   [clock-assignment DP](arena::fill_fidge_mattern) computation stores
//!   build on;
//! * a small directed-graph toolkit ([`graph`]) with Kahn topological sort,
//!   cycle extraction and bitset transitive closure. These are used to check
//!   that a control relation `C→` does not *interfere* with `→` (i.e. the
//!   extended causality stays an irreflexive partial order) and to recompute
//!   extended vector clocks after control edges are added.
//!
//! The paper this workspace reproduces — Tarafdar & Garg, *Predicate Control
//! for Active Debugging of Distributed Programs* (IPPS 1998) — models a
//! distributed computation as a *deposet* whose causal order `→` is the
//! transitive closure of the local-successor relation `im` and the message
//! relation `;`. Everything in this crate is agnostic of the deposet
//! structure; the deposet crate builds on top.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod graph;
pub mod ids;
pub mod lamport;
pub mod order;
pub mod vclock;

pub use arena::{ClockArena, ClockRef};
pub use graph::{CycleError, Dag};
pub use ids::{MsgId, ProcessId, StateId};
pub use lamport::LamportClock;
pub use order::Causality;
pub use vclock::VectorClock;
