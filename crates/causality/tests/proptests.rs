#![allow(clippy::needless_range_loop)]

//! Property-based tests for the causality substrate.

use pctl_causality::{Causality, Dag, ProcessId, VectorClock};
use proptest::prelude::*;

/// A random DAG given as edges (u, v) with u < v, guaranteeing acyclicity.
fn arb_dag(max_nodes: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..max_nodes).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 3).prop_map(move |raw| {
            raw.into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect::<Vec<_>>()
        });
        (Just(n), edges)
    })
}

/// Naive O(V³) reachability for ground truth.
fn naive_reach(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<bool>> {
    let mut r = vec![vec![false; n]; n];
    for &(u, v) in edges {
        r[u][v] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if r[i][k] {
                for j in 0..n {
                    r[i][j] |= r[k][j];
                }
            }
        }
    }
    r
}

proptest! {
    #[test]
    fn closure_matches_naive_reachability((n, edges) in arb_dag(40)) {
        let mut g = Dag::new(n);
        for &(u, v) in &edges {
            g.add_edge(u, v);
        }
        let closure = g.transitive_closure().expect("u<v edges are acyclic");
        let truth = naive_reach(n, &edges);
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(closure.reaches(u, v), truth[u][v], "u={} v={}", u, v);
            }
        }
    }

    #[test]
    fn topo_sort_respects_all_edges((n, edges) in arb_dag(40)) {
        let mut g = Dag::new(n);
        for &(u, v) in &edges {
            g.add_edge(u, v);
        }
        let order = g.topo_sort().expect("acyclic");
        prop_assert_eq!(order.len(), n);
        let mut pos = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for &(u, v) in &edges {
            prop_assert!(pos[u] < pos[v]);
        }
    }

    #[test]
    fn random_cycle_always_reported(n in 3usize..30, cycle_len in 2usize..8) {
        // Build a graph that is a chain plus one explicit cycle.
        let cycle_len = cycle_len.min(n);
        let mut g = Dag::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        // Close a back edge to form a cycle over the first `cycle_len` nodes.
        g.add_edge(cycle_len - 1, 0);
        let err = g.topo_sort().expect_err("graph has a cycle");
        // The witness must be a genuine directed cycle in the graph.
        prop_assert!(!err.cycle.is_empty());
        for w in err.cycle.windows(2) {
            prop_assert!(g.successors(w[0] as usize).contains(&w[1]));
        }
        let first = *err.cycle.first().unwrap();
        let last = *err.cycle.last().unwrap();
        prop_assert!(g.successors(last as usize).contains(&first));
    }

    #[test]
    fn vclock_merge_is_lub(a in proptest::collection::vec(0u32..50, 1..8)) {
        let n = a.len();
        let b: Vec<u32> = a.iter().map(|x| x.wrapping_mul(7) % 50).collect();
        let va = VectorClock::from_entries(a.clone());
        let vb = VectorClock::from_entries(b.clone());
        let mut m = va.clone();
        m.merge(&vb);
        // merge is an upper bound
        prop_assert!(va.dominated_by(&m));
        prop_assert!(vb.dominated_by(&m));
        // and the least one
        for i in 0..n {
            prop_assert_eq!(m.entries()[i], a[i].max(b[i]));
        }
    }

    #[test]
    fn vclock_causality_antisymmetric(a in proptest::collection::vec(0u32..10, 1..6)) {
        let b: Vec<u32> = a.iter().rev().cloned().collect();
        let va = VectorClock::from_entries(a);
        let vb = VectorClock::from_entries(b);
        let fwd = va.causality(&vb);
        let bwd = vb.causality(&va);
        prop_assert_eq!(fwd, bwd.reverse());
    }

    #[test]
    fn tick_strictly_advances(mut entries in proptest::collection::vec(0u32..100, 1..6), which in 0usize..6) {
        let which = which % entries.len();
        let before = VectorClock::from_entries(entries.clone());
        entries[which] += 1;
        let mut after = before.clone();
        after.tick(ProcessId(which as u32));
        prop_assert_eq!(after.entries(), entries.as_slice());
        prop_assert_eq!(before.causality(&after), Causality::Before);
    }
}
