//! End-to-end test of the perf-regression gate: `bench_suite --compare`
//! must exit zero against a healthy baseline and non-zero when a synthetic
//! regression is injected, and `BENCH_compare.json` must be well-formed.
//!
//! The test records its *own* baseline from a smoke run on this machine,
//! then compares a second smoke run against it — so the pass case only has
//! to absorb run-to-run noise (given a 300% threshold), not cross-machine
//! variance, and the fail case injects a 400% slowdown that no noise can
//! mask.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bench_suite() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_suite"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pctl_compare_gate_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

fn read_json(path: &Path) -> serde_json::Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

fn field(v: &serde_json::Value, key: &str) -> serde_json::Value {
    v.as_object()
        .unwrap_or_else(|| panic!("not an object: {v:?}"))
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| panic!("missing field {key}"))
}

#[test]
fn compare_gate_passes_on_own_baseline_and_fails_on_injected_regression() {
    let dir = tmpdir("e2e");
    let baseline = dir.join("self_baseline.json");

    // 1. Record a baseline from this machine.
    let out = bench_suite()
        .args(["--smoke", "--out-dir"])
        .arg(&dir)
        .arg("--write-baseline")
        .arg(&baseline)
        .output()
        .expect("run bench_suite");
    assert!(
        out.status.success(),
        "baseline run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(baseline.exists());

    // 2. Compare against it with a generous threshold: must pass (exit 0)
    //    even with --strict, i.e. the pass is genuine, not warn-only.
    let out = bench_suite()
        .args(["--smoke", "--strict", "--threshold-pct", "300", "--out-dir"])
        .arg(&dir)
        .arg("--compare")
        .arg(&baseline)
        .output()
        .expect("run bench_suite");
    assert!(
        out.status.success(),
        "healthy compare must exit 0:\nstdout:{}\nstderr:{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let cmp = read_json(&dir.join("BENCH_compare.json"));
    assert_eq!(field(&cmp, "bench").as_str(), Some("compare"));
    assert_eq!(field(&cmp, "passed"), serde_json::Value::Bool(true));

    // 3. Inject a 400% synthetic slowdown: the gate must fail (exit 2),
    //    and the machine-readable report must record why.
    let out = bench_suite()
        .args([
            "--smoke",
            "--strict",
            "--inject-slowdown",
            "400",
            "--out-dir",
        ])
        .arg(&dir)
        .arg("--compare")
        .arg(&baseline)
        .output()
        .expect("run bench_suite");
    assert!(
        !out.status.success(),
        "injected regression must exit non-zero:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert_eq!(out.status.code(), Some(2), "regression exit code is 2");
    let cmp = read_json(&dir.join("BENCH_compare.json"));
    assert_eq!(field(&cmp, "passed"), serde_json::Value::Bool(false));
    let cases = field(&cmp, "cases");
    let cases = cases.as_array().expect("cases array");
    // The self-written baseline carries shard, streaming, slicing, and
    // sim_core numbers, so those scenarios participate alongside the four
    // sweep scenarios.
    assert_eq!(
        cases.len(),
        12,
        "four sweep scenarios + shard construction + three streaming \
         scenarios + three slicing scenarios + sim_core throughput"
    );
    assert!(
        cases
            .iter()
            .any(|c| field(c, "scenario").as_str() == Some("shard_construct_p50_us")),
        "shard_sweep construction is gated: {cases:?}"
    );
    for scenario in [
        "streaming_append_events_per_sec",
        "streaming_append_p50_us",
        "streaming_query_p50_us",
        "slicing_construct_p50_us",
        "slicing_control_p50_us",
        "slicing_pruning_ratio",
        "sim_core_events_per_sec",
    ] {
        assert!(
            cases
                .iter()
                .any(|c| field(c, "scenario").as_str() == Some(scenario)),
            "scenario {scenario} is gated: {cases:?}"
        );
    }
    assert!(
        cases
            .iter()
            .all(|c| field(c, "regressed") == serde_json::Value::Bool(true)),
        "a 400% injected slowdown regresses every scenario: {cases:?}"
    );

    // 4. Without --strict, --smoke downgrades the same failure to a
    //    warning (CI smoke jobs stay green on incomparable workloads).
    let out = bench_suite()
        .args(["--smoke", "--inject-slowdown", "400", "--out-dir"])
        .arg(&dir)
        .arg("--compare")
        .arg(&baseline)
        .output()
        .expect("run bench_suite");
    assert!(
        out.status.success(),
        "smoke without --strict is warn-only:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("WARNING"),
        "warn-only mode still reports the regression"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_gate_rejects_missing_baseline() {
    let dir = tmpdir("missing");
    let out = bench_suite()
        .args(["--smoke", "--out-dir"])
        .arg(&dir)
        .args(["--compare", "/nonexistent/baseline.json"])
        .output()
        .expect("run bench_suite");
    assert_eq!(
        out.status.code(),
        Some(3),
        "unreadable baseline is a distinct failure:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}
