//! E4/E5: on-line strategy and the k-mutex baselines on the same workload
//! (wall time here is simulator throughput; the protocol metrics live in
//! `fig3_online`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pctl_core::online::PeerSelect;
use pctl_mutex::driver::WorkloadConfig;
use pctl_mutex::{run_antitoken, run_central, run_suzuki};
use std::time::Duration;

fn cfg(n: usize) -> WorkloadConfig {
    WorkloadConfig {
        processes: n,
        entries_per_process: 6,
        think: (20, 60),
        cs: (5, 15),
        seed: 1,
        delay: 10,
    }
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmutex");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(20);
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("anti-token", n), &n, |b, &n| {
            b.iter(|| run_antitoken(&cfg(n), PeerSelect::NextInRing));
        });
        group.bench_with_input(BenchmarkId::new("anti-token-bcast", n), &n, |b, &n| {
            b.iter(|| run_antitoken(&cfg(n), PeerSelect::Broadcast));
        });
        group.bench_with_input(BenchmarkId::new("centralized", n), &n, |b, &n| {
            b.iter(|| run_central(&cfg(n), n - 1));
        });
        group.bench_with_input(BenchmarkId::new("suzuki-kasami", n), &n, |b, &n| {
            b.iter(|| run_suzuki(&cfg(n), n - 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
