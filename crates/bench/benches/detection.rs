//! E3: detection substrate — weak conjunctive detection (possibly ¬B) and
//! strong overlap detection (definitely ¬B, the infeasibility oracle of
//! Lemma 2) scale polynomially where the lattice reference is exponential.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pctl_deposet::generator::{cs_workload, pipelined_workload, CsConfig};
use pctl_deposet::{DisjunctivePredicate, FalseIntervals};
use pctl_detect::{detect_disjunctive_violation, find_overlap};
use std::time::Duration;

fn bench_weak(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect/weak_conjunctive");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(20);
    for n in [4usize, 16, 64] {
        let cfg = CsConfig {
            processes: n,
            sections_per_process: 32,
            max_cs_len: 2,
            max_gap_len: 2,
        };
        let dep = cs_workload(&cfg, 3);
        let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| detect_disjunctive_violation(&dep, &pred));
        });
    }
    group.finish();
}

fn bench_strong(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect/strong_overlap");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(20);
    for n in [4usize, 16, 64] {
        let cfg = CsConfig {
            processes: n,
            sections_per_process: 32,
            max_cs_len: 2,
            max_gap_len: 2,
        };
        let dep = pipelined_workload(&cfg, 3);
        let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
        let iv = FalseIntervals::extract(&dep, &pred);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| find_overlap(&dep, &iv));
        });
    }
    group.finish();
}

fn bench_interval_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect/extract_intervals");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(20);
    for p in [32usize, 128, 512] {
        let cfg = CsConfig {
            processes: 16,
            sections_per_process: p,
            max_cs_len: 2,
            max_gap_len: 2,
        };
        let dep = cs_workload(&cfg, 3);
        let pred = DisjunctivePredicate::at_least_one_not(16, "cs");
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| FalseIntervals::extract(&dep, &pred));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_weak, bench_strong, bench_interval_extraction);
criterion_main!(benches);
