//! E2: off-line control algorithm scaling (paper Figure 2, Section 5).
//!
//! Series `offline/n/*` should grow ≈ quadratically, `offline/p/*`
//! ≈ linearly (the paper's O(n²p)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pctl_core::offline::{control_intervals, Engine, OfflineOptions, SelectPolicy};
use pctl_deposet::generator::{cs_workload, pipelined_workload, CsConfig};
use pctl_deposet::{DisjunctivePredicate, FalseIntervals};
use std::time::Duration;

fn opts() -> OfflineOptions {
    OfflineOptions {
        policy: SelectPolicy::Random { seed: 3 },
        engine: Engine::Optimized,
    }
}

fn bench_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline/n");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(20);
    for n in [4usize, 8, 16, 32, 64] {
        let cfg = CsConfig {
            processes: n,
            sections_per_process: 32,
            max_cs_len: 2,
            max_gap_len: 2,
        };
        let dep = cs_workload(&cfg, 7);
        let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
        let iv = FalseIntervals::extract(&dep, &pred);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| control_intervals(&dep, &iv, opts()));
        });
    }
    group.finish();
}

fn bench_p(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline/p");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(20);
    for p in [16usize, 64, 256] {
        let cfg = CsConfig {
            processes: 16,
            sections_per_process: p,
            max_cs_len: 2,
            max_gap_len: 2,
        };
        let dep = cs_workload(&cfg, 11);
        let pred = DisjunctivePredicate::at_least_one_not(16, "cs");
        let iv = FalseIntervals::extract(&dep, &pred);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| control_intervals(&dep, &iv, opts()));
        });
    }
    group.finish();
}

fn bench_message_rich(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline/pipelined_n");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(20);
    for n in [4usize, 16, 64] {
        let cfg = CsConfig {
            processes: n,
            sections_per_process: 16,
            max_cs_len: 2,
            max_gap_len: 2,
        };
        let dep = pipelined_workload(&cfg, 5);
        let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
        let iv = FalseIntervals::extract(&dep, &pred);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| control_intervals(&dep, &iv, opts()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_n, bench_p, bench_message_rich);
criterion_main!(benches);
