//! Controlled-replay throughput: re-executing traced computations with and
//! without control enforcement (E6's mechanism under load).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pctl_core::offline::{control_disjunctive, OfflineOptions};
use pctl_core::ControlRelation;
use pctl_deposet::generator::{cs_workload, CsConfig};
use pctl_deposet::DisjunctivePredicate;
use pctl_replay::{replay, ReplayConfig};
use std::time::Duration;

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(15);
    for n in [4usize, 8] {
        let cfg = CsConfig {
            processes: n,
            sections_per_process: 16,
            max_cs_len: 2,
            max_gap_len: 2,
        };
        let dep = cs_workload(&cfg, 5);
        let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
        let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("uncontrolled", n), &n, |b, _| {
            b.iter(|| replay(&dep, &ControlRelation::empty(), &ReplayConfig::default()));
        });
        group.bench_with_input(BenchmarkId::new("controlled", n), &n, |b, _| {
            b.iter(|| replay(&dep, &rel, &ReplayConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
