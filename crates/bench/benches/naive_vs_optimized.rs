//! E2 ablation: the paper's naive O(n³p) ValidPairs recomputation vs the
//! optimized O(n²p) incremental maintenance, plus the select-policy
//! ablation (First vs Random tie-breaking).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pctl_core::offline::{control_intervals, Engine, OfflineOptions, SelectPolicy};
use pctl_deposet::generator::{cs_workload, CsConfig};
use pctl_deposet::{DisjunctivePredicate, FalseIntervals};
use std::time::Duration;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(15);
    for n in [8usize, 16, 32] {
        let cfg = CsConfig {
            processes: n,
            sections_per_process: 32,
            max_cs_len: 2,
            max_gap_len: 2,
        };
        let dep = cs_workload(&cfg, 7);
        let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
        let iv = FalseIntervals::extract(&dep, &pred);
        for engine in [Engine::Optimized, Engine::Naive] {
            let opts = OfflineOptions {
                policy: SelectPolicy::Random { seed: 3 },
                engine,
            };
            group.bench_with_input(BenchmarkId::new(format!("{engine:?}"), n), &n, |b, _| {
                b.iter(|| control_intervals(&dep, &iv, opts));
            });
        }
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_policy");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(15);
    let n = 16usize;
    let cfg = CsConfig {
        processes: n,
        sections_per_process: 64,
        max_cs_len: 2,
        max_gap_len: 2,
    };
    let dep = cs_workload(&cfg, 9);
    let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
    let iv = FalseIntervals::extract(&dep, &pred);
    for (name, policy) in [
        ("first", SelectPolicy::First),
        ("random", SelectPolicy::Random { seed: 3 }),
    ] {
        let opts = OfflineOptions {
            policy,
            engine: Engine::Optimized,
        };
        group.bench_function(name, |b| {
            b.iter(|| control_intervals(&dep, &iv, opts));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_policies);
criterion_main!(benches);
