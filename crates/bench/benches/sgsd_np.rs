//! E1: NP-hardness in practice — exhaustive SGSD on the Figure-1 gadget
//! grows exponentially with the number of SAT variables, while DPLL solves
//! the same formulas in microseconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pctl_core::reduction::reduce_sat_to_sgsd;
use pctl_core::sat::{satisfiable, Cnf};
use pctl_core::sgsd::sgsd;
use std::time::Duration;

fn bench_sgsd(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgsd/exhaustive");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
    for m in [4usize, 6, 8] {
        let cnf = Cnf::random_ksat(m, (m as f64 * 4.3) as usize, 3, 42);
        let inst = reduce_sat_to_sgsd(&cnf);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| sgsd(&inst.deposet, &inst.predicate, usize::MAX).unwrap());
        });
    }
    group.finish();
}

fn bench_dpll(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgsd/dpll");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(30);
    for m in [4usize, 8, 16] {
        let cnf = Cnf::random_ksat(m, (m as f64 * 4.3) as usize, 3, 42);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| satisfiable(&cnf));
        });
    }
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgsd/reduce");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(30);
    for m in [8usize, 32, 128] {
        let cnf = Cnf::random_ksat(m, (m as f64 * 4.3) as usize, 3, 42);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| reduce_sat_to_sgsd(&cnf));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sgsd, bench_dpll, bench_reduction);
criterion_main!(benches);
