//! E9: causality substrate microbenchmarks — vector-clock construction,
//! O(1) `precedes` queries, and controlled-deposet extended-clock
//! recomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pctl_core::{ControlRelation, ControlledDeposet};
use pctl_deposet::generator::{random_deposet, RandomConfig};
use pctl_deposet::trace;
use std::time::Duration;

fn bench_clock_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("causality/clock_build");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(15);
    for events in [200usize, 2000, 20000] {
        let cfg = RandomConfig {
            processes: 8,
            events,
            send_prob: 0.3,
            flip_prob: 0.3,
        };
        let dep = random_deposet(&cfg, 1);
        // Round-trip through the trace forces full revalidation + clock
        // recomputation.
        let json = trace::to_json(&dep);
        group.bench_with_input(BenchmarkId::from_parameter(events), &events, |b, _| {
            b.iter(|| trace::from_json(&json).unwrap());
        });
    }
    group.finish();
}

fn bench_precedes(c: &mut Criterion) {
    let cfg = RandomConfig {
        processes: 8,
        events: 5000,
        send_prob: 0.3,
        flip_prob: 0.3,
    };
    let dep = random_deposet(&cfg, 2);
    let ids: Vec<_> = dep.state_ids().collect();
    c.bench_function("causality/precedes_1k_pairs", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..1000 {
                let s = ids[(i * 37) % ids.len()];
                let t = ids[(i * 101 + 13) % ids.len()];
                if dep.precedes(s, t) {
                    acc += 1;
                }
            }
            acc
        });
    });
}

fn bench_extended_clocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("causality/extended_clocks");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(15);
    for events in [500usize, 5000] {
        let cfg = RandomConfig {
            processes: 8,
            events,
            send_prob: 0.3,
            flip_prob: 0.3,
        };
        let dep = random_deposet(&cfg, 3);
        // A small cross-process control relation.
        let rel = ControlRelation::from_pairs([(
            dep.top(pctl_deposet::ProcessId(0)),
            dep.top(pctl_deposet::ProcessId(1)),
        )]);
        group.bench_with_input(BenchmarkId::from_parameter(events), &events, |b, _| {
            b.iter(|| ControlledDeposet::new(&dep, rel.clone()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_clock_build,
    bench_precedes,
    bench_extended_clocks
);
criterion_main!(benches);
