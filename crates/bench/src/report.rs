//! Machine-readable bench reports (`BENCH_offline.json`, `BENCH_sweep.json`).
//!
//! Every harness run of `bench_suite` persists its numbers in a stable JSON
//! schema so the perf trajectory of the repository is recorded PR over PR.
//! The schema is round-trip tested: a report is only written after it parses
//! back identically, so a committed `BENCH_*.json` is valid by construction
//! (the CI bench-smoke job re-validates on every push).

use pctl_obs::stats::Percentiles;
use serde::{Deserialize, Serialize};

/// Schema tag written into every report.
pub const SCHEMA: &str = "pctl-bench-v1";

/// Wall-time summary of repeated measurements, in microseconds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WallStats {
    /// Number of samples.
    pub reps: usize,
    /// Smallest sample (µs).
    pub min_us: u64,
    /// 50th percentile (µs, nearest-rank).
    pub p50_us: u64,
    /// 95th percentile (µs, nearest-rank).
    pub p95_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
}

impl WallStats {
    /// Summarize a series of wall times in microseconds.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn of(samples: &[u64]) -> WallStats {
        let p = Percentiles::of(samples).expect("at least one sample");
        WallStats {
            reps: p.count,
            min_us: p.min,
            p50_us: p.p50,
            p95_us: p.p95,
            max_us: p.max,
        }
    }
}

/// One measured configuration of the off-line control algorithm.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OfflineCase {
    /// Case label, e.g. `cs_n8_p16/optimized`.
    pub name: String,
    /// ValidPairs engine (`optimized` / `naive`).
    pub engine: String,
    /// Process count `n`.
    pub processes: usize,
    /// False intervals per process (the paper's `p`).
    pub intervals_per_process: usize,
    /// Total local states in the workload.
    pub states: usize,
    /// Wall-time distribution of (interval extraction + control synthesis).
    pub wall: WallStats,
    /// States processed per second at the median wall time.
    pub states_per_sec: f64,
    /// Synthesized control tuples (`|C→|`), 0 when infeasible.
    pub control_tuples: usize,
    /// Whether the instance was feasible.
    pub feasible: bool,
}

/// One sharded construction of the `shard_sweep` headline, measured
/// against the flat (single-shard) store on the same workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardCase {
    /// Shard count requested via `ShardPlan::with_shards`.
    pub shards: usize,
    /// Level-synchronised frontier rounds the fill needed.
    pub rounds: usize,
    /// Median wall time of sharded `from_parts_with_plan` (µs).
    pub construct_p50_us: u64,
    /// Median wall time of the sharded `IntervalIndex::build` (µs).
    pub index_p50_us: u64,
    /// `flat_construct_p50_us / construct_p50_us` — reported honestly; on a
    /// single-core runner this hovers at or below 1.
    pub speedup_vs_flat: f64,
    /// Arena words allocated per shard (the per-shard `n·S_shard` bound,
    /// mirrored from the `arena_allocated_words_shard*` profiler gauges).
    pub per_shard_words: Vec<usize>,
    /// Whether every clock and the interval index were bit-identical to the
    /// flat store (hard-asserted by the harness before writing).
    pub identical_to_flat: bool,
}

/// The `shard_sweep` headline: flat-vs-sharded construction and index
/// build on one clustered (pipelined, ring-message) workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardSweep {
    /// Workload label, e.g. `pipelined_n8_p48`.
    pub workload: String,
    /// Process count `n`.
    pub processes: usize,
    /// Total local states.
    pub states: usize,
    /// Median wall time of flat (`ShardPlan::single`) construction (µs).
    pub flat_construct_p50_us: u64,
    /// Median wall time of the flat `IntervalIndex::build` (µs).
    pub flat_index_p50_us: u64,
    /// One entry per measured shard count.
    pub cases: Vec<ShardCase>,
    /// All cases bit-identical to the flat store.
    pub deterministic: bool,
}

/// The pathological many-intervals `find_overlap` case: the worklist
/// search over `T` total intervals that the quadratic rescan made `O(T·n²)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverlapCase {
    /// Workload label.
    pub workload: String,
    /// Process count `n`.
    pub processes: usize,
    /// Total local states.
    pub states: usize,
    /// Total false intervals across all processes (the paper's `T`).
    pub intervals_total: usize,
    /// Wall-time distribution of `find_overlap` alone.
    pub wall: WallStats,
    /// Whether an overlapping set (infeasibility witness) exists.
    pub found: bool,
}

/// The `streaming` section: end-to-end daemon numbers over real TCP —
/// sustained append throughput into one session, and query latency while a
/// concurrent writer floods the same session. Gated by `--compare` against
/// baselines that carry the streaming fields; older baselines degrade to
/// the sweep/shard scenarios with a note.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamingBench {
    /// Workload label, e.g. `random_n4_e1200`.
    pub workload: String,
    /// Process count of the streamed computation.
    pub processes: usize,
    /// Events streamed (appends accepted by the daemon).
    pub events: usize,
    /// Sustained append throughput, events per second end to end
    /// (client → TCP → enqueue → ack), including any backoff sleeps.
    /// Measured with request telemetry enabled (the default serve config).
    pub append_events_per_sec: f64,
    /// Distribution of per-append round-trip latencies (µs).
    pub append_wall: WallStats,
    /// Distribution of `Detect` latencies issued while a concurrent
    /// writer streams into the same session (µs).
    pub query_under_load: WallStats,
    /// `Busy` bounces the writer's retry loops absorbed.
    pub busy_bounces: u64,
    /// Append throughput of the same workload with request telemetry
    /// disabled (`Config::telemetry = false`) — recorded so the cost of
    /// "observation is free" stays measured, not asserted. Absent in
    /// reports from harnesses predating daemon telemetry.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub append_events_per_sec_telemetry_off: Option<f64>,
    /// Append throughput of the same workload with the flight recorder
    /// disabled (`Config::flight = false`) — the control measurement
    /// behind the "<5% flight overhead" acceptance gate. Absent in
    /// reports from harnesses predating the flight recorder.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub append_events_per_sec_flight_off: Option<f64>,
}

/// The `slicing` section: what the computation-slicing fast path buys on a
/// regular (conjunctive-of-locals) predicate. `pruning_ratio` is the
/// honest headline — consistent cuts in the full lattice over consistent
/// cuts surviving in the slice, both counted by exhaustive (budgeted)
/// enumeration, so an "exponential pruning" claim is a measured number.
/// The sliced and unsliced timings answer the *same* question: find a
/// satisfying cut of the violation (the sliced path additionally
/// synthesizes the control relation; the unsliced path is the brute-force
/// lattice BFS, the only way to answer without a slice).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SlicingBench {
    /// Workload label, e.g. `cs_n4_p8`.
    pub workload: String,
    /// Process count of the sliced computation.
    pub processes: usize,
    /// Total local states.
    pub states: usize,
    /// Consistent cuts in the full lattice (exhaustive count).
    pub lattice_cuts: usize,
    /// Consistent cuts surviving in the slice (exhaustive count).
    pub slice_cuts: usize,
    /// `lattice_cuts / max(slice_cuts, 1)` — the lattice-pruning factor.
    pub pruning_ratio: f64,
    /// Local states surviving in the slice.
    pub surviving_states: usize,
    /// Join-irreducible equivalence classes in the slice skeleton.
    pub classes: usize,
    /// Wall-time distribution of `SlicedDeposet::build` alone (µs).
    pub slice_construct: WallStats,
    /// Wall-time of slice-then-delegate detect + control synthesis on a
    /// prebuilt engine (µs).
    pub sliced_control: WallStats,
    /// Wall-time of the brute-force unsliced answer: BFS over the full cut
    /// lattice until a satisfying cut is found (µs).
    pub unsliced_control: WallStats,
    /// Whether control synthesis found a feasible strategy.
    pub feasible: bool,
}

/// The `sim_core` section: raw throughput and live-state footprint of the
/// actor-model simulator engine on the `ring_flood` scenario (minimal
/// handler work — this measures the wheel/arena/mailbox machinery, not a
/// protocol). The full-size run generates ≥ 10⁷ events; the arena gauges
/// prove peak engine memory tracked the in-flight population instead of
/// the trace length.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimCoreBench {
    /// Workload label, e.g. `ring_flood_n64_f16_h9766`.
    pub workload: String,
    /// Ring size (process count).
    pub processes: usize,
    /// Events dispatched per run.
    pub events: u64,
    /// Wall-time distribution of full runs (µs).
    pub wall: WallStats,
    /// Events per second at the median wall time.
    pub events_per_sec: f64,
    /// Peak simultaneous in-flight payloads (arena high-water gauge).
    pub arena_high_water: u64,
    /// Arena slots actually allocated (slab footprint).
    pub arena_slots: u64,
    /// The workload's known in-flight population (`processes × fanout`) —
    /// the live-state yardstick the arena gauges are compared against.
    pub live_state_bound: u64,
    /// Peak single-inbox depth within a timestep.
    pub inbox_high_water: u64,
    /// Peak pending events in the scheduler (wheel + overflow).
    pub wheel_high_water: u64,
    /// Distinct simulated times that dispatched at least one event.
    pub timesteps: u64,
    /// `arena_high_water ≤ 2 × live_state_bound` (hard-asserted by the
    /// harness before writing — recorded so the report is self-describing).
    pub memory_bounded: bool,
}

/// The `BENCH_offline.json` payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OfflineReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Always `"offline"`.
    pub bench: String,
    /// Whether the run used `--smoke` sizes.
    pub smoke: bool,
    /// Measured cases.
    pub cases: Vec<OfflineCase>,
    /// Sharded-store headline (absent in reports from older harnesses).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard_sweep: Option<ShardSweep>,
    /// Pathological `find_overlap` case (absent in older reports).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub overlap: Option<OverlapCase>,
    /// Streaming-daemon section (absent in reports from older harnesses).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub streaming: Option<StreamingBench>,
    /// Computation-slicing section (absent in reports from harnesses
    /// predating the regular-predicate layer).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slicing: Option<SlicingBench>,
    /// Simulator-engine section (absent in reports from harnesses
    /// predating the actor-model core).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sim_core: Option<SimCoreBench>,
}

/// One execution mode of the multi-seed sweep bench.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepMode {
    /// `sequential` or `parallel`.
    pub mode: String,
    /// Worker threads used (1 for sequential).
    pub threads: usize,
    /// Distribution of per-seed wall times (construction + sweep).
    pub per_seed: WallStats,
    /// End-to-end wall time for the whole sweep (ms).
    pub total_ms: f64,
    /// Local states processed per second over the whole sweep.
    pub states_per_sec: f64,
}

/// Recorded numbers from a previous run used as the comparison baseline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// Free-form label of when/what was recorded.
    pub recorded: String,
    /// End-to-end sequential wall time of the baseline run (ms).
    pub total_ms: f64,
    /// Baseline throughput (states/sec).
    pub states_per_sec: f64,
    /// Baseline per-seed p50 (µs).
    pub per_seed_p50_us: u64,
    /// Baseline per-seed p95 (µs).
    pub per_seed_p95_us: u64,
    /// Baseline sharded-construction p50 of the `shard_sweep` headline
    /// (µs); absent in baselines recorded before the sharded store.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard_construct_p50_us: Option<u64>,
    /// Baseline sustained append throughput of the streaming section
    /// (events/s); absent in baselines frozen before streaming scenarios.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub streaming_append_events_per_sec: Option<f64>,
    /// Baseline per-append round-trip p50 (µs).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub streaming_append_p50_us: Option<u64>,
    /// Baseline `Detect`-under-load p50 (µs).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub streaming_query_p50_us: Option<u64>,
    /// Baseline slice-construction p50 of the `slicing` section (µs);
    /// absent in baselines frozen before the regular-predicate layer.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slicing_construct_p50_us: Option<u64>,
    /// Baseline slice-then-delegate detect + control p50 (µs).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slicing_control_p50_us: Option<u64>,
    /// Baseline lattice-pruning ratio (higher is better; deterministic for
    /// a fixed workload, so any drop signals a slicing-engine change).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slicing_pruning_ratio: Option<f64>,
    /// Baseline simulator-engine throughput of the `sim_core` section
    /// (events/s); absent in baselines frozen before the actor core.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sim_core_events_per_sec: Option<f64>,
}

/// The `BENCH_sweep.json` payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Always `"sweep"`.
    pub bench: String,
    /// Whether the run used `--smoke` sizes.
    pub smoke: bool,
    /// Number of seeds swept.
    pub seeds: usize,
    /// Process count per seed.
    pub processes: usize,
    /// Events per seed workload.
    pub events_per_seed: usize,
    /// Total local states across all seeds.
    pub states_total: usize,
    /// Sequential numbers (this is the pre-refactor-comparable code path).
    pub sequential: SweepMode,
    /// Parallel numbers (std::thread::scope fan-out, deterministic merge).
    pub parallel: SweepMode,
    /// Whether the parallel sweep produced bit-identical results to the
    /// sequential sweep (hard-asserted by the harness before writing).
    pub deterministic: bool,
    /// Recorded pre-refactor baseline, when available on disk.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub baseline: Option<Baseline>,
    /// `baseline.total_ms / sequential.total_ms`, when a baseline exists.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub speedup_vs_baseline: Option<f64>,
}

/// One scenario of a baseline comparison (`BENCH_compare.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompareCase {
    /// Scenario label (`sweep_total_ms`, `sweep_states_per_sec`, …).
    pub scenario: String,
    /// Measurement unit (`ms`, `us`, `states/s`).
    pub unit: String,
    /// Value recorded in the committed baseline.
    pub baseline: f64,
    /// Value measured by this run (after any injected slowdown).
    pub current: f64,
    /// Whether smaller values are better for this scenario.
    pub lower_is_better: bool,
    /// Signed percent change in the *worse* direction: positive means the
    /// current run is worse than the baseline by that much.
    pub worse_pct: f64,
    /// `worse_pct > threshold_pct`.
    pub regressed: bool,
}

/// The `BENCH_compare.json` payload: structured per-scenario deltas of the
/// current run against a committed [`Baseline`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompareReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Always `"compare"`.
    pub bench: String,
    /// Whether the run used `--smoke` sizes (smoke numbers are not
    /// comparable to a full-size baseline, so the gate only warns).
    pub smoke: bool,
    /// Path of the baseline file compared against.
    pub baseline_path: String,
    /// Free-form label of the baseline (its `recorded` field).
    pub baseline_recorded: String,
    /// Regression threshold in percent (a scenario regresses when it is
    /// more than this much worse than the baseline).
    pub threshold_pct: f64,
    /// Synthetic slowdown injected into the current numbers (percent);
    /// non-zero only in gate self-tests.
    pub injected_slowdown_pct: f64,
    /// Per-scenario deltas.
    pub cases: Vec<CompareCase>,
    /// Number of regressed scenarios.
    pub regressions: usize,
    /// `regressions == 0`.
    pub passed: bool,
}

impl CompareReport {
    /// Build the comparison between a committed [`Baseline`] and the
    /// current sequential sweep numbers, applying `inject_slowdown_pct`
    /// (a synthetic worsening, for gate self-tests) to the current values
    /// first.
    #[allow(clippy::too_many_arguments)]
    pub fn of(
        baseline: &Baseline,
        baseline_path: &str,
        current: &SweepMode,
        shard_construct_p50_us: Option<u64>,
        streaming: Option<&StreamingBench>,
        slicing: Option<&SlicingBench>,
        sim_core: Option<&SimCoreBench>,
        threshold_pct: f64,
        inject_slowdown_pct: f64,
        smoke: bool,
    ) -> CompareReport {
        let slow = 1.0 + inject_slowdown_pct / 100.0;
        let case = |scenario: &str, unit: &str, base: f64, cur: f64, lower: bool| {
            // Injection always worsens: inflate lower-is-better values,
            // deflate higher-is-better ones.
            let cur = if lower { cur * slow } else { cur / slow };
            let worse_pct = if base.abs() < 1e-12 {
                0.0
            } else if lower {
                (cur - base) / base * 100.0
            } else {
                (base - cur) / base * 100.0
            };
            CompareCase {
                scenario: scenario.into(),
                unit: unit.into(),
                baseline: base,
                current: cur,
                lower_is_better: lower,
                worse_pct,
                regressed: worse_pct > threshold_pct,
            }
        };
        let mut cases = vec![
            case(
                "sweep_total_ms",
                "ms",
                baseline.total_ms,
                current.total_ms,
                true,
            ),
            case(
                "sweep_states_per_sec",
                "states/s",
                baseline.states_per_sec,
                current.states_per_sec,
                false,
            ),
            case(
                "sweep_per_seed_p50_us",
                "us",
                baseline.per_seed_p50_us as f64,
                current.per_seed.p50_us as f64,
                true,
            ),
            case(
                "sweep_per_seed_p95_us",
                "us",
                baseline.per_seed_p95_us as f64,
                current.per_seed.p95_us as f64,
                true,
            ),
        ];
        // The shard scenario only exists when both sides carry it: baselines
        // recorded before the sharded store compare on the four sweep
        // scenarios exactly as before.
        if let (Some(base), Some(cur)) = (baseline.shard_construct_p50_us, shard_construct_p50_us) {
            cases.push(case(
                "shard_construct_p50_us",
                "us",
                base as f64,
                cur as f64,
                true,
            ));
        }
        // Streaming scenarios: same both-sides rule. A baseline frozen
        // before the streaming section compares on the scenarios above
        // exactly as before; once both sides carry streaming numbers the
        // daemon path is gated like any other hot path.
        if let Some(s) = streaming {
            if let Some(base) = baseline.streaming_append_events_per_sec {
                cases.push(case(
                    "streaming_append_events_per_sec",
                    "events/s",
                    base,
                    s.append_events_per_sec,
                    false,
                ));
            }
            if let Some(base) = baseline.streaming_append_p50_us {
                cases.push(case(
                    "streaming_append_p50_us",
                    "us",
                    base as f64,
                    s.append_wall.p50_us as f64,
                    true,
                ));
            }
            if let Some(base) = baseline.streaming_query_p50_us {
                cases.push(case(
                    "streaming_query_p50_us",
                    "us",
                    base as f64,
                    s.query_under_load.p50_us as f64,
                    true,
                ));
            }
        }
        // Slicing scenarios: same both-sides rule again. The pruning ratio
        // is higher-is-better — a drop means the slice got *less* selective
        // on the identical workload, which is a correctness smell as much
        // as a perf one.
        if let Some(sl) = slicing {
            if let Some(base) = baseline.slicing_construct_p50_us {
                cases.push(case(
                    "slicing_construct_p50_us",
                    "us",
                    base as f64,
                    sl.slice_construct.p50_us as f64,
                    true,
                ));
            }
            if let Some(base) = baseline.slicing_control_p50_us {
                cases.push(case(
                    "slicing_control_p50_us",
                    "us",
                    base as f64,
                    sl.sliced_control.p50_us as f64,
                    true,
                ));
            }
            if let Some(base) = baseline.slicing_pruning_ratio {
                cases.push(case(
                    "slicing_pruning_ratio",
                    "ratio",
                    base,
                    sl.pruning_ratio,
                    false,
                ));
            }
        }
        // Simulator-engine scenario: both-sides rule once more. Throughput
        // is higher-is-better; the memory gauges are hard-asserted by the
        // harness rather than thresholded (a bound is pass/fail, not a
        // percentage).
        if let Some(sc) = sim_core {
            if let Some(base) = baseline.sim_core_events_per_sec {
                cases.push(case(
                    "sim_core_events_per_sec",
                    "events/s",
                    base,
                    sc.events_per_sec,
                    false,
                ));
            }
        }
        let regressions = cases.iter().filter(|c| c.regressed).count();
        CompareReport {
            schema: SCHEMA.into(),
            bench: "compare".into(),
            smoke,
            baseline_path: baseline_path.into(),
            baseline_recorded: baseline.recorded.clone(),
            threshold_pct,
            injected_slowdown_pct: inject_slowdown_pct,
            cases,
            regressions,
            passed: regressions == 0,
        }
    }
}

/// Serialize a report, validate it by parsing it back, then write it.
///
/// Returns the serialized JSON. Panics (and therefore fails the bench job)
/// if the payload does not round-trip — a committed report is valid by
/// construction.
pub fn write_validated<T>(path: &std::path::Path, report: &T) -> std::io::Result<String>
where
    T: Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    let back: T = serde_json::from_str(&json).expect("report JSON parses back");
    assert_eq!(&back, report, "report JSON must round-trip losslessly");
    std::fs::write(path, format!("{json}\n"))?;
    Ok(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_stats_summarizes() {
        let w = WallStats::of(&[5, 1, 9, 3, 7]);
        assert_eq!(w.reps, 5);
        assert_eq!(w.min_us, 1);
        assert_eq!(w.p50_us, 5);
        assert_eq!(w.max_us, 9);
    }

    #[test]
    fn sweep_report_roundtrips() {
        let mode = |m: &str| SweepMode {
            mode: m.into(),
            threads: 1,
            per_seed: WallStats::of(&[10, 20]),
            total_ms: 0.03,
            states_per_sec: 1e6,
        };
        let r = SweepReport {
            schema: SCHEMA.into(),
            bench: "sweep".into(),
            smoke: true,
            seeds: 2,
            processes: 4,
            events_per_seed: 100,
            states_total: 208,
            sequential: mode("sequential"),
            parallel: mode("parallel"),
            deterministic: true,
            baseline: Some(Baseline {
                recorded: "pre-refactor".into(),
                total_ms: 0.09,
                states_per_sec: 4e5,
                per_seed_p50_us: 30,
                per_seed_p95_us: 60,
                shard_construct_p50_us: None,
                streaming_append_events_per_sec: None,
                streaming_append_p50_us: None,
                streaming_query_p50_us: None,
                slicing_construct_p50_us: None,
                slicing_control_p50_us: None,
                slicing_pruning_ratio: None,
                sim_core_events_per_sec: None,
            }),
            speedup_vs_baseline: Some(3.0),
        };
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    fn baseline() -> Baseline {
        Baseline {
            recorded: "test".into(),
            total_ms: 100.0,
            states_per_sec: 1e6,
            per_seed_p50_us: 1000,
            per_seed_p95_us: 2000,
            shard_construct_p50_us: None,
            streaming_append_events_per_sec: None,
            streaming_append_p50_us: None,
            streaming_query_p50_us: None,
            slicing_construct_p50_us: None,
            slicing_control_p50_us: None,
            slicing_pruning_ratio: None,
            sim_core_events_per_sec: None,
        }
    }

    fn mode(total_ms: f64, sps: f64, p50: u64, p95: u64) -> SweepMode {
        SweepMode {
            mode: "sequential".into(),
            threads: 1,
            per_seed: WallStats {
                reps: 1,
                min_us: p50,
                p50_us: p50,
                p95_us: p95,
                max_us: p95,
            },
            total_ms,
            states_per_sec: sps,
        }
    }

    #[test]
    fn compare_passes_within_threshold_in_both_directions() {
        // 10% worse on time, 10% worse on throughput: under a 25% gate.
        let cur = mode(110.0, 0.9e6, 1100, 2200);
        let r = CompareReport::of(
            &baseline(),
            "b.json",
            &cur,
            None,
            None,
            None,
            None,
            25.0,
            0.0,
            false,
        );
        assert!(r.passed, "{r:?}");
        assert_eq!(r.regressions, 0);
        assert_eq!(r.cases.len(), 4);
        // A faster run must never "regress" the lower-is-better scenarios.
        let fast = mode(50.0, 2e6, 500, 900);
        let r = CompareReport::of(
            &baseline(),
            "b.json",
            &fast,
            None,
            None,
            None,
            None,
            25.0,
            0.0,
            false,
        );
        assert!(r.passed);
        assert!(r.cases.iter().all(|c| c.worse_pct < 0.0), "{r:?}");
    }

    #[test]
    fn compare_flags_regressions_past_threshold() {
        // 50% slower end to end.
        let cur = mode(150.0, 0.6e6, 1600, 3100);
        let r = CompareReport::of(
            &baseline(),
            "b.json",
            &cur,
            None,
            None,
            None,
            None,
            25.0,
            0.0,
            false,
        );
        assert!(!r.passed);
        assert_eq!(r.regressions, 4, "{r:?}");
        let c = &r.cases[0];
        assert_eq!(c.scenario, "sweep_total_ms");
        assert!((c.worse_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn injected_slowdown_worsens_every_scenario() {
        // Bit-identical to the baseline, but with a 100% injected slowdown:
        // every scenario must trip a 25% gate, including the
        // higher-is-better throughput one (which gets *divided*).
        let cur = mode(100.0, 1e6, 1000, 2000);
        let clean = CompareReport::of(
            &baseline(),
            "b.json",
            &cur,
            None,
            None,
            None,
            None,
            25.0,
            0.0,
            false,
        );
        assert!(clean.passed);
        let slowed = CompareReport::of(
            &baseline(),
            "b.json",
            &cur,
            None,
            None,
            None,
            None,
            25.0,
            100.0,
            false,
        );
        assert!(!slowed.passed);
        assert_eq!(slowed.regressions, 4, "{slowed:?}");
        assert!((slowed.injected_slowdown_pct - 100.0).abs() < 1e-12);
    }

    #[test]
    fn compare_report_roundtrips() {
        let cur = mode(150.0, 0.6e6, 1600, 3100);
        let r = CompareReport::of(
            &baseline(),
            "b.json",
            &cur,
            None,
            None,
            None,
            None,
            25.0,
            0.0,
            true,
        );
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: CompareReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn shard_scenario_requires_both_sides() {
        let cur = mode(100.0, 1e6, 1000, 2000);
        // Old baseline, new harness: no shard case.
        let r = CompareReport::of(
            &baseline(),
            "b.json",
            &cur,
            Some(500),
            None,
            None,
            None,
            25.0,
            0.0,
            false,
        );
        assert_eq!(r.cases.len(), 4, "{r:?}");
        // Both sides carry shard numbers: fifth scenario participates.
        let mut b = baseline();
        b.shard_construct_p50_us = Some(400);
        let r = CompareReport::of(
            &b,
            "b.json",
            &cur,
            Some(500),
            None,
            None,
            None,
            25.0,
            0.0,
            false,
        );
        assert_eq!(r.cases.len(), 5);
        let c = r.cases.last().unwrap();
        assert_eq!(c.scenario, "shard_construct_p50_us");
        assert!((c.worse_pct - 25.0).abs() < 1e-9, "{c:?}");
        assert!(!c.regressed, "exactly at threshold is not past it");
        // And it regresses past the gate like any other scenario.
        let r = CompareReport::of(
            &b,
            "b.json",
            &cur,
            Some(600),
            None,
            None,
            None,
            25.0,
            0.0,
            false,
        );
        assert!(!r.passed);
        assert_eq!(r.regressions, 1, "{r:?}");
        // A baseline with shard numbers but an old-harness run without them
        // also degrades to four scenarios.
        let r = CompareReport::of(&b, "b.json", &cur, None, None, None, None, 25.0, 0.0, false);
        assert_eq!(r.cases.len(), 4);
    }

    #[test]
    fn baseline_without_shard_field_parses() {
        // Committed pre-shard baselines must keep deserializing.
        let json = r#"{"recorded":"old","total_ms":1.0,"states_per_sec":2.0,
                       "per_seed_p50_us":3,"per_seed_p95_us":4}"#;
        let b: Baseline = serde_json::from_str(json).unwrap();
        assert_eq!(b.shard_construct_p50_us, None);
        assert_eq!(b.streaming_append_events_per_sec, None);
        assert_eq!(b.streaming_append_p50_us, None);
        assert_eq!(b.streaming_query_p50_us, None);
        assert_eq!(b.slicing_construct_p50_us, None);
        assert_eq!(b.slicing_control_p50_us, None);
        assert_eq!(b.slicing_pruning_ratio, None);
        assert_eq!(b.sim_core_events_per_sec, None);
    }

    fn streaming_section(eps: f64, append_p50: u64, query_p50: u64) -> StreamingBench {
        StreamingBench {
            workload: "random_n4_e1200".into(),
            processes: 4,
            events: 1200,
            append_events_per_sec: eps,
            append_wall: WallStats {
                reps: 3,
                min_us: append_p50 / 2,
                p50_us: append_p50,
                p95_us: append_p50 * 2,
                max_us: append_p50 * 3,
            },
            query_under_load: WallStats {
                reps: 3,
                min_us: query_p50 / 2,
                p50_us: query_p50,
                p95_us: query_p50 * 2,
                max_us: query_p50 * 3,
            },
            busy_bounces: 0,
            append_events_per_sec_telemetry_off: Some(eps * 1.02),
            append_events_per_sec_flight_off: Some(eps * 1.01),
        }
    }

    #[test]
    fn streaming_scenarios_require_both_sides() {
        let cur = mode(100.0, 1e6, 1000, 2000);
        let s = streaming_section(20_000.0, 40, 800);
        // Pre-streaming baseline: no streaming cases even though the run
        // measured them.
        let r = CompareReport::of(
            &baseline(),
            "b.json",
            &cur,
            None,
            Some(&s),
            None,
            None,
            25.0,
            0.0,
            false,
        );
        assert_eq!(r.cases.len(), 4, "{r:?}");
        // Frozen streaming baseline: all three scenarios participate.
        let mut b = baseline();
        b.streaming_append_events_per_sec = Some(20_000.0);
        b.streaming_append_p50_us = Some(40);
        b.streaming_query_p50_us = Some(800);
        let r = CompareReport::of(
            &b,
            "b.json",
            &cur,
            None,
            Some(&s),
            None,
            None,
            25.0,
            0.0,
            false,
        );
        assert_eq!(r.cases.len(), 7, "{r:?}");
        assert!(r.passed, "identical streaming numbers pass: {r:?}");
        let names: Vec<&str> = r.cases.iter().map(|c| c.scenario.as_str()).collect();
        assert!(names.contains(&"streaming_append_events_per_sec"));
        assert!(names.contains(&"streaming_append_p50_us"));
        assert!(names.contains(&"streaming_query_p50_us"));
        // Throughput is higher-is-better: halving it regresses past 25%.
        let slow = streaming_section(10_000.0, 40, 800);
        let r = CompareReport::of(
            &b,
            "b.json",
            &cur,
            None,
            Some(&slow),
            None,
            None,
            25.0,
            0.0,
            false,
        );
        assert!(!r.passed);
        assert_eq!(r.regressions, 1, "{r:?}");
        let c = r
            .cases
            .iter()
            .find(|c| c.scenario == "streaming_append_events_per_sec")
            .unwrap();
        assert!(c.regressed && !c.lower_is_better, "{c:?}");
        // Injected slowdown worsens streaming scenarios too (gate
        // self-test covers the daemon path).
        let r = CompareReport::of(
            &b,
            "b.json",
            &cur,
            None,
            Some(&s),
            None,
            None,
            25.0,
            100.0,
            false,
        );
        assert_eq!(r.regressions, 7, "{r:?}");
    }

    #[test]
    fn offline_report_roundtrips() {
        let r = OfflineReport {
            schema: SCHEMA.into(),
            bench: "offline".into(),
            smoke: false,
            cases: vec![OfflineCase {
                name: "cs_n4_p8/optimized".into(),
                engine: "optimized".into(),
                processes: 4,
                intervals_per_process: 8,
                states: 321,
                wall: WallStats::of(&[100]),
                states_per_sec: 3.21e6,
                control_tuples: 12,
                feasible: true,
            }],
            shard_sweep: Some(ShardSweep {
                workload: "pipelined_n8_p48".into(),
                processes: 8,
                states: 3000,
                flat_construct_p50_us: 120,
                flat_index_p50_us: 40,
                cases: vec![ShardCase {
                    shards: 4,
                    rounds: 3,
                    construct_p50_us: 130,
                    index_p50_us: 45,
                    speedup_vs_flat: 0.92,
                    per_shard_words: vec![6000, 6000, 6000, 6000],
                    identical_to_flat: true,
                }],
                deterministic: true,
            }),
            overlap: Some(OverlapCase {
                workload: "pipelined_n8_p256".into(),
                processes: 8,
                states: 16000,
                intervals_total: 2048,
                wall: WallStats::of(&[55]),
                found: false,
            }),
            streaming: None,
            slicing: None,
            sim_core: None,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: OfflineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn offline_report_without_shard_sections_parses() {
        // Reports written by older harnesses omit the optional sections.
        let json = r#"{"schema":"pctl-bench-v1","bench":"offline","smoke":true,"cases":[]}"#;
        let r: OfflineReport = serde_json::from_str(json).unwrap();
        assert_eq!(r.shard_sweep, None);
        assert_eq!(r.overlap, None);
        assert_eq!(r.streaming, None);
        assert_eq!(r.slicing, None);
        assert_eq!(r.sim_core, None);
    }

    #[test]
    fn streaming_section_roundtrips() {
        let r = OfflineReport {
            schema: SCHEMA.into(),
            bench: "offline".into(),
            smoke: true,
            cases: vec![],
            shard_sweep: None,
            overlap: None,
            streaming: Some(StreamingBench {
                workload: "random_n4_e1200".into(),
                processes: 4,
                events: 1200,
                append_events_per_sec: 25_000.0,
                append_wall: WallStats::of(&[30, 45, 90]),
                query_under_load: WallStats::of(&[400, 900]),
                busy_bounces: 3,
                append_events_per_sec_telemetry_off: Some(26_500.0),
                append_events_per_sec_flight_off: Some(26_200.0),
            }),
            slicing: None,
            sim_core: None,
        };
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: OfflineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    fn slicing_section(construct_p50: u64, control_p50: u64, ratio: f64) -> SlicingBench {
        SlicingBench {
            workload: "cs_n4_p6".into(),
            processes: 4,
            states: 100,
            lattice_cuts: 5000,
            slice_cuts: (5000.0 / ratio) as usize,
            pruning_ratio: ratio,
            surviving_states: 40,
            classes: 30,
            slice_construct: WallStats {
                reps: 5,
                min_us: construct_p50 / 2,
                p50_us: construct_p50,
                p95_us: construct_p50 * 2,
                max_us: construct_p50 * 3,
            },
            sliced_control: WallStats {
                reps: 5,
                min_us: control_p50 / 2,
                p50_us: control_p50,
                p95_us: control_p50 * 2,
                max_us: control_p50 * 3,
            },
            unsliced_control: WallStats::of(&[control_p50 * 20]),
            feasible: true,
        }
    }

    #[test]
    fn slicing_section_roundtrips() {
        let r = OfflineReport {
            schema: SCHEMA.into(),
            bench: "offline".into(),
            smoke: true,
            cases: vec![],
            shard_sweep: None,
            overlap: None,
            streaming: None,
            slicing: Some(slicing_section(120, 60, 25.0)),
            sim_core: None,
        };
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: OfflineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn slicing_scenarios_require_both_sides() {
        let cur = mode(100.0, 1e6, 1000, 2000);
        let sl = slicing_section(120, 60, 25.0);
        // Pre-slicing baseline: no slicing cases even though the run
        // measured them.
        let r = CompareReport::of(
            &baseline(),
            "b.json",
            &cur,
            None,
            None,
            Some(&sl),
            None,
            25.0,
            0.0,
            false,
        );
        assert_eq!(r.cases.len(), 4, "{r:?}");
        // Re-frozen baseline: all three slicing scenarios participate.
        let mut b = baseline();
        b.slicing_construct_p50_us = Some(120);
        b.slicing_control_p50_us = Some(60);
        b.slicing_pruning_ratio = Some(25.0);
        let r = CompareReport::of(
            &b,
            "b.json",
            &cur,
            None,
            None,
            Some(&sl),
            None,
            25.0,
            0.0,
            false,
        );
        assert_eq!(r.cases.len(), 7, "{r:?}");
        assert!(r.passed, "identical slicing numbers pass: {r:?}");
        let names: Vec<&str> = r.cases.iter().map(|c| c.scenario.as_str()).collect();
        assert!(names.contains(&"slicing_construct_p50_us"));
        assert!(names.contains(&"slicing_control_p50_us"));
        assert!(names.contains(&"slicing_pruning_ratio"));
        // The pruning ratio is higher-is-better: a slice that stops
        // pruning (ratio collapses toward 1) regresses the gate.
        let lax = slicing_section(120, 60, 5.0);
        let r = CompareReport::of(
            &b,
            "b.json",
            &cur,
            None,
            None,
            Some(&lax),
            None,
            25.0,
            0.0,
            false,
        );
        assert!(!r.passed);
        assert_eq!(r.regressions, 1, "{r:?}");
        let c = r
            .cases
            .iter()
            .find(|c| c.scenario == "slicing_pruning_ratio")
            .unwrap();
        assert!(c.regressed && !c.lower_is_better, "{c:?}");
        // An old-harness run without a slicing section degrades to the
        // four sweep scenarios even against a slicing-aware baseline.
        let r = CompareReport::of(&b, "b.json", &cur, None, None, None, None, 25.0, 0.0, false);
        assert_eq!(r.cases.len(), 4);
        // Injected slowdown worsens slicing scenarios too.
        let r = CompareReport::of(
            &b,
            "b.json",
            &cur,
            None,
            None,
            Some(&sl),
            None,
            25.0,
            100.0,
            false,
        );
        assert_eq!(r.regressions, 7, "{r:?}");
    }

    fn sim_core_section(eps: f64) -> SimCoreBench {
        SimCoreBench {
            workload: "ring_flood_n64_f16_h9766".into(),
            processes: 64,
            events: 10_000_384,
            wall: WallStats::of(&[900_000, 950_000, 1_000_000]),
            events_per_sec: eps,
            arena_high_water: 1024,
            arena_slots: 1024,
            live_state_bound: 1024,
            inbox_high_water: 40,
            wheel_high_water: 1100,
            timesteps: 200_000,
            memory_bounded: true,
        }
    }

    #[test]
    fn sim_core_section_roundtrips() {
        let r = OfflineReport {
            schema: SCHEMA.into(),
            bench: "offline".into(),
            smoke: true,
            cases: vec![],
            shard_sweep: None,
            overlap: None,
            streaming: None,
            slicing: None,
            sim_core: Some(sim_core_section(1.0e7)),
        };
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: OfflineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn sim_core_scenario_requires_both_sides() {
        let cur = mode(100.0, 1e6, 1000, 2000);
        let sc = sim_core_section(1.0e7);
        // Pre-actor-core baseline: no sim_core case even though the run
        // measured one.
        let r = CompareReport::of(
            &baseline(),
            "b.json",
            &cur,
            None,
            None,
            None,
            Some(&sc),
            25.0,
            0.0,
            false,
        );
        assert_eq!(r.cases.len(), 4, "{r:?}");
        // Re-frozen baseline: the engine-throughput scenario participates.
        let mut b = baseline();
        b.sim_core_events_per_sec = Some(1.0e7);
        let r = CompareReport::of(
            &b,
            "b.json",
            &cur,
            None,
            None,
            None,
            Some(&sc),
            25.0,
            0.0,
            false,
        );
        assert_eq!(r.cases.len(), 5, "{r:?}");
        assert!(r.passed, "identical throughput passes: {r:?}");
        let c = r.cases.last().unwrap();
        assert_eq!(c.scenario, "sim_core_events_per_sec");
        assert!(!c.lower_is_better);
        // Throughput is higher-is-better: halving it regresses past 25%.
        let slow = sim_core_section(0.5e7);
        let r = CompareReport::of(
            &b,
            "b.json",
            &cur,
            None,
            None,
            None,
            Some(&slow),
            25.0,
            0.0,
            false,
        );
        assert!(!r.passed);
        assert_eq!(r.regressions, 1, "{r:?}");
        // Old-harness run without the section degrades against the new
        // baseline, and the injected slowdown worsens the scenario too.
        let r = CompareReport::of(&b, "b.json", &cur, None, None, None, None, 25.0, 0.0, false);
        assert_eq!(r.cases.len(), 4);
        let r = CompareReport::of(
            &b,
            "b.json",
            &cur,
            None,
            None,
            None,
            Some(&sc),
            25.0,
            100.0,
            false,
        );
        assert_eq!(r.regressions, 5, "{r:?}");
    }
}
