//! Experiment E6 (paper Figure 4 + Section 7): the active-debugging
//! walkthrough, with every narrative claim asserted.
//!
//! C1: detect bug1 (all servers unavailable) at exactly G and H.
//! C2 = control(C1, availability): bug1 gone; bug2 (e ∥ f) still present.
//! C3 = control(C2, e before f): satisfactory.
//! C4 = control(C1, e before f): G and H inconsistent — bug2 implies bug1.
//! On-line: guard fresh runs with the e-before-f constraint.

use pctl_bench::{cell, Table};
use pctl_core::online::{phased_system, PeerSelect, Phase};
use pctl_core::{control_disjunctive, ControlledDeposet, OfflineOptions};
use pctl_deposet::scenarios::replicated_servers;
use pctl_detect::detect_disjunctive_violation;
use pctl_replay::{replay, ReplayConfig};
use pctl_sim::{DelayModel, SimConfig, Simulation};

fn main() {
    println!("E6: active debugging of the replicated-server system (Fig. 4)\n");
    let fig = replicated_servers();
    let dep = &fig.deposet;
    let opts = OfflineOptions {
        policy: pctl_core::SelectPolicy::First,
        engine: pctl_core::Engine::Optimized,
    };
    let mut steps = Table::new(&["step", "action", "result"]);

    // C1: detect bug 1.
    let v = detect_disjunctive_violation(dep, &fig.availability);
    assert_eq!(v.as_ref(), Some(&fig.g));
    steps.row(vec![
        cell("C1"),
        cell("detect: all servers unavailable?"),
        cell(format!("bug1 possible at G={} and H={}", fig.g, fig.h)),
    ]);

    // C2: off-line control with availability.
    let rel_avail = control_disjunctive(dep, &fig.availability, opts).expect("feasible");
    let c2 = ControlledDeposet::new(dep, rel_avail.clone()).unwrap();
    assert!(!c2.is_consistent(&fig.g) && !c2.is_consistent(&fig.h));
    steps.row(vec![
        cell("C2"),
        cell("control C1 with 'some server available'"),
        cell(format!("C = {rel_avail}; G,H now inconsistent")),
    ]);
    // Replay C1 under the availability control: bug1 cannot recur.
    let rp = replay(dep, &rel_avail, &ReplayConfig::default());
    assert!(rp.completed() && rp.fidelity(dep));
    let recur = detect_disjunctive_violation(rp.deposet(), &fig.availability);
    assert_eq!(recur, None, "bug1 must not recur in the controlled replay");
    steps.row(vec![
        cell("C2"),
        cell("replay C1 under control"),
        cell("controlled re-execution: bug1 does not recur"),
    ]);

    // bug 2 in C2: e ∥ f still.
    let e_f_concurrent_in_c2 = c2.concurrent(fig.e, fig.f);
    steps.row(vec![
        cell("C2"),
        cell("detect: e and f at the same time?"),
        cell(format!(
            "e ∥ f in C2: {e_f_concurrent_in_c2} (bug2 possible)"
        )),
    ]);
    assert!(
        e_f_concurrent_in_c2,
        "availability control must not fix bug2 by accident"
    );

    // C3: control with "e before f".
    let rel_order = control_disjunctive(dep, &fig.order_e_before_f, opts).expect("feasible");
    steps.row(vec![
        cell("C3"),
        cell("control C2 with 'e before f'"),
        cell(format!("C = {rel_order}")),
    ]);

    // C4: apply the e-before-f control back to C1.
    let c4 = ControlledDeposet::new(dep, rel_order.clone()).unwrap();
    let g_gone = !c4.is_consistent(&fig.g);
    let h_gone = !c4.is_consistent(&fig.h);
    assert!(g_gone && h_gone, "fixing bug2 must also eliminate bug1");
    steps.row(vec![
        cell("C4"),
        cell("apply 'e before f' to the original C1"),
        cell("G and H inconsistent: bug2 is the root cause of bug1"),
    ]);

    // On-line: guard fresh runs.
    let scripts: Vec<Vec<Phase>> = (0..3)
        .map(|i| {
            (0..3)
                .map(|k| Phase {
                    true_len: 20 + 5 * i as u64 + k as u64,
                    false_len: Some(8),
                })
                .collect()
        })
        .collect();
    let procs = phased_system(3, scripts, PeerSelect::NextInRing);
    let cfg = SimConfig {
        seed: 1,
        delay: DelayModel::Fixed(5),
        ..SimConfig::default()
    };
    let run = Simulation::new(cfg, procs).run();
    assert!(!run.deadlocked());
    let fresh_violation = detect_disjunctive_violation(
        &run.deposet,
        &pctl_deposet::DisjunctivePredicate::at_least_one(3, "ok"),
    );
    assert_eq!(fresh_violation, None);
    steps.row(vec![
        cell("on-line"),
        cell("run fresh computations under on-line control"),
        cell(format!(
            "no violation; {} control messages over {} availability gaps",
            run.metrics.counter("msgs_ctrl"),
            run.metrics.counter("entries")
        )),
    ]);

    steps.print();
    println!("\nAll Section 7 narrative claims verified programmatically.");
}
