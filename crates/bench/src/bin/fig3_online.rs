//! Experiments E4 + E5 (paper Figure 3 + Section 6 Evaluation):
//! the on-line scapegoat strategy and the k-mutual-exclusion comparison.
//!
//! Reproduced claims:
//!
//! * no deadlock under assumptions A1/A2;
//! * amortized control cost ≈ **2 messages per n CS entries** (only the
//!   scapegoat's own entries pay for a handover);
//! * handover **response time ∈ [2T, 2T + E_max]** (free entries respond
//!   instantly);
//! * the broadcast variant trades messages for response time;
//! * at `k = n − 1` the anti-token beats a centralized coordinator
//!   (3 msgs/entry) and a k-token Suzuki–Kasami baseline (Θ(n) per
//!   contended entry).

use pctl_bench::{cell, Table};
use pctl_deposet::par::ordered_map;
use pctl_mutex::compare::{compare_all, compare_at_k};
use pctl_mutex::driver::WorkloadConfig;

fn main() {
    println!("E4/E5: on-line control as (n-1)-mutex (paper Fig. 3, Section 6)\n");

    // --- overhead vs n for the anti-token ---------------------------------
    let delay = 10u64;
    let e_max = 15u64;
    let mut table = Table::new(&[
        "n",
        "entries",
        "ctrl msgs",
        "msgs/entry",
        "msgs per n entries",
        "resp min",
        "resp mean",
        "resp p50/p95/p99",
        "resp max",
        "2T",
        "2T+Emax",
    ]);
    let seeds: Vec<u64> = (0..5).collect();
    for n in [2usize, 4, 8, 16, 32] {
        // Aggregate over seeds for stable means. Per-seed runs are
        // independent deterministic simulations: fan out, merge in seed
        // order.
        let runs = ordered_map(&seeds, |_, &seed| {
            let cfg = WorkloadConfig {
                processes: n,
                entries_per_process: 8,
                think: (20, 60),
                cs: (5, e_max),
                seed,
                delay,
            };
            let r = pctl_mutex::run_antitoken(&cfg, pctl_core::online::PeerSelect::Random);
            assert!(!r.deadlocked(), "no deadlock under A1/A2");
            r
        });
        let mut entries = 0u64;
        let mut ctrl = 0u64;
        let mut responses: Vec<u64> = Vec::new();
        for r in &runs {
            entries += r.metrics.counter("entries");
            ctrl += r.metrics.counter("msgs_ctrl");
            responses.extend(r.metrics.samples("response"));
        }
        // Handover responses only (free entries respond instantly); a
        // Metrics registry computes the nearest-rank percentiles.
        let mut agg = pctl_sim::Metrics::default();
        for v in responses.iter().copied().filter(|&r| r > 0) {
            agg.record("response", v);
        }
        let s = agg.summary("response");
        let (rmin, rmean, rpcts, rmax) = match s {
            Some(s) => (
                s.min,
                s.mean,
                format!("{}/{}/{}", s.p50, s.p95, s.p99),
                s.max,
            ),
            None => (0, 0.0, "-".to_string(), 0),
        };
        table.row(vec![
            cell(n),
            cell(entries),
            cell(ctrl),
            cell(format!("{:.3}", ctrl as f64 / entries as f64)),
            cell(format!("{:.2}", ctrl as f64 * n as f64 / entries as f64)),
            cell(rmin),
            cell(format!("{rmean:.1}")),
            cell(rpcts),
            cell(rmax),
            cell(2 * delay),
            cell(2 * delay + e_max),
        ]);
    }
    table.print();
    println!(
        "\n(\"msgs per n entries\" ≈ 2 is the paper's amortized claim; handover\n\
         response times start at exactly 2T and mostly fall in [2T, 2T+Emax])"
    );

    // --- algorithm comparison at k = n-1 (Section 6) -----------------------
    println!("\ncomparison at k = n-1 (same workload, 5 seeds averaged):\n");
    let mut cmp = Table::new(&[
        "algo",
        "n",
        "k",
        "msgs/entry",
        "resp mean",
        "resp max",
        "max conc",
        "ok",
    ]);
    for n in [4usize, 8, 16] {
        // Average across seeds per algorithm; the seed fan-out runs every
        // algorithm suite concurrently, the accumulation stays seed-ordered.
        let per_seed = ordered_map(&seeds, |_, &seed| {
            let cfg = WorkloadConfig {
                processes: n,
                entries_per_process: 6,
                think: (20, 60),
                cs: (5, e_max),
                seed,
                delay,
            };
            compare_all(&cfg)
        });
        let mut acc: Vec<(String, f64, f64, u64, usize, bool, usize)> = Vec::new();
        for reports in per_seed {
            for (i, rep) in reports.into_iter().enumerate() {
                if acc.len() <= i {
                    acc.push((rep.algo.clone(), 0.0, 0.0, 0, rep.k, true, 0));
                }
                let slot = &mut acc[i];
                slot.1 += rep.msgs_per_entry;
                if let Some(s) = rep.response {
                    slot.2 += s.mean;
                    slot.3 = slot.3.max(s.max);
                }
                slot.5 &= !rep.deadlocked && rep.max_concurrent <= rep.k;
                slot.6 = slot.6.max(rep.max_concurrent);
            }
        }
        for (algo, mpe, rmean, rmax, k, ok, conc) in acc {
            cmp.row(vec![
                cell(algo),
                cell(n),
                cell(k),
                cell(format!("{:.3}", mpe / 5.0)),
                cell(format!("{:.1}", rmean / 5.0)),
                cell(rmax),
                cell(conc),
                cell(ok),
            ]);
        }
    }
    cmp.print();
    println!(
        "\n(anti-token: cheapest messages; broadcast variant: more messages, lower\n\
         response; centralized: exactly 3 msgs/entry; k-token Suzuki-Kasami: Θ(n)\n\
         per contended entry — the paper's Section 6 argument for large k)"
    );

    // --- crossover: general k, m = n-k anti-tokens vs k tokens --------------
    let n = 12usize;
    println!("\ncrossover at n = {n}: m = n-k anti-tokens vs k privilege tokens\n");
    let mut cross = Table::new(&[
        "k",
        "m",
        "anti-token-m msgs/entry",
        "suzuki-k msgs/entry",
        "centralized",
        "winner",
    ]);
    for k in [1usize, 2, 4, 6, 8, 10, 11] {
        let per_seed = ordered_map(&seeds, |_, &seed| {
            let cfg = WorkloadConfig {
                processes: n,
                entries_per_process: 6,
                think: (20, 60),
                cs: (5, e_max),
                seed,
                delay,
            };
            let reports = compare_at_k(&cfg, k);
            for rep in &reports {
                assert!(
                    !rep.deadlocked && rep.max_concurrent <= rep.k,
                    "{} k={k}",
                    rep.algo
                );
            }
            reports
        });
        let mut anti = 0.0;
        let mut suz = 0.0;
        let mut cen = 0.0;
        for reports in &per_seed {
            anti += reports[0].msgs_per_entry;
            cen += reports[1].msgs_per_entry;
            suz += reports[2].msgs_per_entry;
        }
        let count = seeds.len() as f64;
        let (a, s_, c) = (anti / count, suz / count, cen / count);
        let winner = if a <= s_ && a <= c {
            "anti-token-m"
        } else if s_ <= c {
            "suzuki-k"
        } else {
            "centralized"
        };
        cross.row(vec![
            cell(k),
            cell(n - k),
            cell(format!("{a:.2}")),
            cell(format!("{s_:.2}")),
            cell(format!("{c:.2}")),
            cell(winner),
        ]);
    }
    cross.print();
    println!(
        "\n(the paper's conjecture: anti-tokens (liabilities) win for large k,\n\
         privilege tokens for small k — the winner column shows the crossover)"
    );
}
