//! The persisted perf baseline: `BENCH_offline.json` + `BENCH_sweep.json`.
//!
//! Unlike the `fig*` binaries (which regenerate the paper's figures), this
//! harness exists to record the repository's performance trajectory PR over
//! PR. It measures two hot paths end to end:
//!
//! * **offline** — false-interval extraction + off-line control synthesis
//!   (the paper's Figure 2 algorithm) on critical-section and pipelined
//!   workloads;
//! * **sweep** — the multi-seed post-run safety audit: deposet construction
//!   (vector-clock arena DP) plus `verify::sweep_faulty_run` per seed, run
//!   both sequentially and with deterministic scoped-thread fan-out.
//!
//! Reports are round-trip validated before they are written, and the sweep
//! report compares against the recorded pre-refactor baseline in
//! `docs/results/BENCH_prerefactor.json` when present.
//!
//! Usage: `bench_suite [--smoke] [--out-dir DIR] [--baseline FILE]`

use pctl_bench::report::{
    Baseline, OfflineCase, OfflineReport, SweepMode, SweepReport, WallStats, SCHEMA,
};
use pctl_core::offline::{control_intervals, Engine, OfflineOptions, SelectPolicy};
use pctl_core::verify::sweep_faulty_run;
use pctl_deposet::generator::{
    cs_workload, pipelined_workload, random_deposet, CsConfig, RandomConfig,
};
use pctl_deposet::par::{ordered_map, worker_count};
use pctl_deposet::{Deposet, DisjunctivePredicate, FalseIntervals, LocalPredicate};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    smoke: bool,
    out_dir: PathBuf,
    baseline: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out_dir: PathBuf::from("."),
        baseline: PathBuf::from("docs/results/BENCH_prerefactor.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out-dir" => args.out_dir = PathBuf::from(it.next().expect("--out-dir DIR")),
            "--baseline" => args.baseline = PathBuf::from(it.next().expect("--baseline FILE")),
            other => panic!("unknown argument {other} (usage: bench_suite [--smoke] [--out-dir DIR] [--baseline FILE])"),
        }
    }
    args
}

fn micros(d: std::time::Duration) -> u64 {
    d.as_micros() as u64
}

// ---------------------------------------------------------------- offline --

fn offline_case(
    name: &str,
    engine: Engine,
    dep: &Deposet,
    pred: &DisjunctivePredicate,
    reps: usize,
) -> OfflineCase {
    let opts = OfflineOptions {
        policy: SelectPolicy::First,
        engine,
    };
    let mut samples = Vec::with_capacity(reps);
    let mut tuples = 0usize;
    let mut feasible = false;
    let mut intervals_per_process = 0usize;
    for _ in 0..reps {
        let t0 = Instant::now();
        let intervals = FalseIntervals::extract(dep, pred);
        let (res, _stats) = control_intervals(dep, &intervals, opts);
        samples.push(micros(t0.elapsed()));
        intervals_per_process = intervals.max_per_process();
        match res {
            Ok(rel) => {
                feasible = true;
                tuples = rel.len();
            }
            Err(_) => {
                feasible = false;
                tuples = 0;
            }
        }
    }
    let wall = WallStats::of(&samples);
    let states = dep.total_states();
    OfflineCase {
        name: name.to_string(),
        engine: match engine {
            Engine::Optimized => "optimized".into(),
            Engine::Naive => "naive".into(),
        },
        processes: dep.process_count(),
        intervals_per_process,
        states,
        states_per_sec: states as f64 / (wall.p50_us.max(1) as f64 / 1e6),
        wall,
        control_tuples: tuples,
        feasible,
    }
}

fn run_offline(smoke: bool) -> OfflineReport {
    let reps = if smoke { 2 } else { 7 };
    let sizes: &[(usize, usize)] = if smoke {
        &[(3, 3)]
    } else {
        &[(8, 16), (16, 24), (32, 16)]
    };
    let mut cases = Vec::new();
    for &(n, p) in sizes {
        let cfg = CsConfig {
            processes: n,
            sections_per_process: p,
            ..CsConfig::default()
        };
        let dep = cs_workload(&cfg, 7);
        let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
        cases.push(offline_case(
            &format!("cs_n{n}_p{p}"),
            Engine::Optimized,
            &dep,
            &pred,
            reps,
        ));
        if n <= 8 {
            cases.push(offline_case(
                &format!("cs_n{n}_p{p}"),
                Engine::Naive,
                &dep,
                &pred,
                reps,
            ));
        }
        let piped = pipelined_workload(&cfg, 7);
        cases.push(offline_case(
            &format!("pipelined_n{n}_p{p}"),
            Engine::Optimized,
            &piped,
            &pred,
            reps,
        ));
    }
    OfflineReport {
        schema: SCHEMA.into(),
        bench: "offline".into(),
        smoke,
        cases,
    }
}

// ------------------------------------------------------------------ sweep --

/// The comparable fingerprint of one seed's sweep outcome.
#[derive(Debug, PartialEq, Eq, Clone)]
struct SweepOutcome {
    fully_safe: bool,
    safe_modulo_crashes: bool,
    unwitnessed: Option<Vec<u32>>,
    clean: Option<Vec<u32>>,
    down_windows: usize,
}

/// One seed's measured unit: deposet construction from pre-built parts
/// (the vector-clock DP) plus the full safety sweep.
fn sweep_one(parts: &Parts, witness: &LocalPredicate) -> (SweepOutcome, u64) {
    let (states, events, messages) = parts.clone_parts();
    let t0 = Instant::now();
    let dep = Deposet::from_parts(states, events, messages).expect("generated parts are valid");
    let report = sweep_faulty_run(&dep, witness);
    let us = micros(t0.elapsed());
    (
        SweepOutcome {
            fully_safe: report.fully_safe(),
            safe_modulo_crashes: report.safe_modulo_crashes(),
            unwitnessed: report.unwitnessed_cut.map(|g| g.indices().to_vec()),
            clean: report.clean_violation.map(|g| g.indices().to_vec()),
            down_windows: report.down_windows.len(),
        },
        us,
    )
}

/// Pre-generated deposet raw parts (kept outside the timed region so the
/// bench measures clock construction + sweep, not workload generation).
struct Parts {
    states: Vec<Vec<pctl_deposet::LocalState>>,
    events: Vec<Vec<pctl_deposet::EventKind>>,
    messages: Vec<pctl_deposet::Message>,
}

impl Parts {
    fn clone_parts(
        &self,
    ) -> (
        Vec<Vec<pctl_deposet::LocalState>>,
        Vec<Vec<pctl_deposet::EventKind>>,
        Vec<pctl_deposet::Message>,
    ) {
        (
            self.states.clone(),
            self.events.clone(),
            self.messages.clone(),
        )
    }
}

fn run_sweep(smoke: bool, baseline_path: &std::path::Path) -> SweepReport {
    let (seeds, processes, events, rounds) = if smoke {
        (3usize, 3usize, 120usize, 2usize)
    } else {
        (16, 8, 6000, 3)
    };
    let cfg = RandomConfig {
        processes,
        events,
        send_prob: 0.3,
        flip_prob: 0.3,
    };
    let witness = LocalPredicate::var("ok");
    let parts: Vec<Parts> = (0..seeds as u64)
        .map(|seed| {
            let (states, events, messages) = random_deposet(&cfg, seed).into_parts();
            Parts {
                states,
                events,
                messages,
            }
        })
        .collect();
    let states_total: usize = parts
        .iter()
        .map(|p| p.states.iter().map(Vec::len).sum::<usize>())
        .sum();

    // Sequential rounds.
    let mut seq_samples = Vec::new();
    let mut seq_total_us = u64::MAX;
    let mut seq_outcomes: Vec<SweepOutcome> = Vec::new();
    for _ in 0..rounds {
        let t0 = Instant::now();
        let round: Vec<(SweepOutcome, u64)> =
            parts.iter().map(|p| sweep_one(p, &witness)).collect();
        let total = micros(t0.elapsed());
        seq_total_us = seq_total_us.min(total);
        seq_outcomes = round.iter().map(|(o, _)| o.clone()).collect();
        seq_samples.extend(round.iter().map(|(_, us)| *us));
    }

    // Parallel rounds (deterministic ordered merge).
    let threads = worker_count(parts.len());
    let mut par_samples = Vec::new();
    let mut par_total_us = u64::MAX;
    let mut par_outcomes: Vec<SweepOutcome> = Vec::new();
    for _ in 0..rounds {
        let t0 = Instant::now();
        let round: Vec<(SweepOutcome, u64)> = ordered_map(&parts, |_, p| sweep_one(p, &witness));
        let total = micros(t0.elapsed());
        par_total_us = par_total_us.min(total);
        par_outcomes = round.iter().map(|(o, _)| o.clone()).collect();
        par_samples.extend(round.iter().map(|(_, us)| *us));
    }

    assert_eq!(
        seq_outcomes, par_outcomes,
        "parallel sweep must be bit-identical to sequential"
    );

    let mode = |name: &str, threads: usize, samples: &[u64], total_us: u64| SweepMode {
        mode: name.into(),
        threads,
        per_seed: WallStats::of(samples),
        total_ms: total_us as f64 / 1e3,
        states_per_sec: states_total as f64 / (total_us.max(1) as f64 / 1e6),
    };
    let sequential = mode("sequential", 1, &seq_samples, seq_total_us);
    let parallel = mode("parallel", threads, &par_samples, par_total_us);

    // The recorded baseline is full-size; comparing a --smoke run against
    // it would be apples to oranges, so smoke reports omit it.
    let baseline: Option<Baseline> = if smoke {
        None
    } else {
        std::fs::read_to_string(baseline_path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
    };
    let speedup = baseline
        .as_ref()
        .map(|b| b.total_ms / sequential.total_ms.max(1e-9));

    SweepReport {
        schema: SCHEMA.into(),
        bench: "sweep".into(),
        smoke,
        seeds,
        processes,
        events_per_seed: events,
        states_total,
        sequential,
        parallel,
        deterministic: true,
        baseline,
        speedup_vs_baseline: speedup,
    }
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");

    let offline = run_offline(args.smoke);
    let path = args.out_dir.join("BENCH_offline.json");
    pctl_bench::report::write_validated(&path, &offline).expect("write BENCH_offline.json");
    println!("wrote {} ({} cases)", path.display(), offline.cases.len());
    for c in &offline.cases {
        println!(
            "  {:<24} {:<9} states={:<6} p50={}us p95={}us  {:.0} states/s",
            c.name, c.engine, c.states, c.wall.p50_us, c.wall.p95_us, c.states_per_sec
        );
    }

    let sweep = run_sweep(args.smoke, &args.baseline);
    let path = args.out_dir.join("BENCH_sweep.json");
    pctl_bench::report::write_validated(&path, &sweep).expect("write BENCH_sweep.json");
    println!(
        "wrote {} (seeds={} states={})",
        path.display(),
        sweep.seeds,
        sweep.states_total
    );
    println!(
        "  sequential: total={:.1}ms p50={}us p95={}us  {:.0} states/s",
        sweep.sequential.total_ms,
        sweep.sequential.per_seed.p50_us,
        sweep.sequential.per_seed.p95_us,
        sweep.sequential.states_per_sec
    );
    println!(
        "  parallel({}): total={:.1}ms p50={}us p95={}us  {:.0} states/s",
        sweep.parallel.threads,
        sweep.parallel.total_ms,
        sweep.parallel.per_seed.p50_us,
        sweep.parallel.per_seed.p95_us,
        sweep.parallel.states_per_sec
    );
    if let (Some(b), Some(s)) = (&sweep.baseline, sweep.speedup_vs_baseline) {
        println!(
            "  baseline ({}): {:.1}ms → speedup {:.2}x",
            b.recorded, b.total_ms, s
        );
    } else if args.smoke {
        println!("  baseline comparison skipped (smoke workload is not comparable)");
    } else {
        println!("  no recorded baseline at {}", args.baseline.display());
    }
}
