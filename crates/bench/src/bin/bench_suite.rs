//! The persisted perf baseline: `BENCH_offline.json` + `BENCH_sweep.json`,
//! and the perf-regression gate: `BENCH_compare.json`.
//!
//! Unlike the `fig*` binaries (which regenerate the paper's figures), this
//! harness exists to record the repository's performance trajectory PR over
//! PR. It measures two hot paths end to end:
//!
//! * **offline** — false-interval extraction + off-line control synthesis
//!   (the paper's Figure 2 algorithm) on critical-section and pipelined
//!   workloads;
//! * **sweep** — the multi-seed post-run safety audit: deposet construction
//!   (vector-clock arena DP) plus `verify::sweep_faulty_run` per seed, run
//!   both sequentially and with deterministic scoped-thread fan-out.
//!
//! Reports are round-trip validated before they are written. With
//! `--compare FILE` the sweep numbers are diffed scenario by scenario
//! against the committed baseline: any scenario more than `--threshold-pct`
//! (default 25) worse than the baseline is a regression, `BENCH_compare.json`
//! records the structured deltas, and the process exits non-zero — except
//! under `--smoke` (whose tiny workload is not comparable to a full-size
//! baseline), where the gate only warns unless `--strict` is also given.
//! `--inject-slowdown PCT` synthetically worsens the measured numbers so
//! the gate itself can be integration-tested.
//!
//! After the timed rounds (so measurement is never perturbed) one
//! profiler-enabled sweep round runs with `pctl_obs::prof`: its phase
//! report prints, `--prof-trace FILE` exports it as a Chrome `trace_event`
//! file for Perfetto, and the measured disabled-span cost is asserted to
//! bound profiler overhead below 2% of the sweep.
//!
//! Usage: `bench_suite [--smoke] [--out-dir DIR] [--baseline FILE]
//!   [--compare FILE] [--threshold-pct PCT] [--inject-slowdown PCT]
//!   [--strict] [--write-baseline FILE] [--prof-trace FILE]`

use pctl_bench::report::{
    Baseline, CompareReport, OfflineCase, OfflineReport, OverlapCase, ShardCase, ShardSweep,
    SimCoreBench, SlicingBench, StreamingBench, SweepMode, SweepReport, WallStats, SCHEMA,
};
use pctl_core::offline::{control_intervals, Engine, OfflineOptions, SelectPolicy};
use pctl_core::verify::sweep_faulty_run;
use pctl_core::PredicateEngine;
use pctl_deposet::generator::{
    cs_workload, pipelined_workload, random_deposet, CsConfig, RandomConfig,
};
use pctl_deposet::par::{ordered_map, worker_count};
use pctl_deposet::{
    Deposet, DisjunctivePredicate, FalseIntervals, IntervalIndex, LocalPredicate, PredicateClass,
    RegularPredicate, ShardPlan, SlicedDeposet,
};
use pctl_obs::prof;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    smoke: bool,
    out_dir: PathBuf,
    baseline: PathBuf,
    compare: Option<PathBuf>,
    threshold_pct: f64,
    inject_slowdown: f64,
    strict: bool,
    write_baseline: Option<PathBuf>,
    prof_trace: Option<PathBuf>,
}

const USAGE: &str = "usage: bench_suite [--smoke] [--out-dir DIR] [--baseline FILE] \
  [--compare FILE] [--threshold-pct PCT] [--inject-slowdown PCT] [--strict] \
  [--write-baseline FILE] [--prof-trace FILE]";

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out_dir: PathBuf::from("."),
        baseline: PathBuf::from("docs/results/BENCH_prerefactor.json"),
        compare: None,
        threshold_pct: 25.0,
        inject_slowdown: 0.0,
        strict: false,
        write_baseline: None,
        prof_trace: None,
    };
    let mut it = std::env::args().skip(1);
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next()
            .unwrap_or_else(|| panic!("{flag} needs a value ({USAGE})"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--strict" => args.strict = true,
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir", &mut it)),
            "--baseline" => args.baseline = PathBuf::from(value("--baseline", &mut it)),
            "--compare" => args.compare = Some(PathBuf::from(value("--compare", &mut it))),
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(value("--write-baseline", &mut it)))
            }
            "--prof-trace" => args.prof_trace = Some(PathBuf::from(value("--prof-trace", &mut it))),
            "--threshold-pct" => {
                args.threshold_pct = value("--threshold-pct", &mut it)
                    .parse()
                    .expect("--threshold-pct PCT must be a number")
            }
            "--inject-slowdown" => {
                args.inject_slowdown = value("--inject-slowdown", &mut it)
                    .parse()
                    .expect("--inject-slowdown PCT must be a number")
            }
            other => panic!("unknown argument {other} ({USAGE})"),
        }
    }
    args
}

fn micros(d: std::time::Duration) -> u64 {
    d.as_micros() as u64
}

// ---------------------------------------------------------------- offline --

fn offline_case(
    name: &str,
    engine: Engine,
    dep: &Deposet,
    pred: &DisjunctivePredicate,
    reps: usize,
) -> OfflineCase {
    let opts = OfflineOptions {
        policy: SelectPolicy::First,
        engine,
    };
    let mut samples = Vec::with_capacity(reps);
    let mut tuples = 0usize;
    let mut feasible = false;
    let mut intervals_per_process = 0usize;
    for _ in 0..reps {
        let t0 = Instant::now();
        let intervals = FalseIntervals::extract(dep, pred);
        let (res, _stats) = control_intervals(dep, &intervals, opts);
        samples.push(micros(t0.elapsed()));
        intervals_per_process = intervals.max_per_process();
        match res {
            Ok(rel) => {
                feasible = true;
                tuples = rel.len();
            }
            Err(_) => {
                feasible = false;
                tuples = 0;
            }
        }
    }
    let wall = WallStats::of(&samples);
    let states = dep.total_states();
    OfflineCase {
        name: name.to_string(),
        engine: match engine {
            Engine::Optimized => "optimized".into(),
            Engine::Naive => "naive".into(),
        },
        processes: dep.process_count(),
        intervals_per_process,
        states,
        states_per_sec: states as f64 / (wall.p50_us.max(1) as f64 / 1e6),
        wall,
        control_tuples: tuples,
        feasible,
    }
}

fn run_offline(smoke: bool) -> OfflineReport {
    let reps = if smoke { 2 } else { 7 };
    let sizes: &[(usize, usize)] = if smoke {
        &[(3, 3)]
    } else {
        &[(8, 16), (16, 24), (32, 16)]
    };
    let mut cases = Vec::new();
    for &(n, p) in sizes {
        let cfg = CsConfig {
            processes: n,
            sections_per_process: p,
            ..CsConfig::default()
        };
        let dep = cs_workload(&cfg, 7);
        let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
        cases.push(offline_case(
            &format!("cs_n{n}_p{p}"),
            Engine::Optimized,
            &dep,
            &pred,
            reps,
        ));
        if n <= 8 {
            cases.push(offline_case(
                &format!("cs_n{n}_p{p}"),
                Engine::Naive,
                &dep,
                &pred,
                reps,
            ));
        }
        let piped = pipelined_workload(&cfg, 7);
        cases.push(offline_case(
            &format!("pipelined_n{n}_p{p}"),
            Engine::Optimized,
            &piped,
            &pred,
            reps,
        ));
    }
    OfflineReport {
        schema: SCHEMA.into(),
        bench: "offline".into(),
        smoke,
        cases,
        shard_sweep: None,
        overlap: None,
        streaming: None,
        slicing: None,
        sim_core: None,
    }
}

// ---------------------------------------------------------------- slicing --

/// The regular-predicate fast path: slice the computation w.r.t. a
/// conjunctive-of-locals violation (processes 0 and 1 inside their
/// critical sections at once — a cut the disjunctive engine cannot even
/// express), then answer detect + control through the slice-then-delegate
/// engine. The pruning ratio is counted exhaustively on both sides —
/// consistent cuts of the full lattice vs consistent cuts surviving in
/// the slice — so "exponential pruning" stays a measured number. The
/// unsliced comparator is the brute-force lattice BFS, the only way to
/// answer the same question without a slice; its verdict is hard-asserted
/// to agree with the sliced one before anything is written.
fn run_slicing(smoke: bool) -> SlicingBench {
    use pctl_deposet::lattice;

    // Individual slice builds are tens of µs, so the p50 needs many reps
    // to be stable against scheduler noise (the whole loop is still
    // sub-millisecond).
    let (n, sections, reps, budget) = if smoke {
        (3usize, 3usize, 5usize, 1_000_000usize)
    } else {
        (4, 8, 60, 20_000_000)
    };
    let cfg = CsConfig {
        processes: n,
        sections_per_process: sections,
        ..CsConfig::default()
    };
    let dep = cs_workload(&cfg, 7);
    let violation = RegularPredicate::conj_var(&[0, 1], "cs");
    let class = PredicateClass::regular(n as u32, violation.clone());

    // Slice construction alone.
    let mut construct = Vec::with_capacity(reps);
    let mut slice = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let s = SlicedDeposet::build(&dep, &violation).expect("violation is a valid regular class");
        construct.push(micros(t0.elapsed()));
        slice = Some(s);
    }
    let slice = slice.expect("reps >= 1");

    // Exhaustive (budgeted) cut counts on both sides of the prune.
    let lattice_cuts = lattice::count_consistent_global_states(&dep, budget)
        .expect("slicing workload must stay within the enumeration budget");
    let slice_cuts = slice
        .cut_count(budget)
        .expect("the slice lattice embeds into the full lattice");

    // Slice-then-delegate detect + control synthesis on a prebuilt engine.
    let opts = OfflineOptions {
        policy: SelectPolicy::First,
        engine: Engine::Optimized,
    };
    let eng = PredicateEngine::for_class(&dep, &class).expect("valid class");
    let mut sliced = Vec::with_capacity(reps);
    let mut detected = None;
    let mut feasible = false;
    for _ in 0..reps {
        let t0 = Instant::now();
        detected = eng.detect_violation();
        feasible = eng.control(opts).is_ok();
        sliced.push(micros(t0.elapsed()));
    }

    // Unsliced brute force: BFS the full cut lattice for a satisfying cut.
    let mut unsliced = Vec::with_capacity(reps);
    let mut brute = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        brute = lattice::possibly(&dep, budget, |d, g| violation.eval(d, g))
            .expect("within the enumeration budget");
        unsliced.push(micros(t0.elapsed()));
    }
    assert_eq!(
        detected.is_some(),
        brute.is_some(),
        "sliced and brute-force detection must agree on the same workload"
    );

    SlicingBench {
        workload: format!("cs_n{n}_p{sections}"),
        processes: n,
        states: dep.total_states(),
        lattice_cuts,
        slice_cuts,
        pruning_ratio: lattice_cuts as f64 / slice_cuts.max(1) as f64,
        surviving_states: slice.surviving_states(),
        classes: slice.class_count(),
        slice_construct: WallStats::of(&construct),
        sliced_control: WallStats::of(&sliced),
        unsliced_control: WallStats::of(&unsliced),
        feasible,
    }
}

// --------------------------------------------------------------- sim core --

/// Raw throughput of the actor-model simulator engine: `ring_flood` keeps
/// `processes × fanout` messages permanently in flight with near-empty
/// handlers, so wall time is dominated by the wheel/arena/mailbox machinery
/// itself. The full-size run dispatches ≥ 10⁷ events per rep. Before
/// anything is written, the arena gauges are hard-asserted to stay within
/// 2× the known live-state population — the scale invariant the engine
/// exists to provide (peak memory tracks in-flight state, not trace
/// length).
fn run_sim_core(smoke: bool) -> SimCoreBench {
    use pctl_sim::scenarios::ring_flood;
    use pctl_sim::{DelayModel, SimConfig, SimTime, StopReason};

    let (processes, fanout, hops, reps) = if smoke {
        (8u32, 4u32, 64u32, 2usize)
    } else {
        // 64 × 16 × 9766 = 10 000 384 deliveries ≥ 10⁷.
        (64, 16, 9_766, 3)
    };
    let expected = u64::from(processes) * u64::from(fanout) * u64::from(hops);
    let live = u64::from(processes) * u64::from(fanout);

    let run = || {
        let cfg = SimConfig {
            seed: 0x5CA1_E5EED,
            delay: DelayModel::Uniform { min: 1, max: 20 },
            max_events: usize::MAX,
            max_time: SimTime(u64::MAX),
            ..SimConfig::default()
        };
        ring_flood(processes, fanout, hops, cfg).run()
    };

    let mut samples = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run();
        samples.push(micros(t0.elapsed()));
        assert_eq!(r.stopped, StopReason::Quiescent, "ring_flood must drain");
        assert_eq!(r.core.events_dispatched, expected);
        last = Some(r);
    }
    let r = last.expect("reps >= 1");

    // The invariant the section exists to witness, asserted before the
    // report is written: engine memory is proportional to live state.
    let memory_bounded = r.core.arena_high_water <= 2 * live && r.core.arena_slots <= 2 * live;
    assert!(
        memory_bounded,
        "sim_core: arena gauges (high_water={}, slots={}) exceed 2x the \
         live-state bound {live} — engine memory is no longer proportional \
         to in-flight state",
        r.core.arena_high_water, r.core.arena_slots
    );
    assert_eq!(
        r.core.arena_live_at_end, 0,
        "quiescent run must drain the arena"
    );

    let wall = WallStats::of(&samples);
    SimCoreBench {
        workload: format!("ring_flood_n{processes}_f{fanout}_h{hops}"),
        processes: processes as usize,
        events: expected,
        events_per_sec: expected as f64 / (wall.p50_us.max(1) as f64 / 1e6),
        wall,
        arena_high_water: r.core.arena_high_water,
        arena_slots: r.core.arena_slots,
        live_state_bound: live,
        inbox_high_water: r.core.inbox_high_water,
        wheel_high_water: r.core.wheel_high_water,
        timesteps: r.core.timesteps,
        memory_bounded,
    }
}

// ------------------------------------------------------------ shard sweep --

/// The sharded-store headline: flat (single-shard) vs explicitly sharded
/// construction and interval-index build on a pipelined (ring-message)
/// workload, whose messages all cross shard boundaries. Every sharded
/// result is hard-asserted bit-identical to the flat store before anything
/// is written; the speedup is reported honestly (a single-core runner pays
/// the frontier-round synchronisation and wins nothing back).
fn run_shard_sweep(smoke: bool) -> ShardSweep {
    let (n, sections, reps) = if smoke {
        (4usize, 6usize, 2usize)
    } else {
        (8, 48, 5)
    };
    let cfg = CsConfig {
        processes: n,
        sections_per_process: sections,
        ..CsConfig::default()
    };
    let dep0 = pipelined_workload(&cfg, 11);
    let states = dep0.total_states();
    let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
    let (st, ev, ms) = dep0.into_parts();
    let parts = Parts {
        states: st,
        events: ev,
        messages: ms,
    };

    let measure = |plan: &ShardPlan| {
        let mut c_samples = Vec::with_capacity(reps);
        let mut i_samples = Vec::with_capacity(reps);
        let mut result = None;
        for _ in 0..reps {
            let (s, e, m) = parts.clone_parts();
            let t0 = Instant::now();
            let dep = Deposet::from_parts_with_plan(s, e, m, Some(plan.clone()))
                .expect("generated parts are valid");
            c_samples.push(micros(t0.elapsed()));
            let t1 = Instant::now();
            let index = IntervalIndex::build(&dep, &pred);
            i_samples.push(micros(t1.elapsed()));
            result = Some((dep, index));
        }
        let (dep, index) = result.expect("reps >= 1");
        let c_p50 = WallStats::of(&c_samples).p50_us;
        let i_p50 = WallStats::of(&i_samples).p50_us;
        (dep, index, c_p50, i_p50)
    };

    let (flat_dep, flat_index, flat_c, flat_i) = measure(&ShardPlan::single(n));
    let shard_counts: Vec<usize> = if smoke { vec![2, n] } else { vec![2, 4, n] };
    let mut cases = Vec::new();
    for &k in &shard_counts {
        let (dep, index, c, i) = measure(&ShardPlan::with_shards(n, k));
        let identical = flat_dep
            .state_ids()
            .all(|s| dep.clock(s) == flat_dep.clock(s))
            && index == flat_index;
        assert!(
            identical,
            "sharded store (shards={k}) must be bit-identical to the flat store"
        );
        let sc = dep.sharded_clocks();
        cases.push(ShardCase {
            shards: k,
            rounds: sc.rounds(),
            construct_p50_us: c,
            index_p50_us: i,
            speedup_vs_flat: flat_c as f64 / c.max(1) as f64,
            per_shard_words: (0..sc.shard_count())
                .map(|s| sc.arena(s).allocated_words())
                .collect(),
            identical_to_flat: identical,
        });
    }
    ShardSweep {
        workload: format!("pipelined_n{n}_p{sections}"),
        processes: n,
        states,
        flat_construct_p50_us: flat_c,
        flat_index_p50_us: flat_i,
        deterministic: cases.iter().all(|c| c.identical_to_flat),
        cases,
    }
}

// ---------------------------------------------------------------- overlap --

/// Pathological many-intervals input for the worklist `find_overlap`: a
/// pipelined workload with many critical sections yields one false
/// interval per section per process under `∨ᵢ ¬csᵢ`, the shape where the
/// old quadratic restart-from-scratch scan cost `O(T·n²)` checks.
fn run_overlap(smoke: bool) -> OverlapCase {
    let (n, sections, reps) = if smoke {
        (3usize, 8usize, 2usize)
    } else {
        (8, 256, 5)
    };
    let cfg = CsConfig {
        processes: n,
        sections_per_process: sections,
        ..CsConfig::default()
    };
    let dep = pipelined_workload(&cfg, 13);
    let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
    let intervals = FalseIntervals::extract(&dep, &pred);
    let mut samples = Vec::with_capacity(reps);
    let mut found = false;
    for _ in 0..reps {
        let t0 = Instant::now();
        let witness = pctl_deposet::store::find_overlap(&dep, &intervals);
        samples.push(micros(t0.elapsed()));
        found = witness.is_some();
    }
    OverlapCase {
        workload: format!("pipelined_n{n}_p{sections}"),
        processes: n,
        states: dep.total_states(),
        intervals_total: intervals.total(),
        wall: WallStats::of(&samples),
        found,
    }
}

// -------------------------------------------------------------- streaming --

/// End-to-end daemon numbers over real TCP on loopback: sustained append
/// throughput into one session (client → frame → enqueue → ack, including
/// any backoff sleeps), then `Detect` latency while a second writer
/// streams into the very session being queried. Gated by `--compare`
/// whenever the baseline carries the streaming scenarios.
///
/// The main numbers run with request telemetry *enabled* (the default
/// serve config — what a real deployment pays); a second pass with
/// `Config::telemetry = false` re-measures append throughput so the cost
/// of telemetry stays a recorded number, not an assertion.
fn run_streaming(smoke: bool) -> StreamingBench {
    use pctld::{Client, Config, Daemon, Response, RetryPolicy};

    let (n, events, queries) = if smoke {
        (3usize, 60usize, 5usize)
    } else {
        (4, 1200, 40)
    };
    let cfg = RandomConfig {
        processes: n,
        events,
        send_prob: 0.3,
        flip_prob: 0.3,
    };
    let dep = random_deposet(&cfg, 17);
    let pred = DisjunctivePredicate::at_least_one(n, "ok");
    let daemon = Daemon::spawn(Config::default()).expect("bind streaming bench daemon");
    let addr = daemon.local_addr();

    // Sustained append throughput, one event per round trip.
    let (init, ops) = pctl_deposet::linearize(&dep);
    let streamed = ops.len();
    let mut c = Client::connect(addr).expect("connect");
    assert_eq!(
        c.hello("bench-append", pred.locals().to_vec(), Some(init.clone()))
            .expect("hello"),
        Response::Ok
    );
    let mut append_samples = Vec::with_capacity(streamed);
    let mut busy = 0u64;
    let t_all = Instant::now();
    for op in &ops {
        let t0 = Instant::now();
        match c
            .append_retry("bench-append", op.clone(), RetryPolicy::default())
            .expect("append")
        {
            Response::Ok => {}
            other => panic!("append refused mid-bench: {other:?}"),
        }
        append_samples.push(micros(t0.elapsed()));
    }
    let total = t_all.elapsed();
    assert_eq!(c.close("bench-append").expect("close"), Response::Ok);

    // Query under load: a writer thread streams the same computation into
    // a fresh session while this thread hammers it with Detect.
    let locals_off = pred.locals().to_vec();
    let writer = std::thread::spawn(move || {
        let mut w = Client::connect(addr).expect("writer connect");
        assert_eq!(
            w.hello("bench-load", pred.locals().to_vec(), Some(init))
                .expect("writer hello"),
            Response::Ok
        );
        let mut bounced = 0u64;
        for op in ops {
            loop {
                match w.append("bench-load", op.clone()).expect("writer append") {
                    Response::Ok => break,
                    Response::Busy { retry_after_ms } => {
                        bounced += 1;
                        std::thread::sleep(std::time::Duration::from_millis(retry_after_ms));
                    }
                    other => panic!("writer refused: {other:?}"),
                }
            }
        }
        bounced
    });
    // Let the writer's Hello land before querying.
    let mut query_samples = Vec::with_capacity(queries);
    while query_samples.len() < queries {
        let t0 = Instant::now();
        match c.detect("bench-load") {
            Ok(Response::Detect { .. }) => query_samples.push(micros(t0.elapsed())),
            Ok(Response::Err { .. }) => {
                // Session not open yet; not a latency sample.
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            Ok(other) => panic!("unexpected detect answer: {other:?}"),
            Err(e) => panic!("detect failed: {e}"),
        }
    }
    busy += writer.join().expect("writer thread");
    assert_eq!(c.close("bench-load").expect("close"), Response::Ok);
    assert_eq!(daemon.shutdown(), 0, "bench daemon must drain cleanly");

    // Telemetry-off pass: same ops, fresh daemon with request telemetry
    // disabled, append throughput only.
    let off_daemon = Daemon::spawn(Config {
        telemetry: false,
        ..Config::default()
    })
    .expect("bind telemetry-off bench daemon");
    let (init2, ops2) = pctl_deposet::linearize(&dep);
    let mut c2 = Client::connect(off_daemon.local_addr()).expect("connect telemetry-off");
    assert_eq!(
        c2.hello("bench-off", locals_off, Some(init2))
            .expect("hello telemetry-off"),
        Response::Ok
    );
    let t_off = Instant::now();
    for op in ops2 {
        match c2
            .append_retry("bench-off", op, RetryPolicy::default())
            .expect("append telemetry-off")
        {
            Response::Ok => {}
            other => panic!("telemetry-off append refused: {other:?}"),
        }
    }
    let off_total = t_off.elapsed();
    assert_eq!(c2.close("bench-off").expect("close"), Response::Ok);
    assert_eq!(off_daemon.shutdown(), 0, "telemetry-off daemon must drain");

    // Flight-off pass: same ops again, fresh daemon with the flight
    // recorder sampler disabled. Compared against the default (flight on)
    // run to bound the recorder's steady-state overhead.
    let flight_off_daemon = Daemon::spawn(Config {
        flight: false,
        ..Config::default()
    })
    .expect("bind flight-off bench daemon");
    let (init3, ops3) = pctl_deposet::linearize(&dep);
    let locals3 = DisjunctivePredicate::at_least_one(n, "ok")
        .locals()
        .to_vec();
    let mut c3 = Client::connect(flight_off_daemon.local_addr()).expect("connect flight-off");
    assert_eq!(
        c3.hello("bench-flight-off", locals3, Some(init3))
            .expect("hello flight-off"),
        Response::Ok
    );
    let t_floff = Instant::now();
    for op in ops3 {
        match c3
            .append_retry("bench-flight-off", op, RetryPolicy::default())
            .expect("append flight-off")
        {
            Response::Ok => {}
            other => panic!("flight-off append refused: {other:?}"),
        }
    }
    let flight_off_total = t_floff.elapsed();
    assert_eq!(c3.close("bench-flight-off").expect("close"), Response::Ok);
    assert_eq!(
        flight_off_daemon.shutdown(),
        0,
        "flight-off daemon must drain"
    );

    StreamingBench {
        workload: format!("random_n{n}_e{events}"),
        processes: n,
        events: streamed,
        append_events_per_sec: streamed as f64 / total.as_secs_f64().max(1e-9),
        append_wall: WallStats::of(&append_samples),
        query_under_load: WallStats::of(&query_samples),
        busy_bounces: busy,
        append_events_per_sec_telemetry_off: Some(
            streamed as f64 / off_total.as_secs_f64().max(1e-9),
        ),
        append_events_per_sec_flight_off: Some(
            streamed as f64 / flight_off_total.as_secs_f64().max(1e-9),
        ),
    }
}

// ------------------------------------------------------------------ sweep --

/// The comparable fingerprint of one seed's sweep outcome.
#[derive(Debug, PartialEq, Eq, Clone)]
struct SweepOutcome {
    fully_safe: bool,
    safe_modulo_crashes: bool,
    unwitnessed: Option<Vec<u32>>,
    clean: Option<Vec<u32>>,
    down_windows: usize,
}

/// One seed's measured unit: deposet construction from pre-built parts
/// (the vector-clock DP) plus the full safety sweep.
fn sweep_one(parts: &Parts, witness: &LocalPredicate) -> (SweepOutcome, u64) {
    let (states, events, messages) = parts.clone_parts();
    let t0 = Instant::now();
    let dep = Deposet::from_parts(states, events, messages).expect("generated parts are valid");
    let report = sweep_faulty_run(&dep, witness);
    let us = micros(t0.elapsed());
    (
        SweepOutcome {
            fully_safe: report.fully_safe(),
            safe_modulo_crashes: report.safe_modulo_crashes(),
            unwitnessed: report.unwitnessed_cut.map(|g| g.indices().to_vec()),
            clean: report.clean_violation.map(|g| g.indices().to_vec()),
            down_windows: report.down_windows.len(),
        },
        us,
    )
}

/// Pre-generated deposet raw parts (kept outside the timed region so the
/// bench measures clock construction + sweep, not workload generation).
struct Parts {
    states: Vec<Vec<pctl_deposet::LocalState>>,
    events: Vec<Vec<pctl_deposet::EventKind>>,
    messages: Vec<pctl_deposet::Message>,
}

impl Parts {
    fn clone_parts(
        &self,
    ) -> (
        Vec<Vec<pctl_deposet::LocalState>>,
        Vec<Vec<pctl_deposet::EventKind>>,
        Vec<pctl_deposet::Message>,
    ) {
        (
            self.states.clone(),
            self.events.clone(),
            self.messages.clone(),
        )
    }
}

fn run_sweep(smoke: bool, baseline_path: &std::path::Path) -> (SweepReport, prof::ProfReport) {
    let (seeds, processes, events, rounds) = if smoke {
        (3usize, 3usize, 120usize, 2usize)
    } else {
        (16, 8, 6000, 3)
    };
    let cfg = RandomConfig {
        processes,
        events,
        send_prob: 0.3,
        flip_prob: 0.3,
    };
    let witness = LocalPredicate::var("ok");
    let parts: Vec<Parts> = (0..seeds as u64)
        .map(|seed| {
            let (states, events, messages) = random_deposet(&cfg, seed).into_parts();
            Parts {
                states,
                events,
                messages,
            }
        })
        .collect();
    let states_total: usize = parts
        .iter()
        .map(|p| p.states.iter().map(Vec::len).sum::<usize>())
        .sum();

    // Sequential rounds.
    let mut seq_samples = Vec::new();
    let mut seq_total_us = u64::MAX;
    let mut seq_outcomes: Vec<SweepOutcome> = Vec::new();
    for _ in 0..rounds {
        let t0 = Instant::now();
        let round: Vec<(SweepOutcome, u64)> =
            parts.iter().map(|p| sweep_one(p, &witness)).collect();
        let total = micros(t0.elapsed());
        seq_total_us = seq_total_us.min(total);
        seq_outcomes = round.iter().map(|(o, _)| o.clone()).collect();
        seq_samples.extend(round.iter().map(|(_, us)| *us));
    }

    // Parallel rounds (deterministic ordered merge).
    let threads = worker_count(parts.len());
    let mut par_samples = Vec::new();
    let mut par_total_us = u64::MAX;
    let mut par_outcomes: Vec<SweepOutcome> = Vec::new();
    for _ in 0..rounds {
        let t0 = Instant::now();
        let round: Vec<(SweepOutcome, u64)> = ordered_map(&parts, |_, p| sweep_one(p, &witness));
        let total = micros(t0.elapsed());
        par_total_us = par_total_us.min(total);
        par_outcomes = round.iter().map(|(o, _)| o.clone()).collect();
        par_samples.extend(round.iter().map(|(_, us)| *us));
    }

    assert_eq!(
        seq_outcomes, par_outcomes,
        "parallel sweep must be bit-identical to sequential"
    );

    // One profiler-enabled sequential round, strictly after the timed
    // rounds so instrumentation can never perturb the measurements. The
    // resulting phase report both bounds profiler overhead (see main) and
    // feeds the Chrome trace export.
    prof::reset();
    prof::set_enabled(true);
    let prof_outcomes: Vec<SweepOutcome> = parts.iter().map(|p| sweep_one(p, &witness).0).collect();
    prof::set_enabled(false);
    let prof_report = prof::report();
    assert_eq!(
        prof_outcomes, seq_outcomes,
        "profiling is observational: the profiled round must be bit-identical"
    );

    // The recorded baseline is full-size; comparing a --smoke run against
    // it would be apples to oranges, so smoke reports omit it.
    let baseline: Option<Baseline> = if smoke {
        None
    } else {
        std::fs::read_to_string(baseline_path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
    };
    let speedup = baseline
        .as_ref()
        .map(|b| b.total_ms / sequential_ms(seq_total_us).max(1e-9));

    let mode = |name: &str, threads: usize, samples: &[u64], total_us: u64| SweepMode {
        mode: name.into(),
        threads,
        per_seed: WallStats::of(samples),
        total_ms: total_us as f64 / 1e3,
        states_per_sec: states_total as f64 / (total_us.max(1) as f64 / 1e6),
    };
    let sequential = mode("sequential", 1, &seq_samples, seq_total_us);
    let parallel = mode("parallel", threads, &par_samples, par_total_us);

    let report = SweepReport {
        schema: SCHEMA.into(),
        bench: "sweep".into(),
        smoke,
        seeds,
        processes,
        events_per_seed: events,
        states_total,
        sequential,
        parallel,
        deterministic: true,
        baseline,
        speedup_vs_baseline: speedup,
    };
    (report, prof_report)
}

fn sequential_ms(total_us: u64) -> f64 {
    total_us as f64 / 1e3
}

/// Bound the profiler's disabled-path cost: the spans one sweep round
/// completes, times the measured per-span disabled cost, must stay below
/// 2% of the sweep's sequential wall time.
fn check_disabled_overhead(prof_report: &prof::ProfReport, seq_total_us: u64) -> (f64, u64, f64) {
    let spans = prof_report.span_count();
    let per_span_ns = prof::disabled_span_cost_ns(1_000_000);
    let overhead_ns = spans as f64 * per_span_ns;
    let run_ns = (seq_total_us.max(1) * 1000) as f64;
    let pct = overhead_ns / run_ns * 100.0;
    (per_span_ns, spans, pct)
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");

    let mut offline = run_offline(args.smoke);
    offline.shard_sweep = Some(run_shard_sweep(args.smoke));
    offline.overlap = Some(run_overlap(args.smoke));
    offline.streaming = Some(run_streaming(args.smoke));
    offline.slicing = Some(run_slicing(args.smoke));
    offline.sim_core = Some(run_sim_core(args.smoke));
    let path = args.out_dir.join("BENCH_offline.json");
    pctl_bench::report::write_validated(&path, &offline).expect("write BENCH_offline.json");
    println!("wrote {} ({} cases)", path.display(), offline.cases.len());
    for c in &offline.cases {
        println!(
            "  {:<24} {:<9} states={:<6} p50={}us p95={}us  {:.0} states/s",
            c.name, c.engine, c.states, c.wall.p50_us, c.wall.p95_us, c.states_per_sec
        );
    }
    if let Some(ss) = &offline.shard_sweep {
        println!(
            "  shard_sweep {} states={} flat: construct p50={}us index p50={}us (deterministic={})",
            ss.workload,
            ss.states,
            ss.flat_construct_p50_us,
            ss.flat_index_p50_us,
            ss.deterministic
        );
        for c in &ss.cases {
            println!(
                "    shards={} rounds={} construct p50={}us ({:.2}x vs flat) index p50={}us words={:?}",
                c.shards,
                c.rounds,
                c.construct_p50_us,
                c.speedup_vs_flat,
                c.index_p50_us,
                c.per_shard_words
            );
        }
    }
    if let Some(o) = &offline.overlap {
        println!(
            "  overlap {} intervals={} p50={}us p95={}us found={}",
            o.workload, o.intervals_total, o.wall.p50_us, o.wall.p95_us, o.found
        );
    }
    if let Some(s) = &offline.streaming {
        println!(
            "  streaming {} append: {:.0} events/s p50={}us p95={}us  \
             query-under-load: p50={}us p95={}us  busy_bounces={}",
            s.workload,
            s.append_events_per_sec,
            s.append_wall.p50_us,
            s.append_wall.p95_us,
            s.query_under_load.p50_us,
            s.query_under_load.p95_us,
            s.busy_bounces
        );
        if let Some(off) = s.append_events_per_sec_telemetry_off {
            println!(
                "    telemetry off: {off:.0} events/s (telemetry cost is \
                 measured, not assumed)"
            );
        }
        if let Some(off) = s.append_events_per_sec_flight_off {
            let overhead_pct = (off - s.append_events_per_sec) / off.max(1e-9) * 100.0;
            println!(
                "    flight off: {off:.0} events/s (recorder overhead {}{:.1}%)",
                if overhead_pct >= 0.0 { "+" } else { "" },
                overhead_pct
            );
            if overhead_pct > 5.0 {
                if args.smoke {
                    println!(
                        "WARNING: flight recorder overhead {overhead_pct:.1}% exceeds 5%, \
                         but --smoke workloads are too small for a stable ratio; not failing"
                    );
                } else {
                    eprintln!(
                        "FAIL: flight recorder overhead {overhead_pct:.1}% exceeds the 5% budget"
                    );
                    std::process::exit(2);
                }
            }
        }
    }
    if let Some(sl) = &offline.slicing {
        println!(
            "  slicing {} cuts: {} lattice → {} slice (pruning {:.1}x)  \
             states: {}/{} survive in {} class(es)",
            sl.workload,
            sl.lattice_cuts,
            sl.slice_cuts,
            sl.pruning_ratio,
            sl.surviving_states,
            sl.states,
            sl.classes
        );
        println!(
            "    construct p50={}us  sliced detect+control p50={}us  \
             unsliced brute-force p50={}us  feasible={}",
            sl.slice_construct.p50_us,
            sl.sliced_control.p50_us,
            sl.unsliced_control.p50_us,
            sl.feasible
        );
    }
    if let Some(sc) = &offline.sim_core {
        println!(
            "  sim_core {} events={} p50={}us  {:.2}M events/s  \
             arena hw/slots={}/{} (live bound {})  inbox hw={} wheel hw={} \
             timesteps={} memory_bounded={}",
            sc.workload,
            sc.events,
            sc.wall.p50_us,
            sc.events_per_sec / 1e6,
            sc.arena_high_water,
            sc.arena_slots,
            sc.live_state_bound,
            sc.inbox_high_water,
            sc.wheel_high_water,
            sc.timesteps,
            sc.memory_bounded
        );
    }

    let (sweep, prof_report) = run_sweep(args.smoke, &args.baseline);
    let path = args.out_dir.join("BENCH_sweep.json");
    pctl_bench::report::write_validated(&path, &sweep).expect("write BENCH_sweep.json");
    println!(
        "wrote {} (seeds={} states={})",
        path.display(),
        sweep.seeds,
        sweep.states_total
    );
    println!(
        "  sequential: total={:.1}ms p50={}us p95={}us  {:.0} states/s",
        sweep.sequential.total_ms,
        sweep.sequential.per_seed.p50_us,
        sweep.sequential.per_seed.p95_us,
        sweep.sequential.states_per_sec
    );
    println!(
        "  parallel({}): total={:.1}ms p50={}us p95={}us  {:.0} states/s",
        sweep.parallel.threads,
        sweep.parallel.total_ms,
        sweep.parallel.per_seed.p50_us,
        sweep.parallel.per_seed.p95_us,
        sweep.parallel.states_per_sec
    );
    if let (Some(b), Some(s)) = (&sweep.baseline, sweep.speedup_vs_baseline) {
        println!(
            "  baseline ({}): {:.1}ms → speedup {:.2}x",
            b.recorded, b.total_ms, s
        );
    }

    // Profiler: phase report, Chrome trace export, disabled-cost bound.
    println!("profiler (one post-measurement sweep round):");
    print!("{}", prof_report.render());
    if let Some(trace_path) = &args.prof_trace {
        let json = prof::chrome_trace_json();
        std::fs::write(trace_path, &json).expect("write profiler Chrome trace");
        println!(
            "wrote {} ({} bytes; load in Perfetto / chrome://tracing)",
            trace_path.display(),
            json.len()
        );
    }
    let seq_total_us = (sweep.sequential.total_ms * 1e3) as u64;
    let (per_span_ns, spans, overhead_pct) = check_disabled_overhead(&prof_report, seq_total_us);
    println!(
        "  disabled-span cost: {per_span_ns:.2}ns/span × {spans} spans = {overhead_pct:.4}% of sweep"
    );
    assert!(
        overhead_pct < 2.0,
        "disabled profiler overhead {overhead_pct:.4}% exceeds the 2% budget \
         ({per_span_ns:.2}ns/span × {spans} spans over {seq_total_us}us)"
    );

    // The gate compares the sharded construction at the highest measured
    // shard count (the headline configuration).
    let shard_p50 = offline
        .shard_sweep
        .as_ref()
        .and_then(|s| s.cases.last())
        .map(|c| c.construct_p50_us);

    if let Some(path) = &args.write_baseline {
        let b = Baseline {
            recorded: format!(
                "bench_suite --write-baseline (smoke={}, seeds={})",
                sweep.smoke, sweep.seeds
            ),
            total_ms: sweep.sequential.total_ms,
            states_per_sec: sweep.sequential.states_per_sec,
            per_seed_p50_us: sweep.sequential.per_seed.p50_us,
            per_seed_p95_us: sweep.sequential.per_seed.p95_us,
            shard_construct_p50_us: shard_p50,
            streaming_append_events_per_sec: offline
                .streaming
                .as_ref()
                .map(|s| s.append_events_per_sec),
            streaming_append_p50_us: offline.streaming.as_ref().map(|s| s.append_wall.p50_us),
            streaming_query_p50_us: offline
                .streaming
                .as_ref()
                .map(|s| s.query_under_load.p50_us),
            slicing_construct_p50_us: offline.slicing.as_ref().map(|s| s.slice_construct.p50_us),
            slicing_control_p50_us: offline.slicing.as_ref().map(|s| s.sliced_control.p50_us),
            slicing_pruning_ratio: offline.slicing.as_ref().map(|s| s.pruning_ratio),
            sim_core_events_per_sec: offline.sim_core.as_ref().map(|s| s.events_per_sec),
        };
        pctl_bench::report::write_validated(path, &b).expect("write baseline");
        println!("wrote {} (recorded sweep baseline)", path.display());
    }

    // ------------------------------------------------------------- gate --
    if let Some(compare_path) = &args.compare {
        let text = std::fs::read_to_string(compare_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", compare_path.display());
            std::process::exit(3);
        });
        let baseline: Baseline = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {}: {e}", compare_path.display());
            std::process::exit(3);
        });
        let cmp = CompareReport::of(
            &baseline,
            &compare_path.display().to_string(),
            &sweep.sequential,
            shard_p50,
            offline.streaming.as_ref(),
            offline.slicing.as_ref(),
            offline.sim_core.as_ref(),
            args.threshold_pct,
            args.inject_slowdown,
            args.smoke,
        );
        let path = args.out_dir.join("BENCH_compare.json");
        pctl_bench::report::write_validated(&path, &cmp).expect("write BENCH_compare.json");
        println!(
            "wrote {} (threshold {:.0}%, {} regression(s))",
            path.display(),
            cmp.threshold_pct,
            cmp.regressions
        );
        if baseline.streaming_append_events_per_sec.is_none() {
            println!(
                "  note: baseline {} predates streaming scenarios; the daemon \
                 path is not gated by this compare (re-freeze with \
                 --write-baseline to gate it)",
                compare_path.display()
            );
        }
        if baseline.sim_core_events_per_sec.is_none() {
            println!(
                "  note: baseline {} predates the sim_core section; engine \
                 throughput is not gated by this compare (re-freeze with \
                 --write-baseline to gate it)",
                compare_path.display()
            );
        }
        for c in &cmp.cases {
            println!(
                "  {:<24} baseline={:<12.1} current={:<12.1} {:<9} {}{:.1}% {}",
                c.scenario,
                c.baseline,
                c.current,
                c.unit,
                if c.worse_pct >= 0.0 { "+" } else { "" },
                c.worse_pct,
                if c.regressed { "REGRESSED" } else { "ok" }
            );
        }
        if !cmp.passed {
            if args.smoke && !args.strict {
                println!(
                    "WARNING: {} scenario(s) regressed past {:.0}%, but --smoke numbers \
                     are not comparable to a full-size baseline; not failing \
                     (pass --strict to fail anyway)",
                    cmp.regressions, cmp.threshold_pct
                );
            } else {
                eprintln!(
                    "FAIL: {} scenario(s) regressed more than {:.0}% vs {}",
                    cmp.regressions,
                    cmp.threshold_pct,
                    compare_path.display()
                );
                std::process::exit(2);
            }
        }
    }
}
