//! Experiment E7: the Figure-3 strategy under injected faults.
//!
//! The paper assumes reliable channels and immortal processes; this sweep
//! measures what the hardened protocol (`pctl_core::online::ft` driving the
//! k-mutex workload of `pctl_mutex::ft_antitoken`) pays to drop those
//! assumptions:
//!
//! * **loss sweep** — message-drop rates from 0% to 20%: every run must
//!   still complete its full entry quota with `max_concurrent ≤ n−1`, and
//!   the post-run sweep must find *no* consistent cut without a live
//!   witness (loss alone never breaks `B`); the cost shows up as
//!   retransmissions and control-message overhead;
//! * **crash recovery** — the initial scapegoat crashes mid-run (with and
//!   without restart): the anti-token must be regenerated or rejoined, the
//!   run must finish, and any unwitnessed cut must contain the crashed
//!   process (`safe_modulo_crashes`).

use pctl_bench::{cell, Table};
use pctl_core::online::ft::FtParams;
use pctl_core::online::PeerSelect;
use pctl_core::verify::sweep_faulty_run;
use pctl_deposet::par::ordered_map;
use pctl_deposet::{LocalPredicate, ProcessId};
use pctl_mutex::driver::{max_concurrent, WorkloadConfig};
use pctl_mutex::run_ft_antitoken;
use pctl_sim::{FaultPlan, SimTime};

const SEEDS: u64 = 5;

fn workload(n: usize, seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        processes: n,
        entries_per_process: 6,
        think: (20, 60),
        cs: (5, 15),
        seed,
        delay: 10,
    }
}

fn main() {
    println!("E7: hardened scapegoat protocol under injected faults (n = 4, k = 3)\n");

    // --- message-loss sweep -------------------------------------------------
    let n = 4usize;
    let mut table = Table::new(&[
        "drop %",
        "entries",
        "dropped",
        "retrans",
        "ctrl msgs",
        "msgs/entry",
        "resp mean",
        "resp p50/p95/p99",
        "max conc",
        "fully safe",
    ]);
    let seeds: Vec<u64> = (0..SEEDS).collect();
    for drop_pct in [0u32, 2, 5, 10, 20] {
        // Per-seed runs are independent (deterministic simulated-time
        // metrics, no wall-clock): fan out, aggregate in seed order.
        let runs = ordered_map(&seeds, |_, &seed| {
            let plan = FaultPlan::uniform_loss(f64::from(drop_pct) / 100.0);
            let r = run_ft_antitoken(
                &workload(n, seed),
                PeerSelect::NextInRing,
                FtParams::default(),
                plan,
            );
            assert!(!r.deadlocked(), "drop={drop_pct}% seed={seed}: deadlock");
            let report = sweep_faulty_run(&r.deposet, &LocalPredicate::not_var("cs"));
            assert!(
                report.safe_modulo_crashes(),
                "drop={drop_pct}% seed={seed}: clean violation {report:?}"
            );
            (r, report)
        });
        let mut entries = 0u64;
        let mut dropped = 0u64;
        let mut retrans = 0u64;
        let mut ctrl = 0u64;
        let mut responses: Vec<u64> = Vec::new();
        let mut conc = 0usize;
        let mut safe = 0u64;
        for (r, report) in &runs {
            entries += r.metrics.counter("entries");
            dropped += r.metrics.counter("msgs_dropped");
            retrans += r.metrics.counter("retransmissions");
            ctrl += r.metrics.counter("msgs_ctrl");
            responses.extend(r.metrics.samples("response"));
            conc = conc.max(max_concurrent(&r.metrics, n));
            safe += u64::from(report.fully_safe());
        }
        let mut agg = pctl_sim::Metrics::default();
        for &v in &responses {
            agg.record("response", v);
        }
        let (rmean, rpcts) = match agg.summary("response") {
            Some(s) => (s.mean, format!("{}/{}/{}", s.p50, s.p95, s.p99)),
            None => (0.0, "-".to_string()),
        };
        table.row(vec![
            cell(drop_pct),
            cell(entries),
            cell(dropped),
            cell(retrans),
            cell(ctrl),
            cell(format!("{:.3}", ctrl as f64 / entries as f64)),
            cell(format!("{rmean:.1}")),
            cell(rpcts),
            cell(conc),
            cell(format!("{safe}/{SEEDS}")),
        ]);
    }
    table.print();
    println!(
        "\n(loss alone never violates B — \"fully safe\" must be {SEEDS}/{SEEDS} on every\n\
         row; the price of unreliable channels is retransmissions and a higher\n\
         msgs/entry than the paper's 2-per-handover)"
    );

    // --- crash of the initial scapegoat -------------------------------------
    println!("\ncrash of the initial scapegoat P0 at t=25:\n");
    let mut crash_table = Table::new(&[
        "restart",
        "entries",
        "rejoins",
        "regens",
        "aborted cs",
        "max conc",
        "safe mod crashes",
        "fault counters (seed 0)",
    ]);
    for restart in [None, Some(300u64)] {
        let runs = ordered_map(&seeds, |_, &seed| {
            let plan = FaultPlan::none().with_crash(ProcessId(0), SimTime(25), restart);
            let r = run_ft_antitoken(
                &workload(n, seed),
                PeerSelect::NextInRing,
                FtParams::default(),
                plan,
            );
            // `deadlocked()` is useless here: a crashed-for-good P0 never
            // reports done, so every no-restart run trips it. The refined
            // predicate separates the dead process (expected) from live
            // processes starving mid-protocol (a real liveness bug).
            assert!(
                !r.protocol_deadlock(),
                "restart={restart:?} seed={seed}: live processes starved: {:?}",
                r.outcomes()
            );
            let report = sweep_faulty_run(&r.deposet, &LocalPredicate::not_var("cs"));
            (r, report)
        });
        let mut entries = 0u64;
        let mut rejoins = 0u64;
        let mut regens = 0u64;
        let mut aborted = 0u64;
        let mut conc = 0usize;
        let mut safe = 0u64;
        let mut first_line = String::new();
        for (seed, (r, report)) in runs.iter().enumerate() {
            entries += r.metrics.counter("entries");
            rejoins += r.metrics.counter("rejoins");
            regens += r.metrics.counter("regenerations");
            aborted += r.metrics.counter("aborted_cs");
            conc = conc.max(max_concurrent(&r.metrics, n));
            safe += u64::from(report.safe_modulo_crashes());
            if seed == 0 {
                first_line = r.metrics.fault_line();
            }
        }
        crash_table.row(vec![
            cell(match restart {
                Some(t) => format!("after {t}"),
                None => "never".to_string(),
            }),
            cell(entries),
            cell(rejoins),
            cell(regens),
            cell(aborted),
            cell(conc),
            cell(format!("{safe}/{SEEDS}")),
            cell(first_line),
        ]);
    }
    crash_table.print();
    println!(
        "\n(a crash can suppress B only on cuts containing the dead process, for at\n\
         most one watchdog window — \"safe mod crashes\" must be {SEEDS}/{SEEDS}; without a\n\
         restart the quota of the dead process is forfeited, with one it is met\n\
         minus entries aborted inside the CS)"
    );
}
