//! Experiment E1 (paper Figure 1 / Lemma 1 / Theorem 1):
//! SAT reduces to Satisfying Global Sequence Detection.
//!
//! For random 3-SAT instances near the phase transition (clause/variable
//! ratio ≈ 4.3):
//!
//! 1. build the Figure-1 gadget deposet;
//! 2. decide SGSD by exhaustive lattice search and SAT by DPLL;
//! 3. verify they always agree (correctness of the reduction);
//! 4. report the runtimes — exhaustive SGSD grows exponentially in the
//!    variable count while DPLL stays negligible on these sizes, which is
//!    the operational face of Theorem 1 ("off-line predicate control is
//!    NP-hard": the general problem *is* this search).

use pctl_bench::{cell, loglog_slope, timed, Table};
use pctl_core::reduction::reduce_sat_to_sgsd;
use pctl_core::sat::{satisfiable, Cnf};
use pctl_core::sgsd::sgsd;
use pctl_deposet::par::ordered_map;

fn main() {
    println!("E1: SAT -> SGSD reduction (paper Fig. 1, Lemma 1, Thm 1)\n");
    let mut table = Table::new(&[
        "vars",
        "clauses",
        "instances",
        "sat",
        "agree",
        "sgsd median",
        "dpll median",
        "lattice states",
    ]);
    let mut scaling: Vec<(f64, f64)> = Vec::new();
    for m in [3usize, 4, 5, 6, 7, 8, 9, 10] {
        let clauses = (m as f64 * 4.3).round() as usize;
        let instances = 5;
        let mut sat_count = 0;
        let mut agree = 0;
        let mut sgsd_times = Vec::new();
        let mut dpll_times = Vec::new();
        // Instance prep (CNF sampling + gadget construction) is per-seed
        // independent: fan out, deterministic merge. The decision timings
        // below stay on the measuring thread.
        let seeds: Vec<u64> = (0..instances as u64).map(|s| s + 1000 * m as u64).collect();
        let prepared = ordered_map(&seeds, |_, &seed| {
            let cnf = Cnf::random_ksat(m, clauses, 3, seed);
            let inst = reduce_sat_to_sgsd(&cnf);
            (cnf, inst)
        });
        for (cnf, inst) in &prepared {
            let (sgsd_out, t_sgsd) =
                timed(|| sgsd(&inst.deposet, &inst.predicate, usize::MAX).unwrap());
            let (dpll_out, t_dpll) = timed(|| satisfiable(cnf));
            sgsd_times.push(t_sgsd);
            dpll_times.push(t_dpll);
            if dpll_out {
                sat_count += 1;
            }
            if sgsd_out.is_satisfiable() == dpll_out {
                agree += 1;
            }
        }
        sgsd_times.sort();
        dpll_times.sort();
        let sgsd_med = sgsd_times[instances / 2];
        let dpll_med = dpll_times[instances / 2];
        // The gadget's lattice: x_m has 3 states, each variable 2, all
        // consistent (no messages) ⇒ 3·2^m global states.
        let lattice = 3u64 * (1u64 << m);
        scaling.push((m as f64, sgsd_med.as_secs_f64().max(1e-9)));
        table.row(vec![
            cell(m),
            cell(clauses),
            cell(instances),
            cell(sat_count),
            cell(format!("{agree}/{instances}")),
            cell(format!("{:.3?}", sgsd_med)),
            cell(format!("{:.3?}", dpll_med)),
            cell(lattice),
        ]);
    }
    table.print();
    // Exponential check: log(time) vs m should be roughly linear; report
    // the doubling factor per added variable over the top half of the
    // sweep (small sizes are noise-dominated).
    let top = &scaling[scaling.len() / 2..];
    let per_var: Vec<f64> = top.windows(2).map(|w| w[1].1 / w[0].1.max(1e-12)).collect();
    let geo_mean = per_var
        .iter()
        .product::<f64>()
        .powf(1.0 / per_var.len() as f64);
    println!("\nexhaustive-SGSD growth factor per extra variable (top half): {geo_mean:.2}x");
    println!("(the gadget lattice doubles per variable; factor ≈ 2 ⇒ exponential)");
    let slope = loglog_slope(&scaling);
    println!("log-log slope vs m (for reference, not a power law): {slope:.2}");
}
