//! Experiment E2 (paper Figure 2 + Section 5 Evaluation):
//! the off-line disjunctive control algorithm.
//!
//! Reproduced claims:
//!
//! * the optimized engine runs in **O(n²p)** and the naive engine in
//!   **O(n³p)** — verified by empirical scaling exponents of both wall
//!   time and `crossable()` operation counts (the dominant cost);
//! * the output satisfies **|C→| ≤ np** (≤ one control message per crossed
//!   false interval);
//! * for two-process mutual exclusion, at most **one message per critical
//!   section** in the worst case;
//! * every synthesized relation verifies exhaustively on small instances.
//!
//! Workload notes: the adversarial case for ValidPairs maintenance is a
//! *concurrent* workload (no cross-process causality): crossings spread
//! over all `n` processes, the loop runs ≈ `n·p` times, and the paper's
//! `select()` (here `SelectPolicy::Random`) must consider the full
//! candidate set each round. Message-rich (pipelined) workloads are also
//! reported: causality lets the advancement step cross intervals passively,
//! so the loop runs ≈ `p` times — faster in practice, same bounds.

use pctl_bench::{cell, loglog_slope, median_time, Table};
use pctl_core::offline::{control_intervals, Engine, OfflineOptions, SelectPolicy};
use pctl_core::verify::verify_disjunctive;
use pctl_deposet::generator::{cs_workload, pipelined_workload, CsConfig};
use pctl_deposet::{DisjunctivePredicate, FalseIntervals};

fn opts(engine: Engine) -> OfflineOptions {
    OfflineOptions {
        policy: SelectPolicy::Random { seed: 3 },
        engine,
    }
}

fn main() {
    println!("E2: off-line disjunctive control (paper Fig. 2, Section 5)\n");

    // --- adversarial concurrent workload: time vs n at fixed p -------------
    let p = 32usize;
    println!("concurrent workload (no causal help), p = {p}:\n");
    let mut table = Table::new(&[
        "n",
        "iters",
        "|C|",
        "|C|<=np",
        "optimized",
        "naive",
        "opt checks",
        "naive checks",
    ]);
    let mut t_opt_pts: Vec<(f64, f64)> = Vec::new();
    let mut t_naive_pts: Vec<(f64, f64)> = Vec::new();
    let mut c_opt_pts: Vec<(f64, f64)> = Vec::new();
    let mut c_naive_pts: Vec<(f64, f64)> = Vec::new();
    for n in [4usize, 8, 16, 32, 64] {
        let cfg = CsConfig {
            processes: n,
            sections_per_process: p,
            max_cs_len: 2,
            max_gap_len: 2,
        };
        let dep = cs_workload(&cfg, 7);
        let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
        let iv = FalseIntervals::extract(&dep, &pred);
        let ((res_o, stats_o), t_opt) =
            median_time(3, || control_intervals(&dep, &iv, opts(Engine::Optimized)));
        let ((res_n, stats_n), t_naive) =
            median_time(3, || control_intervals(&dep, &iv, opts(Engine::Naive)));
        let rel = res_o.expect("cs workload always feasible");
        assert!(res_n.is_ok());
        assert!(rel.len() <= n * p);
        table.row(vec![
            cell(n),
            cell(stats_o.iterations),
            cell(rel.len()),
            cell(rel.len() <= n * p),
            cell(format!("{:.3?}", t_opt)),
            cell(format!("{:.3?}", t_naive)),
            cell(stats_o.pair_checks),
            cell(stats_n.pair_checks),
        ]);
        t_opt_pts.push((n as f64, t_opt.as_secs_f64()));
        t_naive_pts.push((n as f64, t_naive.as_secs_f64()));
        c_opt_pts.push((n as f64, stats_o.pair_checks as f64));
        c_naive_pts.push((n as f64, stats_n.pair_checks as f64));
    }
    table.print();
    println!("\nscaling exponents in n (fixed p={p}):");
    println!(
        "  optimized: time n^{:.2}, checks n^{:.2}   (paper O(n^2 p): ≈ 2)",
        loglog_slope(&t_opt_pts[1..]),
        loglog_slope(&c_opt_pts[1..])
    );
    println!(
        "  naive:     time n^{:.2}, checks n^{:.2}   (paper O(n^3 p): ≈ 3)",
        loglog_slope(&t_naive_pts[1..]),
        loglog_slope(&c_naive_pts[1..])
    );

    // --- time vs p at fixed n ----------------------------------------------
    let n = 16usize;
    let mut table_p = Table::new(&["p", "iters", "|C|", "optimized", "checks"]);
    let mut pts_p: Vec<(f64, f64)> = Vec::new();
    for p in [16usize, 32, 64, 128, 256, 512] {
        let cfg = CsConfig {
            processes: n,
            sections_per_process: p,
            max_cs_len: 2,
            max_gap_len: 2,
        };
        let dep = cs_workload(&cfg, 11);
        let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
        let iv = FalseIntervals::extract(&dep, &pred);
        let ((res, stats), t) =
            median_time(3, || control_intervals(&dep, &iv, opts(Engine::Optimized)));
        let rel = res.expect("feasible");
        table_p.row(vec![
            cell(p),
            cell(stats.iterations),
            cell(rel.len()),
            cell(format!("{:.3?}", t)),
            cell(stats.pair_checks),
        ]);
        pts_p.push((p as f64, t.as_secs_f64()));
    }
    println!("\nconcurrent workload, n = {n}, sweep p:\n");
    table_p.print();
    println!(
        "\nscaling exponent in p (fixed n={n}): p^{:.2}   (paper: linear -> ≈ 1)",
        loglog_slope(&pts_p[1..])
    );

    // --- message-rich workload (ring causality) -----------------------------
    println!("\npipelined (message-rich) workload, p = 16:\n");
    let mut table_r = Table::new(&["n", "feasible", "iters", "|C|", "optimized", "verified"]);
    for n in [4usize, 8, 16, 32] {
        let cfg = CsConfig {
            processes: n,
            sections_per_process: 16,
            max_cs_len: 2,
            max_gap_len: 2,
        };
        let dep = pipelined_workload(&cfg, 5);
        let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
        let iv = FalseIntervals::extract(&dep, &pred);
        let ((res, stats), t) =
            median_time(3, || control_intervals(&dep, &iv, opts(Engine::Optimized)));
        let (feasible, clen, verified) = match &res {
            Ok(rel) => {
                let v = if n <= 4 {
                    verify_disjunctive(&dep, &pred, rel, 2_000_000).is_ok()
                } else {
                    true // lattice too large; verified statistically in tests
                };
                (true, rel.len(), v)
            }
            Err(_) => (false, 0, true),
        };
        assert!(verified);
        table_r.row(vec![
            cell(n),
            cell(feasible),
            cell(stats.iterations),
            cell(clen),
            cell(format!("{:.3?}", t)),
            cell(verified),
        ]);
    }
    table_r.print();

    // --- two-process mutual exclusion: ≤ 1 message per CS -------------------
    // No wall-clock measurement in this table, so the per-seed
    // control+verify pipelines fan out (deterministic seed-order merge).
    let mut table_m = Table::new(&["seed", "critical sections", "|C| (messages)", "verified"]);
    let seeds: Vec<u64> = (0..5).collect();
    let mutex_rows = pctl_deposet::par::ordered_map(&seeds, |_, &seed| {
        let cfg = CsConfig {
            processes: 2,
            sections_per_process: 10,
            max_cs_len: 3,
            max_gap_len: 3,
        };
        let dep = cs_workload(&cfg, seed);
        let pred = DisjunctivePredicate::at_least_one_not(2, "cs");
        let iv = FalseIntervals::extract(&dep, &pred);
        let (res, _) = control_intervals(&dep, &iv, opts(Engine::Optimized));
        let rel = res.expect("feasible");
        let total_cs = iv.total();
        assert!(
            rel.len() <= total_cs,
            "one message per CS worst case (Section 5)"
        );
        let verified = verify_disjunctive(&dep, &pred, &rel, 5_000_000).is_ok();
        assert!(verified);
        (seed, total_cs, rel.len(), verified)
    });
    for (seed, total_cs, clen, verified) in mutex_rows {
        table_m.row(vec![cell(seed), cell(total_cs), cell(clen), cell(verified)]);
    }
    println!("\ntwo-process mutual exclusion (Section 5 Evaluation):");
    table_m.print();
}
