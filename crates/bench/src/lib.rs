//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Each table binary regenerates one of the paper's figures/claims (see
//! DESIGN.md's experiment index and EXPERIMENTS.md for recorded results):
//!
//! * `fig1_nphardness` — E1: SAT ↔ SGSD reduction, exponential vs DPLL;
//! * `fig2_complexity` — E2: off-line algorithm scaling and `|C|` bounds;
//! * `fig3_online` — E4/E5: on-line strategy overhead and the k-mutex
//!   comparison;
//! * `fig3_faults` — E7: the hardened on-line strategy under injected
//!   message loss and scapegoat crashes;
//! * `fig4_debugging` — E6: the Section 7 active-debugging walkthrough.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod report;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Fixed-width console table writer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty());
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringifies each cell).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Stringify helper for table cells.
pub fn cell(v: impl Display) -> String {
    v.to_string()
}

/// Time a closure, returning (result, elapsed).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Median wall time of `reps` runs of `f` (result of the last run kept).
pub fn median_time<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (r, d) = timed(&mut f);
        times.push(d);
        last = Some(r);
    }
    times.sort();
    (last.unwrap(), times[reps / 2])
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical scaling
/// exponent (`y ≈ c·xᵏ ⇒ slope ≈ k`).
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2);
    let logged: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| (x.ln(), y.max(1e-12).ln()))
        .collect();
    let n = logged.len() as f64;
    let sx: f64 = logged.iter().map(|p| p.0).sum();
    let sy: f64 = logged.iter().map(|p| p.1).sum();
    let sxx: f64 = logged.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logged.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["n", "time"]);
        t.row(vec![cell(4), cell("1.5ms")]);
        t.row(vec![cell(128), cell("2s")]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("n"));
        assert!(lines[2].starts_with("4"));
        assert!(lines[3].starts_with("128"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_bad_rows() {
        Table::new(&["a"]).row(vec![cell(1), cell(2)]);
    }

    #[test]
    fn loglog_slope_recovers_exponents() {
        // y = 3 x²
        let pts: Vec<(f64, f64)> = (1..10).map(|x| (x as f64, 3.0 * (x * x) as f64)).collect();
        assert!((loglog_slope(&pts) - 2.0).abs() < 1e-9);
        // y = 5 x
        let lin: Vec<(f64, f64)> = (1..10).map(|x| (x as f64, 5.0 * x as f64)).collect();
        assert!((loglog_slope(&lin) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn median_time_runs_all_reps() {
        let mut count = 0;
        let (r, _) = median_time(5, || {
            count += 1;
            count
        });
        assert_eq!(r, 5);
    }
}
