//! Controlled replay of traced distributed computations.
//!
//! This is the *active* half of the paper's debugging cycle (Section 1):
//! after off-line control synthesizes a relation `C→` for a traced
//! computation, the computation is **re-executed** with the control
//! enforced by real (simulated) control messages — the observable
//! behaviour of a control system built from the relation.
//!
//! Each process replays its original event sequence (variable steps, sends,
//! receives, in the original per-process order). Enforcement of a tuple
//! `x C→ y` follows the paper's definition ("the first underlying state
//! before its send and the next underlying state after its receive"):
//!
//! * the owner of `x` sends a control message when it executes the event
//!   *leaving* `x` (so a cut with `x` and `y` both current is impossible,
//!   matching the controlled deposet's extended causality);
//! * the owner of `y` blocks before executing the event leading into `y`
//!   until that message has arrived — the paper's "blocking receive",
//!   transparent to the replayed process (indistinguishable from slow
//!   execution).
//!
//! Application messages are replayed as actual messages and consumed in the
//! original order (arrivals are buffered, so channel reordering cannot
//! corrupt the replay — cf. Netzer & Miller \[9] on replaying traced
//! message-passing programs).
//!
//! A non-interfering control relation can never deadlock a replay: the
//! extended causality is a partial order, so some minimal unexecuted event
//! is always enabled. [`ReplayOutcome::fidelity`] checks the result against
//! the original trace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod reduction;

use pctl_core::ControlRelation;
use pctl_deposet::{Deposet, EventKind, LocalState, ProcessId, Variables};
use pctl_sim::{Ctx, DelayModel, Payload, Process, SimConfig, SimResult, Simulation, TimerId};
use std::collections::{BTreeMap, HashSet};

/// Messages exchanged during replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayMsg {
    /// A replayed application message (original message id).
    App {
        /// Original [`pctl_deposet::MsgId`] index.
        msg: u32,
        /// Original tag, for trace readability.
        tag: String,
    },
    /// A control message enforcing one `C→` tuple.
    Ctrl {
        /// Index of the tuple in the control relation.
        pair: u32,
    },
}

impl Payload for ReplayMsg {
    fn tag(&self) -> &'static str {
        match self {
            ReplayMsg::App { .. } => "replay_app",
            ReplayMsg::Ctrl { .. } => "ctrl",
        }
    }
    fn is_control(&self) -> bool {
        matches!(self, ReplayMsg::Ctrl { .. })
    }
}

/// Replay tuning.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Simulated delay between consecutive replayed events of one process.
    pub step_delay: u64,
    /// Message delay model.
    pub delay: DelayModel,
    /// RNG seed (affects nothing unless delays are random).
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            step_delay: 3,
            delay: DelayModel::Fixed(5),
            seed: 0,
        }
    }
}

/// One process's replay script, derived from the original deposet.
struct Script {
    /// Original event sequence.
    events: Vec<EventKind>,
    /// Original state payloads (index 0 = ⊥).
    states: Vec<LocalState>,
    /// Message destination per original send (by event index).
    send_dest: BTreeMap<usize, ProcessId>,
    /// Control messages to emit while executing the event that leaves
    /// state `k`: `(pair index, destination)`.
    ctrl_out: BTreeMap<u32, Vec<(u32, ProcessId)>>,
    /// Control pairs required before entering state `k`.
    ctrl_in: BTreeMap<u32, Vec<u32>>,
}

struct ReplayProcess {
    script: Script,
    /// Next event index to execute.
    pos: usize,
    /// Buffered application messages not yet consumed.
    app_buf: HashSet<u32>,
    /// Control tuples already received.
    ctrl_got: HashSet<u32>,
    /// Whether a step timer is outstanding.
    timer_armed: bool,
    step_delay: u64,
}

impl ReplayProcess {
    /// Variable updates turning state `k`'s payload into state `k+1`'s.
    fn delta(&self, k: usize) -> Vec<(String, i64)> {
        let old = &self.script.states[k].vars;
        let new = &self.script.states[k + 1].vars;
        let mut out = Vec::new();
        for (name, v) in new.iter() {
            if old.get(name) != Some(v) {
                out.push((name.to_owned(), v));
            }
        }
        // Variables cannot be unset in our model (set-only maps), so a
        // disappearing key would be a corrupt trace; assert in debug.
        debug_assert!(old.iter().all(|(n, _)| new.get(n).is_some()));
        out
    }

    fn emit_ctrl_for_state(&mut self, k: u32, ctx: &mut Ctx<'_, ReplayMsg>) {
        if let Some(outs) = self.script.ctrl_out.get(&k) {
            for &(pair, dest) in outs.clone().iter() {
                ctx.send(dest, ReplayMsg::Ctrl { pair });
            }
        }
    }

    /// Whether the event producing state `pos + 1` may execute now.
    fn enabled(&self) -> bool {
        if self.pos >= self.script.events.len() {
            return false;
        }
        let target = (self.pos + 1) as u32;
        if let Some(req) = self.script.ctrl_in.get(&target) {
            if !req.iter().all(|p| self.ctrl_got.contains(p)) {
                return false;
            }
        }
        if let EventKind::Recv(m) = self.script.events[self.pos] {
            if !self.app_buf.contains(&m.0) {
                return false;
            }
        }
        true
    }

    /// Execute exactly one event if enabled; returns whether progress was
    /// made.
    fn step_once(&mut self, ctx: &mut Ctx<'_, ReplayMsg>) -> bool {
        if !self.enabled() {
            return false;
        }
        let k = self.pos;
        let deltas = self.delta(k);
        let updates: Vec<(&str, i64)> = deltas.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        match self.script.events[k] {
            EventKind::Internal => {
                ctx.step(&updates);
            }
            EventKind::Send(m) => {
                // Apply the post-send variable assignment, then emit the
                // replayed message (order keeps the projection equal modulo
                // stutter).
                ctx.step(&updates);
                let dest = self.script.send_dest[&k];
                let tag = format!("re:{}", m.0);
                ctx.send(dest, ReplayMsg::App { msg: m.0, tag });
            }
            EventKind::Recv(m) => {
                let present = self.app_buf.remove(&m.0);
                debug_assert!(present, "enabled() guaranteed the message");
                ctx.step(&updates);
            }
        }
        if let Some(label) = self.script.states[k + 1].label.clone() {
            ctx.label(&label);
        }
        // `x C→ y` messages travel in the event leaving `x`: emit them as
        // the final part of that event, so they causally carry its
        // completion (the receiver may only pass `y` once the source
        // process has fully left `x`).
        self.emit_ctrl_for_state(k as u32, ctx);
        self.pos += 1;
        if self.pos == self.script.events.len() {
            ctx.set_done();
        }
        true
    }

    fn arm_or_continue(&mut self, ctx: &mut Ctx<'_, ReplayMsg>) {
        if self.pos >= self.script.events.len() || self.timer_armed {
            return;
        }
        if self.enabled() {
            self.timer_armed = true;
            ctx.set_timer(self.step_delay);
        } else {
            ctx.count("replay_stalls", 1);
            ctx.trace_instant("replay_stall");
        }
    }
}

impl Process<ReplayMsg> for ReplayProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ReplayMsg>) {
        // Initial variable assignment mirrors ⊥.
        let init: Vec<(String, i64)> = self.script.states[0]
            .vars
            .iter()
            .map(|(n, v)| (n.to_owned(), v))
            .collect();
        for (n, v) in &init {
            ctx.init_var(n, *v);
        }
        if let Some(label) = self.script.states[0].label.clone() {
            ctx.label(&label);
        }
        if self.script.events.is_empty() {
            ctx.set_done();
        } else {
            self.arm_or_continue(ctx);
        }
    }

    fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, ReplayMsg>) {
        self.timer_armed = false;
        self.step_once(ctx);
        self.arm_or_continue(ctx);
    }

    fn on_message(&mut self, _from: ProcessId, msg: ReplayMsg, ctx: &mut Ctx<'_, ReplayMsg>) {
        match msg {
            ReplayMsg::App { msg, .. } => {
                self.app_buf.insert(msg);
            }
            ReplayMsg::Ctrl { pair } => {
                self.ctrl_got.insert(pair);
            }
        }
        self.arm_or_continue(ctx);
    }
}

/// Result of a controlled replay.
pub struct ReplayOutcome {
    /// The simulation result; its deposet is the replayed computation's
    /// trace (original events + control messages).
    pub sim: SimResult,
    /// Number of control tuples enforced.
    pub enforced_tuples: usize,
}

impl ReplayOutcome {
    /// The replayed trace.
    pub fn deposet(&self) -> &Deposet {
        &self.sim.deposet
    }

    /// Whether the replay completed every process's script.
    pub fn completed(&self) -> bool {
        !self.sim.deadlocked() && self.sim.done.iter().all(|&d| d)
    }

    /// Fidelity check: per process, the stutter-removed sequence of
    /// variable assignments in the replayed trace equals the original's.
    pub fn fidelity(&self, original: &Deposet) -> bool {
        fn assignments(dep: &Deposet, p: ProcessId) -> Vec<Variables> {
            let mut out: Vec<Variables> = Vec::new();
            for s in dep.states_of(p) {
                if out.last() != Some(&s.vars) {
                    out.push(s.vars.clone());
                }
            }
            out
        }
        original
            .processes()
            .all(|p| assignments(original, p) == assignments(&self.sim.deposet, p))
    }
}

/// Re-execute `original` under `control` on the simulator.
///
/// # Panics
/// Panics if `control` references states outside `original`.
pub fn replay(original: &Deposet, control: &ControlRelation, cfg: &ReplayConfig) -> ReplayOutcome {
    replay_recorded(original, control, cfg, Box::new(pctl_sim::NullRecorder))
}

/// [`replay`] with a telemetry recorder attached: every replayed message,
/// variable step, and stall is recorded, and the recorder comes back in
/// [`SimResult::recorder`] (snapshot it or flush to its sink).
///
/// # Panics
/// Panics if `control` references states outside `original`.
pub fn replay_recorded(
    original: &Deposet,
    control: &ControlRelation,
    cfg: &ReplayConfig,
    recorder: Box<dyn pctl_sim::Recorder>,
) -> ReplayOutcome {
    let mut scripts: Vec<Script> = original
        .processes()
        .map(|p| Script {
            events: original.events_of(p).to_vec(),
            states: original.states_of(p).to_vec(),
            send_dest: original
                .events_of(p)
                .iter()
                .enumerate()
                .filter_map(|(k, e)| e.sent().map(|m| (k, original.message(m).to.process)))
                .collect(),
            ctrl_out: BTreeMap::new(),
            ctrl_in: BTreeMap::new(),
        })
        .collect();
    // Enforceability check: enforcement orders the event entering `y`
    // after the event leaving `x`. Reject relations where base causality
    // already has `pred(y) → succ(x)` — the event entering `y` would be
    // needed (transitively) by `x`'s own exit, and the replay would
    // deadlock. Also reject sources/targets with no such events.
    for &(x, y) in control.pairs() {
        assert!(
            original.contains(x) && original.contains(y),
            "control pair out of range"
        );
        assert!(
            x != original.top(x.process),
            "tuple source {x} is a final state: no event can carry its control message"
        );
        let entry_pred = y.predecessor().unwrap_or_else(|| {
            panic!("tuple target {y} is an initial state: nothing can block before it")
        });
        let exit = x.successor();
        assert!(
            !original.precedes_eq(entry_pred, exit) || original.precedes(exit, entry_pred),
            "tuple ({x}, {y}) is not enforceable: {y}'s entry event precedes {x}'s exit"
        );
    }
    for (idx, &(x, y)) in control.pairs().iter().enumerate() {
        scripts[x.process.index()]
            .ctrl_out
            .entry(x.index)
            .or_default()
            .push((idx as u32, y.process));
        scripts[y.process.index()]
            .ctrl_in
            .entry(y.index)
            .or_default()
            .push(idx as u32);
    }
    let procs: Vec<Box<dyn Process<ReplayMsg>>> = scripts
        .into_iter()
        .map(|script| {
            Box::new(ReplayProcess {
                script,
                pos: 0,
                app_buf: HashSet::new(),
                ctrl_got: HashSet::new(),
                timer_armed: false,
                step_delay: cfg.step_delay,
            }) as Box<dyn Process<ReplayMsg>>
        })
        .collect();
    let sim_cfg = SimConfig {
        seed: cfg.seed,
        delay: cfg.delay,
        max_events: 10_000_000,
        ..SimConfig::default()
    };
    let sim = Simulation::with_recorder(sim_cfg, procs, recorder).run();
    ReplayOutcome {
        sim,
        enforced_tuples: control.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_core::{control_disjunctive, ControlRelation, OfflineOptions};
    use pctl_deposet::lattice::consistent_global_states;
    use pctl_deposet::{DeposetBuilder, DisjunctivePredicate};

    fn mutex_trace() -> (Deposet, DisjunctivePredicate) {
        let mut b = DeposetBuilder::new(2);
        for p in 0..2 {
            b.init_vars(p, &[("cs", 0)]);
            b.internal(p, &[("cs", 1)]);
            b.internal(p, &[("cs", 0)]);
        }
        (
            b.finish().unwrap(),
            DisjunctivePredicate::at_least_one_not(2, "cs"),
        )
    }

    #[test]
    fn uncontrolled_replay_reproduces_the_computation() {
        let (dep, _) = mutex_trace();
        let out = replay(&dep, &ControlRelation::empty(), &ReplayConfig::default());
        assert!(out.completed());
        assert!(out.fidelity(&dep));
        assert_eq!(out.sim.metrics.counter("msgs_ctrl"), 0);
    }

    #[test]
    fn replay_with_messages_preserves_order() {
        let mut b = DeposetBuilder::new(3);
        b.init_vars(0, &[("x", 0)]);
        let t1 = b.send_with(0, "a", &[("x", 1)]);
        let t2 = b.send(2, "b");
        b.recv(1, t1, &[("got_a", 1)]);
        b.recv(1, t2, &[("got_b", 1)]);
        b.internal(1, &[("done", 1)]);
        let dep = b.finish().unwrap();
        let out = replay(&dep, &ControlRelation::empty(), &ReplayConfig::default());
        assert!(out.completed());
        assert!(out.fidelity(&dep));
        // App messages replayed 1:1.
        assert_eq!(out.sim.metrics.counter("msgs_app"), 2);
    }

    #[test]
    fn controlled_replay_enforces_safety() {
        let (dep, pred) = mutex_trace();
        let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap();
        let out = replay(&dep, &rel, &ReplayConfig::default());
        assert!(
            out.completed(),
            "non-interfering control cannot deadlock the replay"
        );
        assert!(out.fidelity(&dep));
        assert_eq!(out.sim.metrics.counter("msgs_ctrl") as usize, rel.len());
        // The replayed computation itself satisfies B on every consistent
        // cut — the bug cannot recur in the controlled re-execution.
        let re = out.deposet();
        for g in consistent_global_states(re, 1_000_000).unwrap() {
            assert!(
                pred.eval(re, &g),
                "replayed cut {g:?} violates the predicate"
            );
        }
    }

    #[test]
    fn replay_stalls_are_observable() {
        let (dep, pred) = mutex_trace();
        let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap();
        let out = replay(
            &dep,
            &rel,
            &ReplayConfig {
                step_delay: 1,
                ..Default::default()
            },
        );
        assert!(out.completed());
        // With a tuple to wait for and fast local steps, some process
        // observably blocked at least once.
        assert!(out.sim.metrics.counter("replay_stalls") >= 1);
    }

    #[test]
    fn replays_are_deterministic() {
        let (dep, pred) = mutex_trace();
        let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap();
        let a = replay(&dep, &rel, &ReplayConfig::default());
        let b = replay(&dep, &rel, &ReplayConfig::default());
        assert_eq!(
            pctl_deposet::trace::to_json(a.deposet()),
            pctl_deposet::trace::to_json(b.deposet())
        );
    }

    #[test]
    fn random_workload_replay_roundtrip() {
        use pctl_deposet::generator::{random_deposet, RandomConfig};
        for seed in 0..6 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 25,
                    ..RandomConfig::default()
                },
                seed,
            );
            let out = replay(&dep, &ControlRelation::empty(), &ReplayConfig::default());
            assert!(out.completed(), "seed {seed}");
            assert!(out.fidelity(&dep), "seed {seed}");
            assert_eq!(
                out.sim.metrics.counter("msgs_app") as usize,
                dep.messages().len()
            );
        }
    }
}
