//! Trace reduction: which receives must be recorded for faithful replay?
//!
//! The paper's related work (reference \[9], Netzer & Miller, *Optimal
//! tracing and replay for debugging message-passing programs*) observes
//! that a deterministic replay need only record the outcomes of message
//! **races**: a receive is racing when a *different* message could have
//! arrived there instead. All other receives are causally forced and can
//! be regenerated.
//!
//! For messages `m1`, `m2` delivered to the same process with `recv(m1)`
//! locally before `recv(m2)`, the pair races iff the send of `m2` does not
//! causally follow the receive of `m1`:
//!
//! ```text
//! races(m1, m2)  ⟺  dst(m1) = dst(m2)  ∧  recv(m1) ≺ recv(m2)
//!                    ∧  ¬( m1.to →̲ m2.from )
//! ```
//!
//! (`m1.to` is the post-receive state, `m2.from` the pre-send state, so
//! `m1.to →̲ m2.from` says the second send already "knows" the first
//! delivery happened — the order was never in doubt.)
//!
//! This module feeds the replay engine's documentation claim: replays here
//! enforce *all* receive orders (each process consumes messages by original
//! id), which is sufficient; [`racing_receives`] computes how much of that
//! enforcement was actually necessary.

use pctl_deposet::{Deposet, MsgId};
use std::collections::BTreeSet;

/// A race between two deliveries at the same process: `earlier` was
/// received first, but `later`'s send was concurrent with that receive, so
/// the opposite order was possible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Race {
    /// The message that won (was received first).
    pub earlier: MsgId,
    /// The message that could have overtaken it.
    pub later: MsgId,
}

/// All message races in the computation (O(r²) over receives per process).
pub fn racing_receives(dep: &Deposet) -> Vec<Race> {
    let mut per_dst: Vec<Vec<MsgId>> = vec![Vec::new(); dep.process_count()];
    for m in dep.messages() {
        per_dst[m.to.process.index()].push(m.id);
    }
    // Sort by local receive position.
    for v in per_dst.iter_mut() {
        v.sort_by_key(|&m| dep.message(m).to.index);
    }
    let mut races = Vec::new();
    for v in &per_dst {
        for (i, &m1) in v.iter().enumerate() {
            for &m2 in &v[i + 1..] {
                let first_delivery = dep.message(m1).to;
                let second_send = dep.message(m2).from;
                if !dep.precedes_eq(first_delivery, second_send) {
                    races.push(Race {
                        earlier: m1,
                        later: m2,
                    });
                }
            }
        }
    }
    races
}

/// The receives whose order must be recorded for faithful replay: every
/// message involved in at least one race.
pub fn receives_to_trace(dep: &Deposet) -> BTreeSet<MsgId> {
    racing_receives(dep)
        .into_iter()
        .flat_map(|r| [r.earlier, r.later])
        .collect()
}

/// Fraction of receives that are race-free (and thus need no trace entry)
/// — Netzer–Miller's headline saving. Returns 1.0 for message-free traces.
pub fn reduction_ratio(dep: &Deposet) -> f64 {
    let total = dep.messages().len();
    if total == 0 {
        return 1.0;
    }
    let traced = receives_to_trace(dep).len();
    1.0 - traced as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_deposet::generator::{pipelined_workload, random_deposet, CsConfig, RandomConfig};
    use pctl_deposet::DeposetBuilder;

    #[test]
    fn request_response_has_no_races() {
        // Strictly alternating request/response: every send knows the
        // previous delivery.
        let mut b = DeposetBuilder::new(2);
        for _ in 0..3 {
            let req = b.send(0, "req");
            b.recv(1, req, &[]);
            let resp = b.send(1, "resp");
            b.recv(0, resp, &[]);
        }
        let dep = b.finish().unwrap();
        assert_eq!(racing_receives(&dep), vec![]);
        assert_eq!(reduction_ratio(&dep), 1.0);
    }

    #[test]
    fn concurrent_senders_race() {
        // P0 and P1 both send to P2 with no coordination: the two
        // deliveries race.
        let mut b = DeposetBuilder::new(3);
        let a = b.send(0, "a");
        let c = b.send(1, "b");
        b.recv(2, a, &[]);
        b.recv(2, c, &[]);
        let dep = b.finish().unwrap();
        let races = racing_receives(&dep);
        assert_eq!(races.len(), 1);
        assert_eq!(receives_to_trace(&dep).len(), 2);
        assert_eq!(reduction_ratio(&dep), 0.0);
    }

    #[test]
    fn causally_chained_sends_do_not_race() {
        // P0 sends to P2; P2's ack to P1 prompts P1's send to P2: the
        // second send causally follows the first delivery.
        let mut b = DeposetBuilder::new(3);
        let first = b.send(0, "first");
        b.recv(2, first, &[]);
        let ack = b.send(2, "ack");
        b.recv(1, ack, &[]);
        let second = b.send(1, "second");
        b.recv(2, second, &[]);
        let dep = b.finish().unwrap();
        assert_eq!(racing_receives(&dep), vec![]);
    }

    #[test]
    fn ring_pipelines_are_race_free() {
        // The pipelined generator's ring causality forces every delivery
        // order: optimal tracing records nothing.
        for seed in 0..5 {
            let cfg = CsConfig {
                processes: 4,
                sections_per_process: 4,
                max_cs_len: 2,
                max_gap_len: 2,
            };
            let dep = pipelined_workload(&cfg, seed);
            assert!(!dep.messages().is_empty());
            assert_eq!(
                racing_receives(&dep),
                vec![],
                "seed {seed}: ring deliveries are causally forced"
            );
        }
    }

    #[test]
    fn random_traffic_usually_races() {
        let mut any = false;
        for seed in 0..10 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 4,
                    events: 40,
                    send_prob: 0.5,
                    flip_prob: 0.2,
                },
                seed,
            );
            if !racing_receives(&dep).is_empty() {
                any = true;
                let ratio = reduction_ratio(&dep);
                assert!((0.0..1.0).contains(&ratio));
            }
        }
        assert!(any, "uncoordinated traffic should exhibit races");
    }

    #[test]
    fn race_pairs_are_ordered_by_delivery() {
        let mut b = DeposetBuilder::new(2);
        let m0 = b.send(0, "x");
        let m1 = b.send(0, "y");
        b.recv(1, m0, &[]);
        b.recv(1, m1, &[]);
        let dep = b.finish().unwrap();
        // Same sender: the second send follows the first *send*, but not
        // the first *delivery* — so with unordered channels they race.
        let races = racing_receives(&dep);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].earlier, dep.messages()[0].id);
        assert_eq!(races[0].later, dep.messages()[1].id);
    }
}
