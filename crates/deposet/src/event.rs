//! Events and messages.
//!
//! An event takes a process from one local state to the next. Per the
//! paper's Section 3 an event is a local (internal) event, a message send,
//! or a message receive — never both a send and a receive (deposet
//! constraint D3).

use pctl_causality::{MsgId, StateId};
use serde::{Deserialize, Serialize};

/// The kind of the event between state `k` and state `k + 1` of a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A local computation step.
    Internal,
    /// Sending the identified message.
    Send(MsgId),
    /// Receiving the identified message.
    Recv(MsgId),
}

impl EventKind {
    /// The message sent by this event, if any.
    pub fn sent(self) -> Option<MsgId> {
        match self {
            EventKind::Send(m) => Some(m),
            _ => None,
        }
    }

    /// The message received by this event, if any.
    pub fn received(self) -> Option<MsgId> {
        match self {
            EventKind::Recv(m) => Some(m),
            _ => None,
        }
    }
}

/// An application message, with the two states related by the paper's
/// *remotely precedes* relation `;`.
///
/// For a message `m`: `m.from ; m.to` — `from` is the last state before the
/// send event and `to` is the first state after the receive event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Message identity, dense per computation.
    pub id: MsgId,
    /// Free-form tag describing the message (protocol/step name).
    pub tag: String,
    /// State immediately preceding the send event.
    pub from: StateId,
    /// State immediately following the receive event.
    pub to: StateId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_causality::ProcessId;

    #[test]
    fn event_kind_accessors() {
        assert_eq!(EventKind::Internal.sent(), None);
        assert_eq!(EventKind::Internal.received(), None);
        assert_eq!(EventKind::Send(MsgId(3)).sent(), Some(MsgId(3)));
        assert_eq!(EventKind::Send(MsgId(3)).received(), None);
        assert_eq!(EventKind::Recv(MsgId(4)).received(), Some(MsgId(4)));
    }

    #[test]
    fn message_serde_roundtrip() {
        let m = Message {
            id: MsgId(0),
            tag: "req".into(),
            from: StateId::new(ProcessId(0), 1),
            to: StateId::new(ProcessId(1), 2),
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: Message = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
