//! The deposet: a distributed computation as a decomposed partially ordered
//! set (paper Section 3).
//!
//! A deposet `(S₁, …, Sₙ; ⇝; →)` consists of the per-process local state
//! sequences `Sᵢ`, the *remotely precedes* relation `;` induced by messages,
//! and the *causally precedes* (happened-before) relation `→` — the
//! transitive closure of `im ∪ ;`. The constraints D1–D3 hold by
//! construction when a deposet is produced by the
//! [builder](crate::builder::DeposetBuilder), and are re-validated when a
//! deposet is reconstructed from a serialized trace.
//!
//! Causality queries are answered in O(1) with precomputed Fidge–Mattern
//! vector clocks: for states `s`, `t`,
//! `s → t ⇔ s ≠ t ∧ V(s)[proc(s)] ≤ V(t)[proc(s)]`.

use crate::event::{EventKind, Message};
use crate::shard::{fill_sharded, ShardPlan, ShardedClocks};
use crate::state::LocalState;
use pctl_causality::arena::MAX_ROWS;
use pctl_causality::{Causality, ClockRef, MsgId, ProcessId, StateId};
use std::fmt;

/// A distributed computation (see module docs).
///
/// Immutable once constructed; construct via
/// [`DeposetBuilder`](crate::builder::DeposetBuilder) or
/// [`Deposet::from_parts`].
///
/// Clocks live in a [`ShardedClocks`] store: one columnar `ClockArena` slab
/// of exactly `n · S_shard` words per shard of a [`ShardPlan`] (`n`
/// processes, `S` states total), with state `(p, k)` at global row
/// `offsets[p] + k` addressed as `(shard, local row)`. Construction fills
/// the slabs in place — shard-parallel, with cross-shard message edges
/// resolved in frontier rounds — and never allocates per state. The default
/// plan is [`ShardPlan::auto`]; pass an explicit plan through
/// [`Deposet::from_parts_with_plan`].
#[derive(Clone, Debug)]
pub struct Deposet {
    states: Vec<Vec<LocalState>>,
    events: Vec<Vec<EventKind>>,
    messages: Vec<Message>,
    /// Flat row offsets: state `(p, k)` is row `offsets[p] + k`;
    /// `offsets[n]` is the total state count.
    offsets: Vec<usize>,
    clocks: ShardedClocks,
}

/// Errors detected while validating deposet structure (D1–D3 and message
/// endpoint sanity) or computing causality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeposetError {
    /// A process has no states at all (it must at least have `⊥ᵢ = ⊤ᵢ`).
    EmptyProcess(ProcessId),
    /// Event sequence length must be one less than the state sequence length.
    EventCountMismatch {
        /// Offending process.
        process: ProcessId,
        /// Number of states on the process.
        states: usize,
        /// Number of events on the process.
        events: usize,
    },
    /// A message id is referenced by no / multiple send or receive events,
    /// or its recorded endpoints disagree with the event sequences.
    BadMessageEndpoints(MsgId),
    /// A state id refers outside the computation.
    BadStateId(StateId),
    /// The relation `im ∪ ;` has a cycle: the trace is not a valid
    /// computation (its `→` would not be irreflexive).
    CausalityCycle,
    /// The computation has more states than the 32-bit row addressing
    /// supports; `as u32` casts downstream would silently truncate.
    TooManyStates {
        /// Total number of local states.
        states: usize,
    },
}

/// Guard for the flat-row `u32` addressing: everything downstream (edge
/// endpoints, interval bounds, CSR offsets) stores row indices as `u32`, so
/// construction fails cleanly instead of truncating. Kept as a standalone
/// check so the guard is unit-testable without allocating huge chains.
pub(crate) fn ensure_addressable(total_states: usize) -> Result<(), DeposetError> {
    if total_states > MAX_ROWS {
        return Err(DeposetError::TooManyStates {
            states: total_states,
        });
    }
    Ok(())
}

impl fmt::Display for DeposetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeposetError::EmptyProcess(p) => write!(f, "process {p} has no states"),
            DeposetError::EventCountMismatch {
                process,
                states,
                events,
            } => write!(
                f,
                "process {process} has {states} states but {events} events (want states-1)"
            ),
            DeposetError::BadMessageEndpoints(m) => {
                write!(f, "message {m:?} has inconsistent endpoints")
            }
            DeposetError::BadStateId(s) => write!(f, "state {s} out of range"),
            DeposetError::CausalityCycle => {
                write!(f, "im ∪ ; contains a cycle; → is not irreflexive")
            }
            DeposetError::TooManyStates { states } => write!(
                f,
                "{states} states exceed the 32-bit row addressing (max {MAX_ROWS})"
            ),
        }
    }
}

impl std::error::Error for DeposetError {}

impl Deposet {
    /// Build and validate a deposet from raw parts, computing vector clocks.
    ///
    /// `events[p]` is the event sequence of process `p` and must satisfy
    /// `events[p].len() + 1 == states[p].len()`. D3 holds structurally
    /// (an [`EventKind`] is never both send and receive); D1/D2 hold because
    /// receives/sends are events, which by construction lie strictly between
    /// `⊥` and `⊤`.
    pub fn from_parts(
        states: Vec<Vec<LocalState>>,
        events: Vec<Vec<EventKind>>,
        messages: Vec<Message>,
    ) -> Result<Self, DeposetError> {
        Self::from_parts_with_plan(states, events, messages, None)
    }

    /// [`from_parts`](Self::from_parts) with an explicit [`ShardPlan`]
    /// (`None` selects [`ShardPlan::auto`]): the plan decides how the clock
    /// store is partitioned into per-shard arena slabs and how much of
    /// construction runs shard-parallel. Any plan yields bit-identical
    /// clocks; the partition only affects layout and parallelism.
    ///
    /// # Panics
    /// Panics if an explicit plan covers a different process count.
    pub fn from_parts_with_plan(
        states: Vec<Vec<LocalState>>,
        events: Vec<Vec<EventKind>>,
        messages: Vec<Message>,
        plan: Option<ShardPlan>,
    ) -> Result<Self, DeposetError> {
        let _prof = pctl_prof::span("deposet_from_parts");
        let n = states.len();
        if events.len() != n {
            return Err(DeposetError::EventCountMismatch {
                process: ProcessId(events.len().min(n) as u32),
                states: n,
                events: events.len(),
            });
        }
        for (p, (st, ev)) in states.iter().zip(&events).enumerate() {
            let p = ProcessId(p as u32);
            if st.is_empty() {
                return Err(DeposetError::EmptyProcess(p));
            }
            if ev.len() + 1 != st.len() {
                return Err(DeposetError::EventCountMismatch {
                    process: p,
                    states: st.len(),
                    events: ev.len(),
                });
            }
        }
        // Message endpoint validation: message m must be sent by exactly the
        // event after `from` and received by exactly the event before `to`.
        for (mi, m) in messages.iter().enumerate() {
            if m.id.index() != mi {
                return Err(DeposetError::BadMessageEndpoints(m.id));
            }
            let fp = m.from.process.index();
            let tp = m.to.process.index();
            if fp >= n || m.from.idx() >= states[fp].len() {
                return Err(DeposetError::BadStateId(m.from));
            }
            if tp >= n || m.to.idx() >= states[tp].len() {
                return Err(DeposetError::BadStateId(m.to));
            }
            if events[fp].get(m.from.idx()) != Some(&EventKind::Send(m.id)) {
                return Err(DeposetError::BadMessageEndpoints(m.id));
            }
            let ri =
                m.to.idx()
                    .checked_sub(1)
                    .ok_or(DeposetError::BadMessageEndpoints(m.id))?;
            if events[tp].get(ri) != Some(&EventKind::Recv(m.id)) {
                return Err(DeposetError::BadMessageEndpoints(m.id));
            }
        }
        // Each send/recv event must reference a declared message (no
        // dangling ids), and each message exactly once in each role —
        // guaranteed by the endpoint check plus a count check.
        let mut sends = 0usize;
        let mut recvs = 0usize;
        for ev in &events {
            for e in ev {
                match e {
                    EventKind::Send(m) | EventKind::Recv(m) => {
                        if m.index() >= messages.len() {
                            return Err(DeposetError::BadMessageEndpoints(*m));
                        }
                        match e {
                            EventKind::Send(_) => sends += 1,
                            _ => recvs += 1,
                        }
                    }
                    EventKind::Internal => {}
                }
            }
        }
        if sends != messages.len() || recvs != messages.len() {
            return Err(DeposetError::BadMessageEndpoints(MsgId(
                messages.len() as u32
            )));
        }

        // Flat row offsets, fixed for the lifetime of the deposet.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        for s in &states {
            offsets.push(acc);
            acc += s.len();
        }
        offsets.push(acc);
        let total = acc;
        // Fail construction (instead of truncating `as u32` row casts
        // downstream) when the computation exceeds 32-bit addressing.
        ensure_addressable(total)?;

        // Topological sorting and the clock DP run under the shard plan:
        // per-shard sorts + intra-shard merges in parallel, cross-shard
        // message edges resolved in frontier rounds (a cycle anywhere ⇒
        // invalid). The local chains stay implicit in `offsets` and the
        // message edges are flat `(dst, src)` pairs, so no per-state
        // adjacency list is ever built — construction is the hot path of
        // every multi-seed sweep.
        let plan = plan.unwrap_or_else(|| ShardPlan::auto(n, total));
        assert_eq!(
            plan.process_count(),
            n,
            "shard plan covers a different process count"
        );
        let row = |s: StateId| offsets[s.process.index()] + s.idx();
        let edges: Vec<(u32, u32)> = messages
            .iter()
            .map(|m| (row(m.to) as u32, row(m.from) as u32))
            .collect();
        let clocks = fill_sharded(&plan, &offsets, &edges).ok_or(DeposetError::CausalityCycle)?;
        // The O(n·S)-words storage bound the columnar layout exists for —
        // held per shard (asserted inside the fill) and in total.
        assert_eq!(clocks.total_allocated_words(), n * total);
        pctl_prof::set_gauge(
            "arena_allocated_words",
            clocks.total_allocated_words() as u64,
        );
        pctl_prof::set_gauge("shard_count", clocks.shard_count() as u64);
        pctl_prof::set_gauge("fill_rounds", clocks.rounds() as u64);
        for s in 0..clocks.shard_count() {
            pctl_prof::set_gauge(
                &format!("arena_allocated_words_shard{s}"),
                clocks.arena(s).allocated_words() as u64,
            );
        }

        Ok(Deposet {
            states,
            events,
            messages,
            offsets,
            clocks,
        })
    }

    /// Flattened node offsets per process (for graph algorithms): state
    /// `(p, k)` is node `offsets[p] + k`; `offsets[n]` is the total count.
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Flat row index of state `id` in [`offsets`](Self::offsets) order.
    #[inline]
    pub fn row_of(&self, id: StateId) -> usize {
        self.offsets[id.process.index()] + id.idx()
    }

    /// The sharded columnar clock store for the whole computation.
    #[inline]
    pub fn sharded_clocks(&self) -> &ShardedClocks {
        &self.clocks
    }

    /// The shard plan the clock store was built with.
    #[inline]
    pub fn shard_plan(&self) -> &ShardPlan {
        self.clocks.plan()
    }

    /// Number of processes `n`.
    #[inline]
    pub fn process_count(&self) -> usize {
        self.states.len()
    }

    /// Process ids `P₀ … Pₙ₋₁`.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> {
        (0..self.states.len() as u32).map(ProcessId)
    }

    /// Number of local states of process `p`.
    #[inline]
    pub fn len_of(&self, p: ProcessId) -> usize {
        self.states[p.index()].len()
    }

    /// Total number of local states.
    pub fn total_states(&self) -> usize {
        self.states.iter().map(Vec::len).sum()
    }

    /// The local state payload for `id`.
    #[inline]
    pub fn state(&self, id: StateId) -> &LocalState {
        &self.states[id.process.index()][id.idx()]
    }

    /// All states of process `p`, in `≺` order.
    pub fn states_of(&self, p: ProcessId) -> &[LocalState] {
        &self.states[p.index()]
    }

    /// The event between states `k` and `k + 1` of process `p`.
    pub fn event(&self, p: ProcessId, k: usize) -> EventKind {
        self.events[p.index()][k]
    }

    /// Event sequence of process `p`.
    pub fn events_of(&self, p: ProcessId) -> &[EventKind] {
        &self.events[p.index()]
    }

    /// All messages.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Look up a message by id.
    pub fn message(&self, m: MsgId) -> &Message {
        &self.messages[m.index()]
    }

    /// Initial state `⊥ᵢ` of process `p`.
    pub fn bottom(&self, p: ProcessId) -> StateId {
        StateId::new(p, 0)
    }

    /// Final state `⊤ᵢ` of process `p`.
    pub fn top(&self, p: ProcessId) -> StateId {
        StateId::new(p, (self.states[p.index()].len() - 1) as u32)
    }

    /// Whether `id` names a state of this computation.
    pub fn contains(&self, id: StateId) -> bool {
        id.process.index() < self.states.len() && id.idx() < self.states[id.process.index()].len()
    }

    /// The vector clock of state `id` (a borrowed row of its shard's
    /// arena).
    #[inline]
    pub fn clock(&self, id: StateId) -> ClockRef<'_> {
        self.clocks.row(id.process, self.row_of(id))
    }

    /// `s ≺ t`: same process and s strictly earlier (transitive closure of
    /// `im`).
    pub fn locally_precedes(&self, s: StateId, t: StateId) -> bool {
        s.process == t.process && s.index < t.index
    }

    /// `s ; t`: the message sent in the event after `s` is received in the
    /// event before `t` (the *remotely precedes* relation).
    pub fn remotely_precedes(&self, s: StateId, t: StateId) -> bool {
        self.messages.iter().any(|m| m.from == s && m.to == t)
    }

    /// `s → t`: causally precedes (happened-before). O(1): two word reads
    /// from the sharded clock store (`V(s)[proc(s)] ≤ V(t)[proc(s)]`, each
    /// addressed as `(shard, local row)`).
    #[inline]
    pub fn precedes(&self, s: StateId, t: StateId) -> bool {
        s != t
            && self.clocks.word(s.process, self.row_of(s), s.process)
                <= self.clocks.word(t.process, self.row_of(t), s.process)
    }

    /// `s →̲ t`: causally precedes or equal.
    #[inline]
    pub fn precedes_eq(&self, s: StateId, t: StateId) -> bool {
        s == t || self.precedes(s, t)
    }

    /// `s ∥ t`: concurrent (neither causally precedes the other, `s ≠ t`).
    #[inline]
    pub fn concurrent(&self, s: StateId, t: StateId) -> bool {
        s != t && !self.precedes(s, t) && !self.precedes(t, s)
    }

    /// Full four-way comparison of two states.
    pub fn causality(&self, s: StateId, t: StateId) -> Causality {
        if s == t {
            Causality::Equal
        } else if self.precedes(s, t) {
            Causality::Before
        } else if self.precedes(t, s) {
            Causality::After
        } else {
            Causality::Concurrent
        }
    }

    /// Iterate over every state id in process-major order.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> + '_ {
        self.states.iter().enumerate().flat_map(|(p, sts)| {
            (0..sts.len() as u32).map(move |k| StateId::new(ProcessId(p as u32), k))
        })
    }

    /// Destructure into raw parts (states, events, messages) — used by the
    /// trace serializer.
    pub fn into_parts(self) -> (Vec<Vec<LocalState>>, Vec<Vec<EventKind>>, Vec<Message>) {
        (self.states, self.events, self.messages)
    }

    /// Borrowing accessors for serialization.
    pub(crate) fn parts(&self) -> (&[Vec<LocalState>], &[Vec<EventKind>], &[Message]) {
        (&self.states, &self.events, &self.messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DeposetBuilder;

    /// Two processes, one message from P0 (after state 0) to P1 (producing
    /// state 1 on P1).
    fn two_proc_one_msg() -> Deposet {
        let mut b = DeposetBuilder::new(2);
        let tok = b.send(0, "m");
        b.recv(1, tok, &[]);
        b.finish().unwrap()
    }

    #[test]
    fn bottoms_and_tops() {
        let d = two_proc_one_msg();
        assert_eq!(d.bottom(ProcessId(0)), StateId::new(0u32 as usize, 0));
        assert_eq!(d.top(ProcessId(0)), StateId::new(0usize, 1));
        assert_eq!(d.len_of(ProcessId(1)), 2);
        assert_eq!(d.total_states(), 4);
    }

    #[test]
    fn message_edge_induces_causality() {
        let d = two_proc_one_msg();
        let s00 = StateId::new(0usize, 0);
        let s01 = StateId::new(0usize, 1);
        let s10 = StateId::new(1usize, 0);
        let s11 = StateId::new(1usize, 1);
        assert!(d.remotely_precedes(s00, s11));
        assert!(d.precedes(s00, s11));
        assert!(d.precedes(s00, s01), "im edge");
        assert!(d.concurrent(s01, s11), "send-successor ∥ receive-successor");
        assert!(d.concurrent(s00, s10));
        assert!(!d.precedes(s11, s00));
        assert_eq!(d.causality(s00, s11), Causality::Before);
        assert_eq!(d.causality(s11, s00), Causality::After);
        assert_eq!(d.causality(s00, s00), Causality::Equal);
    }

    #[test]
    fn precedes_eq_includes_identity() {
        let d = two_proc_one_msg();
        let s = StateId::new(0usize, 0);
        assert!(d.precedes_eq(s, s));
        assert!(!d.precedes(s, s));
    }

    #[test]
    fn clocks_match_fidge_mattern() {
        let d = two_proc_one_msg();
        assert_eq!(d.clock(StateId::new(0usize, 0)).entries(), &[1, 0]);
        assert_eq!(d.clock(StateId::new(0usize, 1)).entries(), &[2, 0]);
        assert_eq!(d.clock(StateId::new(1usize, 0)).entries(), &[0, 1]);
        assert_eq!(d.clock(StateId::new(1usize, 1)).entries(), &[1, 2]);
    }

    #[test]
    fn from_parts_rejects_empty_process() {
        let err = Deposet::from_parts(vec![vec![]], vec![vec![]], vec![]).unwrap_err();
        assert_eq!(err, DeposetError::EmptyProcess(ProcessId(0)));
    }

    #[test]
    fn from_parts_rejects_event_count_mismatch() {
        let err = Deposet::from_parts(
            vec![vec![LocalState::default(), LocalState::default()]],
            vec![vec![]],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, DeposetError::EventCountMismatch { .. }));
    }

    #[test]
    fn from_parts_rejects_bad_message_endpoints() {
        // Declares a message but the send event is Internal.
        let m = Message {
            id: MsgId(0),
            tag: String::new(),
            from: StateId::new(0usize, 0),
            to: StateId::new(1usize, 1),
        };
        let err = Deposet::from_parts(
            vec![
                vec![LocalState::default(), LocalState::default()],
                vec![LocalState::default(), LocalState::default()],
            ],
            vec![vec![EventKind::Internal], vec![EventKind::Recv(MsgId(0))]],
            vec![m],
        )
        .unwrap_err();
        assert_eq!(err, DeposetError::BadMessageEndpoints(MsgId(0)));
    }

    #[test]
    fn from_parts_rejects_causal_cycle() {
        // P0: s0 -send m0-> s1 -recv m1-> s2
        // P1: s0 -send m1-> s1 -recv m0-> s2
        // m0: from (0,0) to (1,2); m1: from (1,0) to (0,2). This is FINE
        // (crossing messages). Build a genuine cycle instead:
        // m0: from (0,1) to (1,1); m1: from (1,1) to (0,1) is impossible via
        // endpoints (recv before send on same state pair) — so craft:
        // P0: s0 -recv m1-> s1 -send m0-> s2
        // P1: s0 -recv m0-> s1 -send m1-> s2
        // m0 sent after (0,1) received producing (1,1): (0,1) ; (1,1)
        // m1 sent after (1,1) received producing (0,1): (1,1) ; (0,1) — cycle.
        let st = || {
            vec![
                LocalState::default(),
                LocalState::default(),
                LocalState::default(),
            ]
        };
        let m0 = Message {
            id: MsgId(0),
            tag: String::new(),
            from: StateId::new(0usize, 1),
            to: StateId::new(1usize, 1),
        };
        let m1 = Message {
            id: MsgId(1),
            tag: String::new(),
            from: StateId::new(1usize, 1),
            to: StateId::new(0usize, 1),
        };
        let err = Deposet::from_parts(
            vec![st(), st()],
            vec![
                vec![EventKind::Recv(MsgId(1)), EventKind::Send(MsgId(0))],
                vec![EventKind::Recv(MsgId(0)), EventKind::Send(MsgId(1))],
            ],
            vec![m0, m1],
        )
        .unwrap_err();
        assert_eq!(err, DeposetError::CausalityCycle);
    }

    #[test]
    fn addressability_guard_fires_without_allocating() {
        // The guard is a pure size check — exercised directly so the test
        // does not materialise a 4-billion-state chain.
        assert!(crate::model::ensure_addressable(u32::MAX as usize).is_ok());
        let err = crate::model::ensure_addressable(u32::MAX as usize + 1).unwrap_err();
        assert_eq!(
            err,
            DeposetError::TooManyStates {
                states: u32::MAX as usize + 1
            }
        );
        assert!(err.to_string().contains("32-bit row addressing"), "{err}");
    }

    #[test]
    fn explicit_shard_plan_yields_identical_clocks() {
        use crate::shard::ShardPlan;
        let flat = two_proc_one_msg();
        let (st, ev, ms) = two_proc_one_msg().into_parts();
        let sharded =
            Deposet::from_parts_with_plan(st, ev, ms, Some(ShardPlan::with_shards(2, 2))).unwrap();
        assert_eq!(sharded.sharded_clocks().shard_count(), 2);
        assert_eq!(sharded.shard_plan().shard_count(), 2);
        for s in flat.state_ids() {
            assert_eq!(flat.clock(s), sharded.clock(s), "clock of {s}");
            for t in flat.state_ids() {
                assert_eq!(flat.precedes(s, t), sharded.precedes(s, t));
            }
        }
    }

    #[test]
    fn crossing_messages_are_valid() {
        let mut b = DeposetBuilder::new(2);
        let m0 = b.send(0, "a");
        let m1 = b.send(1, "b");
        b.recv(0, m1, &[]);
        b.recv(1, m0, &[]);
        let d = b.finish().unwrap();
        // send states concurrent, receive states concurrent... actually
        // (0,2) has received m1 sent after (1,0): (1,0) → (0,2).
        assert!(d.precedes(StateId::new(1usize, 0), StateId::new(0usize, 2)));
        assert!(d.precedes(StateId::new(0usize, 0), StateId::new(1usize, 2)));
        assert!(d.concurrent(StateId::new(0usize, 2), StateId::new(1usize, 2)));
    }
}
