//! Graphviz (DOT) rendering of deposets as space-time diagrams.
//!
//! The output mirrors the paper's figures: one horizontal rank per process,
//! `im` edges along the rank, message arrows across ranks, and (optionally)
//! control edges `C→` drawn dashed. Handy when debugging the debugger.

use crate::model::Deposet;
use pctl_causality::StateId;
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Extra (dashed) edges to draw, e.g. a control relation.
    pub extra_edges: Vec<(StateId, StateId)>,
    /// Mark these states (peripheries=2), e.g. violating global states.
    pub highlights: Vec<StateId>,
    /// Include the variable assignment in each node label.
    pub show_vars: bool,
}

fn node_name(s: StateId) -> String {
    format!("p{}s{}", s.process.0, s.index)
}

/// Render `dep` to DOT.
pub fn to_dot(dep: &Deposet, opts: &DotOptions) -> String {
    let mut out = String::new();
    out.push_str("digraph deposet {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    for p in dep.processes() {
        let _ = writeln!(
            out,
            "  subgraph cluster_p{} {{\n    label=\"P{}\";",
            p.0, p.0
        );
        for (k, st) in dep.states_of(p).iter().enumerate() {
            let id = StateId::new(p, k as u32);
            let mut label = st.label.clone().unwrap_or_else(|| format!("{}:{}", p.0, k));
            if opts.show_vars {
                let vars: Vec<String> = st.vars.iter().map(|(n, v)| format!("{n}={v}")).collect();
                if !vars.is_empty() {
                    let _ = write!(label, "\\n{}", vars.join(","));
                }
            }
            let peripheries = if opts.highlights.contains(&id) { 2 } else { 1 };
            let _ = writeln!(
                out,
                "    {} [label=\"{}\", peripheries={}];",
                node_name(id),
                label,
                peripheries
            );
        }
        // im edges
        for k in 0..dep.len_of(p).saturating_sub(1) {
            let _ = writeln!(
                out,
                "    {} -> {};",
                node_name(StateId::new(p, k as u32)),
                node_name(StateId::new(p, k as u32 + 1))
            );
        }
        out.push_str("  }\n");
    }
    for m in dep.messages() {
        let _ = writeln!(
            out,
            "  {} -> {} [color=blue, label=\"{}\"];",
            node_name(m.from),
            node_name(m.to),
            m.tag
        );
    }
    for (a, b) in &opts.extra_edges {
        let _ = writeln!(
            out,
            "  {} -> {} [style=dashed, color=red, label=\"C\"];",
            node_name(*a),
            node_name(*b)
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DeposetBuilder;
    use pctl_causality::ProcessId;

    #[test]
    fn dot_contains_nodes_edges_and_messages() {
        let mut b = DeposetBuilder::new(2);
        b.label(0, "a");
        let t = b.send(0, "req");
        b.recv(1, t, &[]);
        let d = b.finish().unwrap();
        let dot = to_dot(&d, &DotOptions::default());
        assert!(dot.contains("digraph deposet"));
        assert!(dot.contains("p0s0 -> p0s1;"), "im edge present");
        assert!(dot.contains("p0s0 -> p1s1 [color=blue, label=\"req\"];"));
        assert!(dot.contains("label=\"a\""), "state label used");
    }

    #[test]
    fn dot_renders_control_edges_and_highlights() {
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[("x", 3)]);
        b.internal(1, &[]);
        let d = b.finish().unwrap();
        let opts = DotOptions {
            extra_edges: vec![(StateId::new(ProcessId(1), 0), StateId::new(ProcessId(0), 1))],
            highlights: vec![StateId::new(ProcessId(0), 1)],
            show_vars: true,
        };
        let dot = to_dot(&d, &opts);
        assert!(dot.contains("p1s0 -> p0s1 [style=dashed"));
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("x=3"));
    }
}
