//! Computation slicing for regular predicates (Mittal–Garg).
//!
//! The slice of a computation w.r.t. a regular predicate `R` is the
//! smallest sub-computation containing exactly the consistent cuts that
//! satisfy `R`. Because `R` is regular, those cuts are closed under meet
//! and join, so they form a sublattice of the full cut lattice — and a
//! sublattice is described completely by its **join-irreducible** elements:
//! the cuts `J(s) = ` *least satisfying cut whose frontier on `proc(s)` is
//! at or past `s`*, one per local state `s`.
//!
//! The construction here is a per-process monotone sweep. `J((i, k))` is
//! computed from `J((i, k-1))` by raising component `i` to `k` and closing
//! upward under three *forced-advance* rules, each of which preserves every
//! satisfying cut above the start point:
//!
//! * **conjunct** — the violation's conjunction on `i` is false at the
//!   frontier state `(i, cut[i])` ⇒ advance `cut[i]`;
//! * **consistency** — `clock_entry((j, cut[j]), i) > cut[i]` ⇒ raise
//!   `cut[i]` to the clock entry (the repo's own consistency condition,
//!   see [`CausalStore::clock_entry`]);
//! * **channels** — a message sent inside the cut but not received inside
//!   it ⇒ raise the receiver to the delivery point (or fail outright if
//!   the message is still in flight).
//!
//! Running off the top of any chain means no satisfying cut exists above
//! the start. The sweep is monotone (`J((i,k)) ≥ J((i,k-1))`), so the whole
//! J-matrix costs one pass of amortised closures.
//!
//! The resulting [`SlicedDeposet`] is itself a columnar store: the J-matrix
//! lives in a [`ClockArena`] (one row per local state), surviving states
//! (those that can be the frontier of a satisfying cut) collapse into
//! equivalence classes by J-value, and the class DAG is kept as CSR
//! skeleton edges. Crucially the slice is *self-contained*: every
//! satisfying cut is a join of J-rows (`G = ⋁ᵢ J((i, G[i]))`), so
//! membership tests, counting, and enumeration need no further access to
//! the underlying store.

use crate::causal::CausalStore;
use crate::global::GlobalState;
use crate::intervals::{FalseIntervals, Interval};
use crate::lattice::LatticeBudgetExceeded;
use crate::model::Deposet;
use crate::predicate::{ClassError, PredicateClass, RegularPredicate};
use pctl_causality::arena::csr_from_edges;
use pctl_causality::{ClockArena, ProcessId, StateId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Transient closure engine used only while building a slice.
struct Slicer<'a, C: CausalStore + ?Sized> {
    store: &'a C,
    n: usize,
    lens: Vec<u32>,
    /// `conj[i][k]`: the violation's conjunction on process `i` holds in
    /// state `(i, k)` (true everywhere for unconstrained processes).
    conj: &'a [Vec<bool>],
    /// Delivered messages `(from, to)` — empty unless the predicate
    /// constrains channels.
    delivered: &'a [(StateId, StateId)],
    /// Send-side states of messages still in flight — empty unless the
    /// predicate constrains channels.
    in_flight: &'a [StateId],
}

impl<C: CausalStore + ?Sized> Slicer<'_, C> {
    /// Close `cut` upward to the least satisfying cut ≥ the input, or
    /// return `false` when none exists. Every raise is forced: any
    /// satisfying cut ≥ the input is also ≥ the raised cut.
    #[allow(clippy::needless_range_loop)] // cut[i] is mutated while cut[j] is read across processes
    fn closure_up(&self, cut: &mut [u32]) -> bool {
        loop {
            let mut changed = false;
            for i in 0..self.n {
                let mut k = cut[i];
                while k < self.lens[i] && !self.conj[i][k as usize] {
                    k += 1;
                }
                if k >= self.lens[i] {
                    return false;
                }
                if k != cut[i] {
                    cut[i] = k;
                    changed = true;
                }
            }
            for j in 0..self.n {
                let sj = StateId::new(ProcessId(j as u32), cut[j]);
                for i in 0..self.n {
                    if i == j {
                        continue;
                    }
                    let e = self.store.clock_entry(sj, ProcessId(i as u32));
                    if e > cut[i] {
                        cut[i] = e;
                        changed = true;
                    }
                }
            }
            for &(from, to) in self.delivered {
                let fp = from.process.index();
                let tp = to.process.index();
                if cut[fp] > from.index && cut[tp] < to.index {
                    cut[tp] = to.index;
                    changed = true;
                }
            }
            for &from in self.in_flight {
                if cut[from.process.index()] > from.index {
                    return false;
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// Close `cut` downward to the greatest satisfying cut ≤ the input, or
    /// return `false` when none exists. Dual of [`Slicer::closure_up`];
    /// a consistency violation forces the *knowing* frontier down by one.
    #[allow(clippy::needless_range_loop)] // cut[i] is mutated while cut[j] is read across processes
    fn closure_down(&self, cut: &mut [u32]) -> bool {
        loop {
            let mut changed = false;
            for i in 0..self.n {
                while !self.conj[i][cut[i] as usize] {
                    if cut[i] == 0 {
                        return false;
                    }
                    cut[i] -= 1;
                    changed = true;
                }
            }
            'outer: for j in 0..self.n {
                loop {
                    let sj = StateId::new(ProcessId(j as u32), cut[j]);
                    let mut violated = false;
                    for i in 0..self.n {
                        if i != j && self.store.clock_entry(sj, ProcessId(i as u32)) > cut[i] {
                            violated = true;
                            break;
                        }
                    }
                    if !violated {
                        continue 'outer;
                    }
                    if cut[j] == 0 {
                        return false;
                    }
                    cut[j] -= 1;
                    changed = true;
                }
            }
            for &(from, to) in self.delivered {
                let fp = from.process.index();
                let tp = to.process.index();
                if cut[fp] > from.index && cut[tp] < to.index {
                    cut[fp] = from.index;
                    changed = true;
                }
            }
            for &from in self.in_flight {
                let fp = from.process.index();
                if cut[fp] > from.index {
                    cut[fp] = from.index;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
        }
    }
}

/// The slice of a computation w.r.t. a regular violation predicate: a
/// columnar sub-computation containing exactly the satisfying consistent
/// cuts. See the [module docs](self) for the construction.
#[derive(Clone, Debug)]
pub struct SlicedDeposet {
    n: usize,
    lens: Vec<u32>,
    /// Row offset of each process's chain in the J-matrix (n+1 entries).
    offsets: Vec<usize>,
    /// `J((i, k))` as row `offsets[i] + k`, valid where `j_exists`.
    j: ClockArena,
    j_exists: Vec<bool>,
    /// Equivalence class (by J-value) of each *surviving* row, `u32::MAX`
    /// elsewhere. Classes are numbered in first-seen row order.
    class_of: Vec<u32>,
    class_count: usize,
    /// CSR skeleton over classes: `skel_src[skel_off[c]..skel_off[c+1]]`
    /// lists the classes with an edge *into* `c`.
    skel_off: Vec<u32>,
    skel_src: Vec<u32>,
    min_cut: Option<GlobalState>,
    max_cut: Option<GlobalState>,
    /// Per-process maximal runs of frontier-possible indices, in the same
    /// [`FalseIntervals`] form the control algorithms consume.
    frontier: FalseIntervals,
}

impl SlicedDeposet {
    /// Slice a batch computation w.r.t. `violation`. Validates process
    /// references, evaluates the violation's local conjunctions over every
    /// state, and feeds [`SlicedDeposet::build_from_parts`].
    pub fn build(dep: &Deposet, violation: &RegularPredicate) -> Result<Self, ClassError> {
        PredicateClass::regular(dep.process_count() as u32, violation.clone())
            .validate(dep.process_count())?;
        let n = dep.process_count();
        let by_proc = violation.conjuncts_by_process(n);
        let conj: Vec<Vec<bool>> = (0..n)
            .map(|i| {
                let p = ProcessId(i as u32);
                (0..dep.len_of(p))
                    .map(|k| {
                        let s = dep.state(StateId::new(p, k as u32));
                        by_proc[i].iter().all(|c| c.eval(s))
                    })
                    .collect()
            })
            .collect();
        let delivered: Vec<(StateId, StateId)> = if violation.uses_channels() {
            dep.messages().iter().map(|m| (m.from, m.to)).collect()
        } else {
            Vec::new()
        };
        Ok(Self::build_from_parts(dep, &conj, &delivered, &[]))
    }

    /// Build a slice from pre-computed parts, generically over any
    /// [`CausalStore`] (the streaming engine passes a
    /// [`crate::session::SessionStore`] whose incremental truth columns
    /// already hold `¬conj`, see
    /// [`PredicateClass::session_locals`]).
    ///
    /// `conj[i][k]` must be the violation's conjunction on process `i`
    /// evaluated in state `(i, k)`; `delivered` and `in_flight` must be
    /// empty when the violation does not constrain channels.
    ///
    /// # Panics
    /// Panics if `conj` does not match the store's shape.
    #[allow(clippy::needless_range_loop)] // cut[i] is mutated while cut[j] is read across processes
    pub fn build_from_parts<C: CausalStore + ?Sized>(
        store: &C,
        conj: &[Vec<bool>],
        delivered: &[(StateId, StateId)],
        in_flight: &[StateId],
    ) -> Self {
        let _prof = pctl_prof::span("slice_build");
        let n = store.process_count();
        assert_eq!(conj.len(), n, "conjunct truth columns per process");
        let lens: Vec<u32> = (0..n)
            .map(|i| store.len_of(ProcessId(i as u32)) as u32)
            .collect();
        for i in 0..n {
            assert_eq!(conj[i].len(), lens[i] as usize, "truth column length");
        }
        let slicer = Slicer {
            store,
            n,
            lens: lens.clone(),
            conj,
            delivered,
            in_flight,
        };

        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + lens[i] as usize;
        }
        let total = offsets[n];

        // min/max satisfying cuts: closures from ⊥ and ⊤.
        let mut lo = vec![0u32; n];
        let min_cut = slicer
            .closure_up(&mut lo)
            .then(|| GlobalState::from_indices(lo));
        let mut hi: Vec<u32> = lens.iter().map(|&l| l - 1).collect();
        let max_cut = (min_cut.is_some() && slicer.closure_down(&mut hi))
            .then(|| GlobalState::from_indices(hi));

        // J-matrix by per-process monotone sweep.
        let mut j = ClockArena::zeroed(n, total);
        let mut j_exists = vec![false; total];
        for i in 0..n {
            let mut prev: Option<Vec<u32>> = min_cut.as_ref().map(|g| g.indices().to_vec());
            for k in 0..lens[i] {
                prev = prev.take().and_then(|mut c| {
                    if c[i] < k {
                        c[i] = k;
                        if !slicer.closure_up(&mut c) {
                            return None;
                        }
                    }
                    Some(c)
                });
                if let Some(c) = &prev {
                    let row = offsets[i] + k as usize;
                    j.merge_from(row, c);
                    j_exists[row] = true;
                }
            }
        }

        // Surviving states → classes by J-value (first-seen order), then
        // skeleton edges: chain edges between consecutive surviving runs
        // and, for each surviving state v, a cut edge from the frontier
        // class of every other process in J(v).
        let mut class_of = vec![u32::MAX; total];
        let mut classes: HashMap<&[u32], u32> = HashMap::new();
        let survives = |row: usize, i: usize, k: u32, j: &ClockArena, ex: &[bool]| {
            ex[row] && j.word(row, ProcessId(i as u32)) == k
        };
        for i in 0..n {
            for k in 0..lens[i] {
                let row = offsets[i] + k as usize;
                if survives(row, i, k, &j, &j_exists) {
                    let key = j.row(row).entries();
                    let next = classes.len() as u32;
                    class_of[row] = *classes.entry(key).or_insert(next);
                }
            }
        }
        let class_count = classes.len();
        drop(classes);

        let mut edges: Vec<(u32, u32)> = Vec::new();
        for i in 0..n {
            let mut prev_class: Option<u32> = None;
            for k in 0..lens[i] {
                let row = offsets[i] + k as usize;
                let c = class_of[row];
                if c == u32::MAX {
                    continue;
                }
                if let Some(pc) = prev_class {
                    if pc != c {
                        edges.push((c, pc));
                    }
                }
                prev_class = Some(c);
                for q in 0..n {
                    if q == i {
                        continue;
                    }
                    let fq = j.word(row, ProcessId(q as u32));
                    let qrow = offsets[q] + fq as usize;
                    let qc = class_of[qrow];
                    if qc != u32::MAX && qc != c {
                        edges.push((c, qc));
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let (skel_off, skel_src) = csr_from_edges(class_count, &edges);

        // Frontier-possible runs as FalseIntervals (maximal runs are
        // separated by ≥ 1 impossible index, so `from_raw`'s non-adjacency
        // invariant holds by construction).
        let mut per_proc: Vec<Vec<Interval>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut ivs = Vec::new();
            let mut run: Option<(u32, u32)> = None;
            for k in 0..lens[i] {
                let row = offsets[i] + k as usize;
                if survives(row, i, k, &j, &j_exists) {
                    run = Some(match run {
                        Some((lo, _)) => (lo, k),
                        None => (k, k),
                    });
                } else if let Some((lo, hi)) = run.take() {
                    ivs.push(Interval {
                        process: ProcessId(i as u32),
                        lo,
                        hi,
                    });
                }
            }
            if let Some((lo, hi)) = run {
                ivs.push(Interval {
                    process: ProcessId(i as u32),
                    lo,
                    hi,
                });
            }
            per_proc.push(ivs);
        }
        let frontier = FalseIntervals::from_raw(per_proc);

        SlicedDeposet {
            n,
            lens,
            offsets,
            j,
            j_exists,
            class_of,
            class_count,
            skel_off,
            skel_src,
            min_cut,
            max_cut,
            frontier,
        }
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.n
    }

    /// Chain length of process `p` in the underlying computation.
    pub fn len_of(&self, p: ProcessId) -> usize {
        self.lens[p.index()] as usize
    }

    /// Total states in the underlying computation.
    pub fn total_states(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// True when no consistent cut satisfies the predicate.
    pub fn is_empty(&self) -> bool {
        self.min_cut.is_none()
    }

    /// The least satisfying cut, if any.
    pub fn min_cut(&self) -> Option<&GlobalState> {
        self.min_cut.as_ref()
    }

    /// The greatest satisfying cut, if any.
    pub fn max_cut(&self) -> Option<&GlobalState> {
        self.max_cut.as_ref()
    }

    /// `J(s)` — the least satisfying cut whose frontier on `proc(s)` is at
    /// or past `s` — as raw per-process indices, or `None` when no
    /// satisfying cut lies at or above `s`.
    pub fn j_cut(&self, s: StateId) -> Option<&[u32]> {
        let row = self.row(s);
        self.j_exists[row].then(|| self.j.row(row).entries())
    }

    /// Can `s` be the frontier state of its process in some satisfying
    /// cut? (Exactly: `J(s)` exists and pins `proc(s)` at `s`.)
    pub fn frontier_possible(&self, s: StateId) -> bool {
        let row = self.row(s);
        self.j_exists[row] && self.j.word(row, s.process) == s.index
    }

    /// Number of surviving (frontier-possible) states.
    pub fn surviving_states(&self) -> usize {
        self.class_of.iter().filter(|&&c| c != u32::MAX).count()
    }

    /// Number of join-irreducible equivalence classes.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// The equivalence class of a surviving state (`None` for states that
    /// cannot be a satisfying frontier).
    pub fn class_of(&self, s: StateId) -> Option<u32> {
        let c = self.class_of[self.row(s)];
        (c != u32::MAX).then_some(c)
    }

    /// CSR skeleton over classes: `(offsets, sources)`, where the sources
    /// of class `c` are `sources[offsets[c]..offsets[c+1]]`.
    pub fn skeleton(&self) -> (&[u32], &[u32]) {
        (&self.skel_off, &self.skel_src)
    }

    /// Per-process maximal runs of frontier-possible indices, in the
    /// [`FalseIntervals`] form [`crate::store`]'s control entry points
    /// consume: a cut satisfying the predicate necessarily has *every*
    /// frontier inside these runs, so preventing all-inside prevents all
    /// satisfying cuts.
    pub fn frontier_intervals(&self) -> &FalseIntervals {
        &self.frontier
    }

    /// Does `g` satisfy the predicate? Self-contained test: `g` satisfies
    /// iff every per-process J-row exists and their join is `g` itself.
    #[allow(clippy::needless_range_loop)] // cut[i] is mutated while cut[j] is read across processes
    pub fn satisfies(&self, g: &GlobalState) -> bool {
        assert_eq!(g.arity(), self.n, "cut arity");
        let cut = g.indices();
        let mut join = vec![0u32; self.n];
        for i in 0..self.n {
            let row = self.offsets[i] + cut[i] as usize;
            if !self.j_exists[row] {
                return false;
            }
            let r = self.j.row(row);
            for (q, acc) in join.iter_mut().enumerate() {
                *acc = (*acc).max(r.get(ProcessId(q as u32)));
            }
        }
        join == cut
    }

    /// Enumerate every satisfying cut, failing once more than `limit`
    /// cuts have been produced. BFS over joins of J-rows: the successor of
    /// `g` in direction `i` is `g ⊔ J((i, g[i]+1))`, which is the least
    /// satisfying cut above `g` that advances `i` — so the walk visits the
    /// whole sublattice without touching the underlying store.
    pub fn cuts(&self, limit: usize) -> Result<Vec<GlobalState>, LatticeBudgetExceeded> {
        let Some(min) = &self.min_cut else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        let mut queue: VecDeque<Vec<u32>> = VecDeque::new();
        seen.insert(min.indices().to_vec());
        queue.push_back(min.indices().to_vec());
        while let Some(cur) = queue.pop_front() {
            out.push(GlobalState::from_indices(cur.clone()));
            if out.len() > limit {
                return Err(LatticeBudgetExceeded { limit });
            }
            for i in 0..self.n {
                let k = cur[i] + 1;
                if k >= self.lens[i] {
                    continue;
                }
                let row = self.offsets[i] + k as usize;
                if !self.j_exists[row] {
                    continue;
                }
                let r = self.j.row(row);
                let mut next = cur.clone();
                for (q, v) in next.iter_mut().enumerate() {
                    *v = (*v).max(r.get(ProcessId(q as u32)));
                }
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        Ok(out)
    }

    /// Count the satisfying cuts without materialising them.
    pub fn cut_count(&self, limit: usize) -> Result<usize, LatticeBudgetExceeded> {
        self.cuts(limit).map(|v| v.len())
    }

    fn row(&self, s: StateId) -> usize {
        assert!(
            s.process.index() < self.n && s.idx() < self.lens[s.process.index()] as usize,
            "state {s:?} out of range"
        );
        self.offsets[s.process.index()] + s.idx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DeposetBuilder;
    use crate::lattice::consistent_global_states;
    use crate::predicate::{CmpOp, LocalPredicate};
    use std::collections::BTreeSet;

    const BUDGET: usize = 100_000;

    /// Oracle: the slice's cut set equals the brute-force lattice filtered
    /// by the violation; min/max are the extrema; `satisfies` and
    /// `frontier_possible` agree with the enumeration.
    fn assert_slice_matches_oracle(dep: &Deposet, violation: &RegularPredicate) {
        let slice = SlicedDeposet::build(dep, violation).expect("valid violation");
        let all = consistent_global_states(dep, BUDGET).unwrap();
        let expected: BTreeSet<Vec<u32>> = all
            .iter()
            .filter(|g| violation.eval(dep, g))
            .map(|g| g.indices().to_vec())
            .collect();
        let got: BTreeSet<Vec<u32>> = slice
            .cuts(BUDGET)
            .unwrap()
            .iter()
            .map(|g| g.indices().to_vec())
            .collect();
        assert_eq!(got, expected, "slice cuts ≠ satisfying lattice cuts");
        assert_eq!(slice.is_empty(), expected.is_empty());
        assert_eq!(
            slice.min_cut().map(|g| g.indices().to_vec()),
            expected.iter().next().cloned().map(|_| {
                let mut m = expected.iter().next().unwrap().clone();
                for c in &expected {
                    for (a, b) in m.iter_mut().zip(c) {
                        *a = (*a).min(*b);
                    }
                }
                m
            })
        );
        assert_eq!(
            slice.max_cut().map(|g| g.indices().to_vec()),
            expected.iter().next().cloned().map(|_| {
                let mut m = expected.iter().next().unwrap().clone();
                for c in &expected {
                    for (a, b) in m.iter_mut().zip(c) {
                        *a = (*a).max(*b);
                    }
                }
                m
            })
        );
        for g in &all {
            assert_eq!(
                slice.satisfies(g),
                expected.contains(g.indices()),
                "satisfies({g}) disagrees with the oracle"
            );
        }
        for i in 0..dep.process_count() {
            let p = ProcessId(i as u32);
            for k in 0..dep.len_of(p) as u32 {
                let truth = expected.iter().any(|c| c[i] == k);
                assert_eq!(
                    slice.frontier_possible(StateId::new(p, k)),
                    truth,
                    "frontier_possible(({i},{k})) disagrees"
                );
            }
        }
    }

    fn two_proc_with_msg() -> Deposet {
        // P0: ⊥(x=0) → send → x=2 ; P1: ⊥ → recv → y=1
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("x", 0)]);
        let t = b.send(0, "m");
        b.internal(0, &[("x", 2)]);
        b.recv(1, t, &[("y", 1)]);
        b.finish().unwrap()
    }

    #[test]
    fn local_conjunction_matches_oracle() {
        let dep = two_proc_with_msg();
        assert_slice_matches_oracle(
            &dep,
            &RegularPredicate::local(0usize, LocalPredicate::cmp("x", CmpOp::Ge, 1)),
        );
        assert_slice_matches_oracle(
            &dep,
            &RegularPredicate::And(vec![
                RegularPredicate::local(0usize, LocalPredicate::cmp("x", CmpOp::Ge, 2)),
                RegularPredicate::local(1usize, LocalPredicate::var("y")),
            ]),
        );
    }

    #[test]
    fn channels_empty_matches_oracle() {
        let dep = two_proc_with_msg();
        assert_slice_matches_oracle(&dep, &RegularPredicate::ChannelsEmpty);
        assert_slice_matches_oracle(
            &dep,
            &RegularPredicate::And(vec![
                RegularPredicate::ChannelsEmpty,
                RegularPredicate::local(0usize, LocalPredicate::cmp("x", CmpOp::Ge, 1)),
            ]),
        );
    }

    #[test]
    fn unsatisfiable_violation_gives_empty_slice() {
        let dep = two_proc_with_msg();
        let slice = SlicedDeposet::build(
            &dep,
            &RegularPredicate::local(0usize, LocalPredicate::False),
        )
        .unwrap();
        assert!(slice.is_empty());
        assert!(slice.min_cut().is_none() && slice.max_cut().is_none());
        assert_eq!(slice.cuts(BUDGET).unwrap(), Vec::<GlobalState>::new());
        assert_eq!(slice.surviving_states(), 0);
        assert_eq!(slice.class_count(), 0);
        assert_eq!(slice.frontier_intervals().total(), 0);
    }

    #[test]
    fn empty_conjunction_keeps_the_whole_lattice() {
        let dep = two_proc_with_msg();
        let slice = SlicedDeposet::build(&dep, &RegularPredicate::And(vec![])).unwrap();
        let all = consistent_global_states(&dep, BUDGET).unwrap();
        assert_eq!(slice.cut_count(BUDGET).unwrap(), all.len());
        assert_eq!(slice.min_cut().unwrap(), &GlobalState::initial(2));
        assert_eq!(slice.max_cut().unwrap(), &GlobalState::final_of(&dep));
    }

    #[test]
    fn skeleton_reachability_is_j_dominance() {
        let dep = two_proc_with_msg();
        let slice = SlicedDeposet::build(
            &dep,
            &RegularPredicate::local(0usize, LocalPredicate::cmp("x", CmpOp::Ge, 1)),
        )
        .unwrap();
        let (off, src) = slice.skeleton();
        let nc = slice.class_count();
        assert_eq!(off.len(), nc + 1);
        // Transitive closure over the (dst ← src) CSR, by simple DP.
        let mut reach = vec![vec![false; nc]; nc];
        // classes are discovered in row order; an edge's sources always
        // exist, so a fixpoint over the CSR converges.
        loop {
            let mut changed = false;
            for c in 0..nc {
                for &s in &src[off[c] as usize..off[c + 1] as usize] {
                    let s = s as usize;
                    if !reach[s][c] {
                        reach[s][c] = true;
                        changed = true;
                    }
                    for row in reach.iter_mut() {
                        if row[s] && !row[c] {
                            row[c] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // reach ⟺ strict J-dominance between class representatives.
        let mut rep: Vec<Option<Vec<u32>>> = vec![None; nc];
        for i in 0..dep.process_count() {
            let p = ProcessId(i as u32);
            for k in 0..dep.len_of(p) as u32 {
                let s = StateId::new(p, k);
                if let Some(c) = slice.class_of(s) {
                    rep[c as usize].get_or_insert_with(|| slice.j_cut(s).unwrap().to_vec());
                }
            }
        }
        for a in 0..nc {
            for b in 0..nc {
                if a == b {
                    continue;
                }
                let (ja, jb) = (rep[a].as_ref().unwrap(), rep[b].as_ref().unwrap());
                let leq = ja.iter().zip(jb).all(|(x, y)| x <= y);
                assert_eq!(
                    reach[a][b], leq,
                    "skeleton reachability {a}→{b} must equal J(a) ≤ J(b)"
                );
            }
        }
    }

    #[test]
    fn budget_is_enforced() {
        let dep = two_proc_with_msg();
        let slice = SlicedDeposet::build(&dep, &RegularPredicate::And(vec![])).unwrap();
        assert_eq!(slice.cuts(1), Err(LatticeBudgetExceeded { limit: 1 }));
    }
}
