//! Sharded columnar clock storage: per-shard `ClockArena` slabs plus a
//! level-synchronised cross-shard DP.
//!
//! The flat [`ClockArena`] layout (one `n·S`-word slab per computation)
//! serialises construction: the Fidge–Mattern DP walks one topological
//! order and writes one allocation. For multi-million-state deposets the
//! ROADMAP wants construction, the clock DP and the truth-column builds to
//! run shard-parallel. This module supplies that layer:
//!
//! * a [`ShardPlan`] partitions the *processes* into contiguous groups, one
//!   per shard — auto-sized from [`crate::par::worker_count`] (with a
//!   minimum-states threshold so small computations keep the flat path) or
//!   explicitly overridden;
//! * [`ShardedClocks`] gives each shard its own arena slab of exactly
//!   `n · S_shard` words (the O(n·S) bound holds *per shard* and is
//!   asserted per construction), with a `(shard, local row)` address split
//!   that keeps `precedes` at two word reads;
//! * [`fill_sharded`] runs the DP shard-parallel: one global
//!   [`topo_order_chained`] sort fixes a linear extension of the whole
//!   relation (and detects cycles), each shard processes its subsequence
//!   of it, intra-shard chain and CSR merge edges are resolved
//!   independently per shard, and cross-shard message / control edges are
//!   resolved in **level-synchronised frontier rounds** —
//!   in round `k` every shard first *gathers* the already-final clock rows
//!   its round-`k` states merge from (computed in rounds `< k`, so reads
//!   race with nothing), then *computes* its own rows in local topological
//!   order. All buffers are sized up front, so the per-round loop is
//!   allocation-free, exactly like the flat DP.
//!
//! Determinism: every merge is a component-wise max (commutative,
//! associative) over the same edge multiset the flat DP uses, so the
//! sharded clocks are bit-identical to the flat ones for any plan — the
//! store proptests assert this on randomised deposets.

use crate::par::{ordered_for_each_mut, ordered_map, worker_count};
use pctl_causality::arena::{csr_from_edges, fill_fidge_mattern, topo_order_chained, MAX_ROWS};
use pctl_causality::{ClockArena, ClockRef, ProcessId};
use std::ops::Range;

/// Below this many total states the auto plan stays single-shard: the
/// per-round synchronisation would cost more than it saves, and the hot
/// multi-seed sweeps construct many *small* deposets.
pub const AUTO_MIN_STATES: usize = 16_384;

/// A partition of the processes `0 .. n` into contiguous shards.
///
/// Shard `s` owns processes `starts[s] .. starts[s + 1]`; empty shards are
/// permitted (an explicit plan may request more shards than processes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    starts: Vec<usize>,
}

impl ShardPlan {
    /// The trivial plan: one shard owning every process. Equivalent to the
    /// flat store.
    pub fn single(processes: usize) -> Self {
        ShardPlan {
            starts: vec![0, processes],
        }
    }

    /// Split `processes` into `shards` contiguous near-equal groups
    /// (`shards` is clamped to at least 1; groups may be empty when it
    /// exceeds the process count).
    pub fn with_shards(processes: usize, shards: usize) -> Self {
        let k = shards.max(1);
        ShardPlan {
            starts: (0..=k).map(|s| s * processes / k).collect(),
        }
    }

    /// Build from explicit group boundaries: `starts[s] .. starts[s + 1]`
    /// per shard, `starts[0] == 0`, non-decreasing.
    ///
    /// # Panics
    /// Panics if the boundary list is malformed.
    pub fn from_starts(starts: Vec<usize>) -> Self {
        assert!(starts.len() >= 2, "need at least one shard");
        assert_eq!(starts[0], 0, "first shard starts at process 0");
        assert!(
            starts.windows(2).all(|w| w[0] <= w[1]),
            "shard boundaries must be non-decreasing"
        );
        ShardPlan { starts }
    }

    /// The default plan for a computation of `processes` processes and
    /// `total_states` states: one shard per available worker, unless the
    /// machine is single-core or the computation is below
    /// [`AUTO_MIN_STATES`] (both degrade to [`ShardPlan::single`]).
    pub fn auto(processes: usize, total_states: usize) -> Self {
        let w = worker_count(processes);
        if w <= 1 || total_states < AUTO_MIN_STATES {
            Self::single(processes)
        } else {
            Self::with_shards(processes, w)
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Number of processes covered by the plan.
    #[inline]
    pub fn process_count(&self) -> usize {
        *self.starts.last().expect("starts is non-empty")
    }

    /// The processes owned by shard `s`.
    #[inline]
    pub fn processes_of(&self, s: usize) -> Range<usize> {
        self.starts[s]..self.starts[s + 1]
    }

    /// The shard owning process `p`. With empty shards present, the unique
    /// *non-empty* owner is returned.
    pub fn shard_of(&self, p: ProcessId) -> usize {
        self.starts.partition_point(|&st| st <= p.index()) - 1
    }

    /// The raw group boundaries (`shard_count() + 1` entries).
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }
}

/// The clocks of a whole computation, stored as one [`ClockArena`] slab per
/// shard of a [`ShardPlan`].
///
/// Addressing: a state's flat row `r` (process-major, as in
/// `Deposet::offsets`) lives in shard `s = shard_of(proc(r))` at local row
/// `r - base_rows[s]` — shards own contiguous process ranges, so their
/// global rows are contiguous too. Both lookups are O(1) array reads, which
/// keeps `precedes` at two clock-word reads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedClocks {
    plan: ShardPlan,
    arenas: Vec<ClockArena>,
    /// Owning shard per process (O(1) addressing; avoids the plan's binary
    /// search on the `precedes` hot path).
    shard_of_proc: Vec<u32>,
    /// Global flat row where each shard begins (`shard_count() + 1`
    /// entries).
    base_rows: Vec<usize>,
    /// Frontier rounds the fill used (1 for a single shard).
    rounds: usize,
}

impl ShardedClocks {
    /// The partition this store was built with.
    #[inline]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.arenas.len()
    }

    /// The arena slab of shard `s`.
    #[inline]
    pub fn arena(&self, s: usize) -> &ClockArena {
        &self.arenas[s]
    }

    /// Level-synchronised frontier rounds the DP needed (1 when there are
    /// no cross-shard edges or only one shard).
    #[inline]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total words across all slabs — always exactly `n · S`.
    pub fn total_allocated_words(&self) -> usize {
        self.arenas.iter().map(ClockArena::allocated_words).sum()
    }

    /// `(shard, local row)` address of global row `global_row`, owned by
    /// process `owner`.
    #[inline]
    pub fn address(&self, owner: ProcessId, global_row: usize) -> (usize, usize) {
        let s = self.shard_of_proc[owner.index()] as usize;
        (s, global_row - self.base_rows[s])
    }

    /// Single clock-component read: the clock of global row `global_row`
    /// (owned by process `owner`), component `comp`.
    #[inline]
    pub fn word(&self, owner: ProcessId, global_row: usize, comp: ProcessId) -> u32 {
        let (s, r) = self.address(owner, global_row);
        self.arenas[s].word(r, comp)
    }

    /// The full clock of global row `global_row` (owned by `owner`).
    #[inline]
    pub fn row(&self, owner: ProcessId, global_row: usize) -> ClockRef<'_> {
        let (s, r) = self.address(owner, global_row);
        self.arenas[s].row(r)
    }
}

/// Per-shard immutable inputs produced by the parallel per-shard phase.
struct ShardLocal {
    /// Intra-shard merge edges, CSR keyed by local destination row.
    moff: Vec<u32>,
    msrc: Vec<u32>,
    /// Cross-shard merge edges, CSR keyed by local destination row; the
    /// source values are *global* rows.
    xoff: Vec<u32>,
    xsrc: Vec<u32>,
    /// Owning global process per local row.
    proc_of: Vec<u32>,
    /// Whether a local row is the first state of its process chain.
    chain_start: Vec<bool>,
}

/// One shard's gather buffer: slot `e` holds the `n`-word clock row of
/// cross-edge `e`'s source, copied in during the gather phase of the round
/// that computes the edge's destination.
struct ShardGather {
    buf: Vec<u32>,
}

/// Compute the Fidge–Mattern clocks of a computation under `plan`, given
/// the flat per-process row `offsets` (`n + 1` entries) and the merge
/// `(dst, src)` edge pairs (messages, plus control edges for extended
/// causality).
///
/// Returns `None` when the combined relation has a cycle — detected by the
/// one global topological sort whose per-shard subsequences also drive the
/// frontier schedule.
pub fn fill_sharded(
    plan: &ShardPlan,
    offsets: &[usize],
    edges: &[(u32, u32)],
) -> Option<ShardedClocks> {
    let _prof = pctl_prof::span("fill_sharded");
    let n = offsets.len() - 1;
    assert_eq!(
        plan.process_count(),
        n,
        "plan covers a different process count"
    );
    let total = *offsets.last().expect("offsets has n+1 entries");
    assert!(
        total <= MAX_ROWS,
        "row count {total} exceeds u32 addressing (max {MAX_ROWS})"
    );
    let shards = plan.shard_count();

    // One shard is the flat store: one slab, one sort, one DP pass.
    if shards == 1 {
        let order = topo_order_chained(offsets, edges)?;
        let (moff, msrc) = csr_from_edges(total, edges);
        let mut arena = ClockArena::zeroed(n, total);
        fill_fidge_mattern(&mut arena, offsets, &order, &moff, &msrc);
        return Some(ShardedClocks {
            plan: plan.clone(),
            arenas: vec![arena],
            shard_of_proc: vec![0; n],
            base_rows: vec![0, total],
            rounds: 1,
        });
    }

    let mut shard_of_proc = vec![0u32; n];
    for s in 0..shards {
        for p in plan.processes_of(s) {
            shard_of_proc[p] = s as u32;
        }
    }
    let base_rows: Vec<usize> = (0..=shards).map(|s| offsets[plan.starts[s]]).collect();
    // Rows of a shard are contiguous, so a row's shard is a partition point
    // over the base offsets (empty shards collapse to the non-empty owner).
    let shard_of_row = |r: u32| -> usize { base_rows.partition_point(|&b| b <= r as usize) - 1 };

    // Classify edges: intra-shard edges are re-indexed to local rows; the
    // destination shard keeps its cross-shard edges with global sources.
    let mut intra: Vec<Vec<(u32, u32)>> = vec![Vec::new(); shards];
    let mut cross_of: Vec<Vec<(u32, u32)>> = vec![Vec::new(); shards];
    let mut cross_all: Vec<(u32, u32)> = Vec::new();
    for &(d, src) in edges {
        let ds = shard_of_row(d);
        if ds == shard_of_row(src) {
            let base = base_rows[ds] as u32;
            intra[ds].push((d - base, src - base));
        } else {
            cross_of[ds].push((d - base_rows[ds] as u32, src));
            cross_all.push((d, src));
        }
    }

    // One global topological sort over *all* edges: this is both the cycle
    // check (intra- or cross-shard — `None` either way) and the source of
    // each shard's processing order. A shard must not order its rows from
    // intra-shard edges alone: a cross-shard path that leaves the shard and
    // re-enters it at a locally-earlier row would deadlock the cursor
    // schedule below. Splitting one linear extension of the whole relation
    // into per-shard subsequences rules that out by construction.
    let global_order = topo_order_chained(offsets, edges)?;
    let mut orders: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for &g in &global_order {
        let s = shard_of_row(g);
        orders[s].push(g - base_rows[s] as u32);
    }

    // Per-shard phase (parallel): local CSRs and chain metadata.
    let shard_ids: Vec<usize> = (0..shards).collect();
    let locals: Vec<ShardLocal> = ordered_map(&shard_ids, |_, &s| {
        let base = base_rows[s];
        let rows = base_rows[s + 1] - base;
        let proc_range = plan.processes_of(s);
        let (moff, msrc) = csr_from_edges(rows, &intra[s]);
        let (xoff, xsrc) = csr_from_edges(rows, &cross_of[s]);
        let mut proc_of = vec![0u32; rows];
        let mut chain_start = vec![false; rows];
        for p in proc_range {
            let lo = offsets[p] - base;
            let hi = offsets[p + 1] - base;
            for owner in &mut proc_of[lo..hi] {
                *owner = p as u32;
            }
            if hi > lo {
                chain_start[lo] = true;
            }
        }
        ShardLocal {
            moff,
            msrc,
            xoff,
            xsrc,
            proc_of,
            chain_start,
        }
    });

    // Frontier schedule (sequential, structural only): in each round every
    // shard extends its cursor through its order subsequence while the next
    // row's cross-shard sources were all computed in strictly earlier
    // rounds. Because each cursor follows a subsequence of one global
    // linear extension, the globally earliest unfinished row is always
    // ready at the start of a round, so every round progresses.
    let (xoff_g, xsrc_g) = csr_from_edges(total, &cross_all);
    let mut done_round = vec![usize::MAX; total];
    let mut cursors = vec![0usize; shards];
    // segments[k][s] = the range of orders[s] computed in round k.
    let mut segments: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut done_total = 0usize;
    let mut round = 0usize;
    while done_total < total {
        let mut progressed = false;
        let mut seg_round = vec![(0usize, 0usize); shards];
        for (s, order) in orders.iter().enumerate() {
            let start = cursors[s];
            while cursors[s] < order.len() {
                let g = base_rows[s] + order[cursors[s]] as usize;
                let ready = xsrc_g[xoff_g[g] as usize..xoff_g[g + 1] as usize]
                    .iter()
                    .all(|&src| done_round[src as usize] < round);
                if !ready {
                    break;
                }
                done_round[g] = round;
                cursors[s] += 1;
                done_total += 1;
            }
            seg_round[s] = (start, cursors[s]);
            progressed |= cursors[s] > start;
        }
        // Unreachable for acyclic inputs (see above); the guard keeps a
        // logic bug from looping forever instead of failing loudly.
        assert!(progressed, "frontier schedule stalled on an acyclic input");
        segments.push(seg_round);
        round += 1;
    }
    let rounds = round.max(1);

    // Pre-size everything the rounds touch: per-shard arenas and gather
    // buffers (one n-word slot per cross-in edge). The round loop below
    // performs no allocation.
    let mut arenas: Vec<ClockArena> = (0..shards)
        .map(|s| ClockArena::zeroed(n, base_rows[s + 1] - base_rows[s]))
        .collect();
    let mut gathers: Vec<ShardGather> = locals
        .iter()
        .map(|l| ShardGather {
            buf: vec![0u32; l.xsrc.len() * n],
        })
        .collect();

    for seg_round in &segments {
        // Gather phase: each shard copies the clock rows this round's
        // states merge from. Sources are final (earlier rounds), so
        // concurrent reads of foreign arenas are safe and deterministic.
        ordered_for_each_mut(&mut gathers, |s, gather| {
            let local = &locals[s];
            let (lo, hi) = seg_round[s];
            for &r in &orders[s][lo..hi] {
                let r = r as usize;
                for e in local.xoff[r] as usize..local.xoff[r + 1] as usize {
                    let src = local.xsrc[e];
                    let ss = shard_of_row(src);
                    let row = arenas[ss].row(src as usize - base_rows[ss]);
                    gather.buf[e * n..(e + 1) * n].copy_from_slice(row.entries());
                }
            }
        });
        // Compute phase: each shard runs the flat DP step over its own slab
        // — copy local predecessor, merge intra-shard CSR sources, merge
        // gathered cross-shard rows, tick.
        ordered_for_each_mut(&mut arenas, |s, arena| {
            let local = &locals[s];
            let gather = &gathers[s];
            let (lo, hi) = seg_round[s];
            for &r in &orders[s][lo..hi] {
                let r = r as usize;
                arena.fm_row(
                    r,
                    local.chain_start[r],
                    &local.msrc[local.moff[r] as usize..local.moff[r + 1] as usize],
                    &gather.buf[local.xoff[r] as usize * n..local.xoff[r + 1] as usize * n],
                    ProcessId(local.proc_of[r]),
                );
            }
        });
    }

    // The per-shard O(n·S_shard)-words bound — the flat store's invariant,
    // now held slab by slab.
    for (s, arena) in arenas.iter().enumerate() {
        assert_eq!(
            arena.allocated_words(),
            n * (base_rows[s + 1] - base_rows[s]),
            "shard {s} violates the per-shard words bound"
        );
    }

    Some(ShardedClocks {
        plan: plan.clone(),
        arenas,
        shard_of_proc,
        base_rows,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_shapes() {
        let p = ShardPlan::with_shards(10, 3);
        assert_eq!(p.shard_count(), 3);
        assert_eq!(p.process_count(), 10);
        assert_eq!(p.processes_of(0), 0..3);
        assert_eq!(p.processes_of(1), 3..6);
        assert_eq!(p.processes_of(2), 6..10);
        assert_eq!(p.shard_of(ProcessId(0)), 0);
        assert_eq!(p.shard_of(ProcessId(3)), 1);
        assert_eq!(p.shard_of(ProcessId(9)), 2);

        // More shards than processes: empty shards are fine.
        let q = ShardPlan::with_shards(2, 4);
        assert_eq!(q.shard_count(), 4);
        assert_eq!(
            (0..4).map(|s| q.processes_of(s).len()).sum::<usize>(),
            2,
            "every process owned exactly once"
        );
        for p in 0..2u32 {
            let s = q.shard_of(ProcessId(p));
            assert!(q.processes_of(s).contains(&(p as usize)));
        }

        assert_eq!(ShardPlan::single(0).shard_count(), 1, "empty deposet");
        assert_eq!(ShardPlan::single(5), ShardPlan::with_shards(5, 1));
    }

    #[test]
    fn auto_plan_keeps_small_computations_single_shard() {
        assert_eq!(ShardPlan::auto(8, 100), ShardPlan::single(8));
        let big = ShardPlan::auto(8, AUTO_MIN_STATES);
        assert_eq!(big.shard_count(), worker_count(8).max(1));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_starts_rejects_decreasing_bounds() {
        ShardPlan::from_starts(vec![0, 3, 1]);
    }

    #[test]
    fn single_shard_fill_matches_flat_dp() {
        // P0: rows 0,1; P1: rows 2,3; message row 0 → row 3 (the arena
        // module's reference example).
        let offsets = [0usize, 2, 4];
        let sc = fill_sharded(&ShardPlan::single(2), &offsets, &[(3, 0)]).unwrap();
        assert_eq!(sc.shard_count(), 1);
        assert_eq!(sc.rounds(), 1);
        assert_eq!(sc.row(ProcessId(0), 1).entries(), &[2, 0]);
        assert_eq!(sc.row(ProcessId(1), 3).entries(), &[1, 2]);
        assert_eq!(sc.total_allocated_words(), 2 * 4);
    }

    #[test]
    fn two_shards_resolve_cross_edges_in_rounds() {
        // Same computation, one process per shard: the message becomes a
        // cross-shard edge and needs a second frontier round.
        let offsets = [0usize, 2, 4];
        let plan = ShardPlan::with_shards(2, 2);
        let sc = fill_sharded(&plan, &offsets, &[(3, 0)]).unwrap();
        assert_eq!(sc.shard_count(), 2);
        assert!(sc.rounds() >= 2, "cross edge forces a later round");
        assert_eq!(sc.row(ProcessId(0), 0).entries(), &[1, 0]);
        assert_eq!(sc.row(ProcessId(0), 1).entries(), &[2, 0]);
        assert_eq!(sc.row(ProcessId(1), 2).entries(), &[0, 1]);
        assert_eq!(sc.row(ProcessId(1), 3).entries(), &[1, 2]);
        // Per-shard word bound: each slab is n · S_shard.
        assert_eq!(sc.arena(0).allocated_words(), 2 * 2);
        assert_eq!(sc.arena(1).allocated_words(), 2 * 2);
        assert_eq!(sc.word(ProcessId(1), 3, ProcessId(0)), 1);
    }

    #[test]
    fn cross_shard_cycle_is_detected() {
        // P0 row 1 → P1 row 3 and P1 row 2 → P0 row 0 close a cycle with
        // the chains only when combined across shards... build a direct
        // 2-cycle instead: rows (1 ← 2) and (3 ← 0) with chains 0→1, 2→3:
        // 0 → 1, 2 → 1? Use: edge (1, 3) and (2, 0) is acyclic. A genuine
        // cross cycle: (0, 3) and (2, 1) gives 1→2→3→0→1? chains 0→1, 2→3;
        // edges dst=0 src=3 (3→0) and dst=2 src=1 (1→2): cycle 0→1→2→3→0.
        let offsets = [0usize, 2, 4];
        let plan = ShardPlan::with_shards(2, 2);
        assert_eq!(fill_sharded(&plan, &offsets, &[(0, 3), (2, 1)]), None);
        // Intra-shard cycles are caught by the same global sort.
        let one = ShardPlan::with_shards(2, 2);
        assert_eq!(fill_sharded(&one, &[0, 2, 2], &[(0, 1)]), None);
    }

    #[test]
    fn cross_shard_round_trip_into_the_same_shard_is_not_a_cycle() {
        // Shard 0 owns P0 and P1, shard 1 owns P2. The acyclic dependency
        // chain P1·row2 → P2·row5 → P0·row1 leaves shard 0 and re-enters it
        // at a row an intra-shard-only ordering would schedule *before* the
        // originating row — which used to stall the cursor schedule and
        // report a spurious cycle. The global linear extension orders row 2
        // ahead of row 1, so the rounds resolve it.
        let offsets = [0usize, 2, 4, 6];
        let plan = ShardPlan::from_starts(vec![0, 2, 3]);
        let edges = [(5u32, 2u32), (1, 5)];
        let sharded = fill_sharded(&plan, &offsets, &edges).expect("acyclic");
        let flat = fill_sharded(&ShardPlan::single(3), &offsets, &edges).unwrap();
        for p in 0..3u32 {
            for k in 0..2usize {
                let g = offsets[p as usize] + k;
                assert_eq!(flat.row(ProcessId(p), g), sharded.row(ProcessId(p), g));
            }
        }
        // P0·row1 transitively sees P1's send and P2's relay.
        assert_eq!(sharded.row(ProcessId(0), 1).entries(), &[2, 1, 2]);
    }

    #[test]
    fn empty_shards_and_empty_computations_are_fine() {
        // 4 shards over 2 processes: two shards own nothing.
        let plan = ShardPlan::with_shards(2, 4);
        let sc = fill_sharded(&plan, &[0, 1, 2], &[]).unwrap();
        assert_eq!(sc.shard_count(), 4);
        assert_eq!(sc.total_allocated_words(), 2 * 2);
        assert_eq!(sc.row(ProcessId(0), 0).entries(), &[1, 0]);
        assert_eq!(sc.row(ProcessId(1), 1).entries(), &[0, 1]);

        // Zero processes, zero states.
        let empty = fill_sharded(&ShardPlan::single(0), &[0], &[]).unwrap();
        assert_eq!(empty.total_allocated_words(), 0);
        assert_eq!(empty.rounds(), 1);

        // Multi-shard plan over an empty process set.
        let empty2 = fill_sharded(&ShardPlan::with_shards(0, 3), &[0], &[]).unwrap();
        assert_eq!(empty2.shard_count(), 3);
        assert_eq!(empty2.total_allocated_words(), 0);
    }

    #[test]
    fn one_process_per_shard_matches_flat() {
        // Ring of messages over 4 processes, 3 states each; compare every
        // clock against the single-shard fill.
        let offsets = [0usize, 3, 6, 9, 12];
        let mut edges = Vec::new();
        for p in 0..4u32 {
            let q = (p + 1) % 4;
            // message from (p, 0) received producing (q, 2): dst row, src row
            edges.push((offsets[q as usize] as u32 + 2, offsets[p as usize] as u32));
        }
        let flat = fill_sharded(&ShardPlan::single(4), &offsets, &edges).unwrap();
        let sharded = fill_sharded(&ShardPlan::with_shards(4, 4), &offsets, &edges).unwrap();
        for p in 0..4u32 {
            for k in 0..3usize {
                let g = offsets[p as usize] + k;
                assert_eq!(
                    flat.row(ProcessId(p), g),
                    sharded.row(ProcessId(p), g),
                    "clock of row {g}"
                );
            }
        }
        assert_eq!(sharded.total_allocated_words(), 4 * 12);
        assert_eq!(sharded.plan().shard_count(), 4);
    }
}
