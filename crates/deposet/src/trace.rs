//! Serializable trace format for deposets.
//!
//! A debugging session records a computation once and replays it many times
//! (possibly in a different process or on a different machine), so the trace
//! format is a stable, human-inspectable JSON document. Vector clocks are
//! *not* stored: they are derived data, recomputed (and thereby
//! re-validated) on load.

use crate::event::{EventKind, Message};
use crate::model::{Deposet, DeposetError};
use crate::state::LocalState;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

/// On-disk mirror of a [`Deposet`] (states + events + messages, no clocks).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trace {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Per-process local state sequences.
    pub states: Vec<Vec<LocalState>>,
    /// Per-process event sequences (`events[p].len() == states[p].len()-1`).
    pub events: Vec<Vec<EventKind>>,
    /// Delivered messages.
    pub messages: Vec<Message>,
}

/// Current trace format version.
pub const TRACE_VERSION: u32 = 1;

/// Errors loading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Unsupported `version` field.
    Version(u32),
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// The trace decodes but is not a valid deposet.
    Invalid(DeposetError),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Version(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Json(e) => write!(f, "trace JSON error: {e}"),
            TraceError::Invalid(e) => write!(f, "trace is not a valid deposet: {e}"),
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Json(e)
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl Trace {
    /// Snapshot a deposet into its trace form.
    pub fn from_deposet(dep: &Deposet) -> Self {
        let (states, events, messages) = dep.parts();
        Trace {
            version: TRACE_VERSION,
            states: states.to_vec(),
            events: events.to_vec(),
            messages: messages.to_vec(),
        }
    }

    /// Rebuild (and re-validate) the deposet.
    pub fn into_deposet(self) -> Result<Deposet, TraceError> {
        if self.version != TRACE_VERSION {
            return Err(TraceError::Version(self.version));
        }
        Deposet::from_parts(self.states, self.events, self.messages).map_err(TraceError::Invalid)
    }
}

/// Serialize a deposet to pretty JSON.
pub fn to_json(dep: &Deposet) -> String {
    serde_json::to_string_pretty(&Trace::from_deposet(dep)).expect("trace is always serializable")
}

/// Parse a deposet from trace JSON.
pub fn from_json(json: &str) -> Result<Deposet, TraceError> {
    let t: Trace = serde_json::from_str(json)?;
    t.into_deposet()
}

/// Write a trace to any writer.
pub fn write_trace<W: Write>(dep: &Deposet, mut w: W) -> Result<(), TraceError> {
    let s = to_json(dep);
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Read a trace from any reader.
pub fn read_trace<R: Read>(mut r: R) -> Result<Deposet, TraceError> {
    let mut s = String::new();
    r.read_to_string(&mut s)?;
    from_json(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DeposetBuilder;
    use pctl_causality::{ProcessId, StateId};

    fn sample() -> Deposet {
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("avail", 1)]);
        b.init_vars(1, &[("avail", 1)]);
        let t = b.send_with(0, "ping", &[("avail", 0)]);
        b.recv(1, t, &[("avail", 0)]);
        b.internal(1, &[("avail", 1)]);
        b.finish().unwrap()
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let d = sample();
        let json = to_json(&d);
        let back = from_json(&json).unwrap();
        assert_eq!(back.process_count(), d.process_count());
        for p in d.processes() {
            assert_eq!(back.states_of(p), d.states_of(p));
            assert_eq!(back.events_of(p), d.events_of(p));
        }
        assert_eq!(back.messages(), d.messages());
        // Clocks are recomputed identically.
        for s in d.state_ids() {
            assert_eq!(back.clock(s), d.clock(s));
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let d = sample();
        let mut t = Trace::from_deposet(&d);
        t.version = 99;
        assert!(matches!(t.into_deposet(), Err(TraceError::Version(99))));
    }

    #[test]
    fn rejects_corrupted_trace() {
        let d = sample();
        let mut t = Trace::from_deposet(&d);
        // Corrupt a message endpoint.
        t.messages[0].to = StateId::new(ProcessId(1), 0);
        assert!(matches!(t.into_deposet(), Err(TraceError::Invalid(_))));
    }

    #[test]
    fn rejects_garbage_json() {
        assert!(matches!(from_json("not json"), Err(TraceError::Json(_))));
    }

    #[test]
    fn reader_writer_roundtrip() {
        let d = sample();
        let mut buf = Vec::new();
        write_trace(&d, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.total_states(), d.total_states());
    }
}
