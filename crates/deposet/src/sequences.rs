//! Global sequences — the paper's model of a global execution.
//!
//! A *global sequence* is a sequence of consistent global states ordered by
//! `≤` whose restriction to any process `Pᵢ` is `Sᵢ` with stutters: it runs
//! from `⊥` to `⊤` and each step advances a nonempty *subset* of processes
//! by exactly one local state ("multiple local events can take place
//! simultaneously" — no interleaving is enforced).
//!
//! The subset semantics matters: a step that advances two processes at once
//! can jump over an inconsistent or predicate-violating "diagonal" state
//! that no single-step path avoids. [`subset_step_successors`] enumerates
//! these moves (exponential in the number of processes, by nature — this is
//! where the NP-hardness of SGSD lives).

use crate::global::GlobalState;
use crate::model::Deposet;
use pctl_causality::ProcessId;
use rand_compat::RngLike;
use std::fmt;

/// Minimal abstraction over an RNG so this crate does not depend on a
/// specific `rand` version; the simulator and tests adapt their RNGs.
pub mod rand_compat {
    /// Anything that can produce a uniform `usize` below a bound.
    pub trait RngLike {
        /// Uniform sample in `0..bound` (`bound ≥ 1`).
        fn below(&mut self, bound: usize) -> usize;
    }
}

/// Validation failure for a candidate global sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SequenceError {
    /// The sequence has no states.
    Empty,
    /// First state is not `⊥`.
    NotInitial,
    /// Last state is not `⊤`.
    NotFinal,
    /// Step `at → at+1` advances some process by more than one state, or
    /// advances nothing.
    BadStep {
        /// Index of the offending step's source state.
        at: usize,
    },
    /// The state at `at` is not consistent.
    Inconsistent {
        /// Index of the inconsistent state.
        at: usize,
    },
    /// The state at `at` indexes outside the deposet.
    OutOfBounds {
        /// Index of the out-of-range state.
        at: usize,
    },
}

impl fmt::Display for SequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceError::Empty => write!(f, "empty global sequence"),
            SequenceError::NotInitial => write!(f, "global sequence does not start at ⊥"),
            SequenceError::NotFinal => write!(f, "global sequence does not end at ⊤"),
            SequenceError::BadStep { at } => {
                write!(
                    f,
                    "step {at} does not advance a nonempty subset by one state each"
                )
            }
            SequenceError::Inconsistent { at } => write!(f, "state {at} is inconsistent"),
            SequenceError::OutOfBounds { at } => write!(f, "state {at} is out of bounds"),
        }
    }
}

impl std::error::Error for SequenceError {}

/// A validated-on-demand global sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalSequence {
    states: Vec<GlobalState>,
}

impl GlobalSequence {
    /// Wrap a raw sequence (validate separately with
    /// [`validate`](Self::validate)).
    pub fn new(states: Vec<GlobalState>) -> Self {
        GlobalSequence { states }
    }

    /// The underlying states.
    pub fn states(&self) -> &[GlobalState] {
        &self.states
    }

    /// Number of global states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Check the full global-sequence contract against `dep` (see module
    /// docs).
    pub fn validate(&self, dep: &Deposet) -> Result<(), SequenceError> {
        if self.states.is_empty() {
            return Err(SequenceError::Empty);
        }
        let n = dep.process_count();
        for (at, g) in self.states.iter().enumerate() {
            if !g.in_bounds(dep) {
                return Err(SequenceError::OutOfBounds { at });
            }
            if !g.is_consistent(dep) {
                return Err(SequenceError::Inconsistent { at });
            }
        }
        if self.states[0] != GlobalState::initial(n) {
            return Err(SequenceError::NotInitial);
        }
        if *self.states.last().unwrap() != GlobalState::final_of(dep) {
            return Err(SequenceError::NotFinal);
        }
        for (at, w) in self.states.windows(2).enumerate() {
            let (g, h) = (&w[0], &w[1]);
            let mut advanced = 0usize;
            for i in 0..n {
                match h.indices()[i].checked_sub(g.indices()[i]) {
                    Some(0) => {}
                    Some(1) => advanced += 1,
                    _ => return Err(SequenceError::BadStep { at }),
                }
            }
            if advanced == 0 {
                return Err(SequenceError::BadStep { at });
            }
        }
        Ok(())
    }

    /// A global sequence *satisfies* a predicate iff every global state in
    /// it does (the paper's satisfaction notion).
    pub fn satisfies<F>(&self, dep: &Deposet, mut pred: F) -> bool
    where
        F: FnMut(&Deposet, &GlobalState) -> bool,
    {
        self.states.iter().all(|g| pred(dep, g))
    }
}

/// All consistent cuts reachable from `g` in one subset step: advance every
/// process in a nonempty subset by exactly one state, keeping consistency.
///
/// Cost is `O(2ⁿ · n²)`; intended for small `n` (SGSD search, exhaustive
/// verification).
pub fn subset_step_successors(dep: &Deposet, g: &GlobalState) -> Vec<GlobalState> {
    let n = dep.process_count();
    assert!(n <= 20, "subset stepping is exponential; refusing n > 20");
    let movable: Vec<ProcessId> = dep
        .processes()
        .filter(|&p| (g.index_of(p) as usize) + 1 < dep.len_of(p))
        .collect();
    let mut out = Vec::new();
    for mask in 1u32..(1u32 << movable.len()) {
        let procs = movable
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &p)| p);
        let h = g.advanced_all(procs);
        if h.is_consistent(dep) {
            out.push(h);
        }
    }
    out
}

/// Search for a global sequence `⊥ → ⊤` every state of which satisfies
/// `pred`, using subset steps (see module docs). Returns the witness
/// sequence, `Ok(None)` when provably none exists, or an error when the
/// search exceeds `limit` visited global states.
///
/// This is the engine behind the paper's *Satisfying Global Sequence
/// Detection* (SGSD) problem — NP-complete in general (paper Lemma 1), so
/// worst-case exponential time is inherent, and the budget is mandatory.
pub fn find_satisfying_sequence<F>(
    dep: &Deposet,
    limit: usize,
    mut pred: F,
) -> Result<Option<GlobalSequence>, crate::lattice::LatticeBudgetExceeded>
where
    F: FnMut(&Deposet, &GlobalState) -> bool,
{
    use std::collections::HashMap;
    let n = dep.process_count();
    let init = GlobalState::initial(n);
    let goal = GlobalState::final_of(dep);
    if !pred(dep, &init) {
        return Ok(None);
    }
    // BFS over B-satisfying consistent cuts with subset steps; parents for
    // witness reconstruction.
    let mut parent: HashMap<GlobalState, GlobalState> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    parent.insert(init.clone(), init.clone());
    queue.push_back(init.clone());
    let mut visited = 0usize;
    while let Some(g) = queue.pop_front() {
        visited += 1;
        if visited > limit {
            return Err(crate::lattice::LatticeBudgetExceeded { limit });
        }
        if g == goal {
            let mut path = vec![g.clone()];
            let mut cur = g;
            while parent[&cur] != cur {
                cur = parent[&cur].clone();
                path.push(cur.clone());
            }
            path.reverse();
            return Ok(Some(GlobalSequence::new(path)));
        }
        for h in subset_step_successors(dep, &g) {
            if !parent.contains_key(&h) && pred(dep, &h) {
                parent.insert(h.clone(), g.clone());
                queue.push_back(h);
            }
        }
    }
    Ok(None)
}

/// Like [`find_satisfying_sequence`] but restricted to *interleavings*:
/// every step advances exactly one process. This is the satisfaction
/// notion realizable by message-based control systems — asynchronous
/// messages can enforce strict precedence but never the exact simultaneity
/// that a subset step expresses — so it is the ground-truth oracle for
/// control feasibility (see `pctl-core`'s `overlap` module docs).
pub fn find_satisfying_interleaving<F>(
    dep: &Deposet,
    limit: usize,
    mut pred: F,
) -> Result<Option<GlobalSequence>, crate::lattice::LatticeBudgetExceeded>
where
    F: FnMut(&Deposet, &GlobalState) -> bool,
{
    use std::collections::HashMap;
    let n = dep.process_count();
    let init = GlobalState::initial(n);
    let goal = GlobalState::final_of(dep);
    if !pred(dep, &init) {
        return Ok(None);
    }
    let mut parent: HashMap<GlobalState, GlobalState> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    parent.insert(init.clone(), init.clone());
    queue.push_back(init.clone());
    let mut visited = 0usize;
    while let Some(g) = queue.pop_front() {
        visited += 1;
        if visited > limit {
            return Err(crate::lattice::LatticeBudgetExceeded { limit });
        }
        if g == goal {
            let mut path = vec![g.clone()];
            let mut cur = g;
            while parent[&cur] != cur {
                cur = parent[&cur].clone();
                path.push(cur.clone());
            }
            path.reverse();
            return Ok(Some(GlobalSequence::new(path)));
        }
        for (_, h) in g.consistent_successors(dep) {
            if !parent.contains_key(&h) && pred(dep, &h) {
                parent.insert(h.clone(), g.clone());
                queue.push_back(h);
            }
        }
    }
    Ok(None)
}

/// Sample a uniform-ish random maximal global sequence by repeatedly taking
/// a random *singleton* consistent advance (singleton steps always exist
/// while `g ≠ ⊤`, since the enabled minimal elements of the residual poset
/// are nonempty). Used for randomized testing and for driving replays.
pub fn random_global_sequence<R: RngLike>(dep: &Deposet, rng: &mut R) -> GlobalSequence {
    let mut g = GlobalState::initial(dep.process_count());
    let mut states = vec![g.clone()];
    loop {
        let succs: Vec<GlobalState> = g.consistent_successors(dep).map(|(_, h)| h).collect();
        if succs.is_empty() {
            break;
        }
        g = succs[rng.below(succs.len())].clone();
        states.push(g.clone());
    }
    GlobalSequence::new(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DeposetBuilder;

    struct Lcg(u64);
    impl RngLike for Lcg {
        fn below(&mut self, bound: usize) -> usize {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 33) as usize) % bound
        }
    }

    fn msg_dep() -> Deposet {
        let mut b = DeposetBuilder::new(2);
        let t = b.send(0, "m");
        b.recv(1, t, &[]);
        b.finish().unwrap()
    }

    #[test]
    fn valid_singleton_path() {
        let d = msg_dep();
        let seq = GlobalSequence::new(vec![
            GlobalState::from_indices(vec![0, 0]),
            GlobalState::from_indices(vec![1, 0]),
            GlobalState::from_indices(vec![1, 1]),
        ]);
        assert_eq!(seq.validate(&d), Ok(()));
    }

    #[test]
    fn simultaneous_step_is_valid() {
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[]);
        b.internal(1, &[]);
        let d = b.finish().unwrap();
        let seq = GlobalSequence::new(vec![
            GlobalState::from_indices(vec![0, 0]),
            GlobalState::from_indices(vec![1, 1]),
        ]);
        assert_eq!(seq.validate(&d), Ok(()));
    }

    #[test]
    fn rejects_inconsistent_and_malformed_sequences() {
        let d = msg_dep();
        let inconsistent = GlobalSequence::new(vec![
            GlobalState::from_indices(vec![0, 0]),
            GlobalState::from_indices(vec![0, 1]),
            GlobalState::from_indices(vec![1, 1]),
        ]);
        assert_eq!(
            inconsistent.validate(&d),
            Err(SequenceError::Inconsistent { at: 1 })
        );

        let skips = GlobalSequence::new(vec![
            GlobalState::from_indices(vec![0, 0]),
            GlobalState::from_indices(vec![1, 1]),
        ]);
        // ⟨0,0⟩→⟨1,1⟩ advances both by one — fine per-step, but wait: it is
        // consistent and a legal subset step, so this one must be VALID.
        assert_eq!(skips.validate(&d), Ok(()));

        let jump = GlobalSequence::new(vec![
            GlobalState::from_indices(vec![0, 0]),
            GlobalState::from_indices(vec![1, 0]),
        ]);
        assert_eq!(jump.validate(&d), Err(SequenceError::NotFinal));

        assert_eq!(
            GlobalSequence::new(vec![]).validate(&d),
            Err(SequenceError::Empty)
        );

        let stutter_step = GlobalSequence::new(vec![
            GlobalState::from_indices(vec![0, 0]),
            GlobalState::from_indices(vec![0, 0]),
            GlobalState::from_indices(vec![1, 0]),
            GlobalState::from_indices(vec![1, 1]),
        ]);
        assert_eq!(
            stutter_step.validate(&d),
            Err(SequenceError::BadStep { at: 0 })
        );

        let double_jump = GlobalSequence::new(vec![
            GlobalState::from_indices(vec![0, 0]),
            GlobalState::from_indices(vec![1, 0]),
            GlobalState::from_indices(vec![1, 1]),
        ]);
        assert_eq!(double_jump.validate(&d), Ok(()));

        let oob = GlobalSequence::new(vec![GlobalState::from_indices(vec![0, 9])]);
        assert_eq!(oob.validate(&d), Err(SequenceError::OutOfBounds { at: 0 }));
    }

    #[test]
    fn subset_steps_can_cross_a_diagonal() {
        // Classic swap: P0 has states x=1,x=0; P1 has x=0,x=1.
        // Predicate "exactly one x" can only be maintained by the joint
        // step ⟨0,0⟩→⟨1,1⟩ if singles violate it.
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("x", 1)]);
        b.internal(0, &[("x", 0)]);
        b.internal(1, &[("x", 1)]);
        let d = b.finish().unwrap();
        let succs = subset_step_successors(&d, &GlobalState::initial(2));
        assert!(succs.contains(&GlobalState::from_indices(vec![1, 1])));
        assert!(succs.contains(&GlobalState::from_indices(vec![1, 0])));
        assert!(succs.contains(&GlobalState::from_indices(vec![0, 1])));
        assert_eq!(succs.len(), 3);
    }

    #[test]
    fn subset_steps_respect_consistency() {
        let d = msg_dep();
        let succs = subset_step_successors(&d, &GlobalState::initial(2));
        // ⟨0,1⟩ is inconsistent; ⟨1,0⟩ and ⟨1,1⟩ are fine.
        assert!(succs.contains(&GlobalState::from_indices(vec![1, 0])));
        assert!(succs.contains(&GlobalState::from_indices(vec![1, 1])));
        assert!(!succs.contains(&GlobalState::from_indices(vec![0, 1])));
        assert_eq!(succs.len(), 2);
    }

    #[test]
    fn random_sequence_is_always_valid() {
        let mut b = DeposetBuilder::new(3);
        let t0 = b.send(0, "a");
        b.recv(1, t0, &[]);
        let t1 = b.send(1, "b");
        b.recv(2, t1, &[]);
        b.internal(0, &[]);
        b.internal(2, &[]);
        let d = b.finish().unwrap();
        let mut rng = Lcg(42);
        for _ in 0..50 {
            let seq = random_global_sequence(&d, &mut rng);
            assert_eq!(seq.validate(&d), Ok(()));
        }
    }

    #[test]
    fn find_satisfying_sequence_uses_subset_steps() {
        // Swap scenario: predicate "exactly one x=1" holds at ⊥ and ⊤ only
        // via the diagonal; singleton paths violate it.
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("x", 1)]);
        b.internal(0, &[("x", 0)]);
        b.internal(1, &[("x", 1)]);
        let d = b.finish().unwrap();
        let exactly_one = |dep: &Deposet, g: &GlobalState| {
            g.states()
                .filter(|&s| dep.state(s).vars.get_bool("x"))
                .count()
                == 1
        };
        let seq = find_satisfying_sequence(&d, 1000, exactly_one)
            .unwrap()
            .unwrap();
        assert_eq!(seq.validate(&d), Ok(()));
        assert!(seq.satisfies(&d, exactly_one));
        assert_eq!(seq.states().len(), 2, "must take the diagonal in one step");
    }

    #[test]
    fn find_satisfying_sequence_detects_infeasibility() {
        // Predicate that fails at ⊤: no satisfying sequence can exist.
        let mut b = DeposetBuilder::new(1);
        b.internal(0, &[("bad", 1)]);
        let d = b.finish().unwrap();
        let ok = |dep: &Deposet, g: &GlobalState| {
            !dep.state(g.state_of(ProcessId(0))).vars.get_bool("bad")
        };
        assert_eq!(find_satisfying_sequence(&d, 1000, ok).unwrap(), None);
        // And at ⊥:
        let mut b2 = DeposetBuilder::new(1);
        b2.init_vars(0, &[("bad", 1)]);
        b2.internal(0, &[("bad", 0)]);
        let d2 = b2.finish().unwrap();
        assert_eq!(find_satisfying_sequence(&d2, 1000, ok).unwrap(), None);
    }

    #[test]
    fn find_satisfying_sequence_respects_budget() {
        let mut b = DeposetBuilder::new(2);
        for _ in 0..6 {
            b.internal(0, &[]);
            b.internal(1, &[]);
        }
        let d = b.finish().unwrap();
        let r = find_satisfying_sequence(&d, 3, |_, _| true);
        assert!(r.is_err());
    }

    #[test]
    fn satisfies_checks_every_state() {
        let mut b = DeposetBuilder::new(1);
        b.init_vars(0, &[("ok", 1)]);
        b.internal(0, &[("ok", 0)]);
        b.internal(0, &[("ok", 1)]);
        let d = b.finish().unwrap();
        let mut rng = Lcg(7);
        let seq = random_global_sequence(&d, &mut rng);
        assert!(!seq.satisfies(&d, |dep, g| {
            dep.state(g.state_of(ProcessId(0))).vars.get_bool("ok")
        }));
        assert!(seq.satisfies(&d, |_, _| true));
    }

    use pctl_causality::ProcessId;
}
