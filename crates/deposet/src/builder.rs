//! Incremental construction of deposets.
//!
//! The builder guarantees the deposet constraints by construction:
//!
//! * **D1** — a receive event always produces a state with index ≥ 1, so no
//!   message is received "before" the initial state;
//! * **D2** — a send event always originates from an existing state that
//!   gains a successor, so no message is sent "after" the final state;
//! * **D3** — [`crate::event::EventKind`] is an enum: an event is
//!   internal, a send, or a receive, never a send *and* a receive.
//!
//! [`MsgToken`] is an affine handle: sending produces it, receiving consumes
//! it, so each message is received exactly once and only after being sent
//! (which also keeps `im ∪ ;` acyclic for builder-produced traces — a fact
//! `finish()` re-checks anyway when computing clocks).

use crate::event::{EventKind, Message};
use crate::model::{Deposet, DeposetError};
use crate::state::{LocalState, Variables};
use pctl_causality::{MsgId, ProcessId, StateId};
use std::fmt;

/// Handle to an in-flight message: returned by a `send`, consumed by the
/// matching `recv`.
#[derive(Debug)]
#[must_use = "an unreceived message makes `finish()` fail unless allow_in_flight() is set"]
pub struct MsgToken {
    id: MsgId,
}

impl MsgToken {
    /// The message this token stands for.
    pub fn id(&self) -> MsgId {
        self.id
    }
}

/// Errors raised by builder misuse at `finish()` time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// Some messages were sent but never received and in-flight messages
    /// were not explicitly allowed.
    InFlightMessages(Vec<MsgId>),
    /// Structural validation failed (should be unreachable for
    /// builder-constructed traces; kept for defence in depth).
    Invalid(DeposetError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InFlightMessages(ms) => {
                write!(
                    f,
                    "messages never received: {ms:?} (call allow_in_flight() if intended)"
                )
            }
            BuildError::Invalid(e) => write!(f, "invalid deposet: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Deposet`]s. See module docs.
#[derive(Debug)]
pub struct DeposetBuilder {
    states: Vec<Vec<LocalState>>,
    events: Vec<Vec<EventKind>>,
    messages: Vec<PendingMessage>,
    allow_in_flight: bool,
}

#[derive(Debug)]
struct PendingMessage {
    tag: String,
    from: StateId,
    to: Option<StateId>,
}

impl DeposetBuilder {
    /// A builder for `n` processes, each starting at an initial state `⊥ᵢ`
    /// with no variables set.
    pub fn new(n: usize) -> Self {
        DeposetBuilder {
            states: (0..n).map(|_| vec![LocalState::default()]).collect(),
            events: vec![Vec::new(); n],
            messages: Vec::new(),
            allow_in_flight: false,
        }
    }

    /// A builder whose initial states carry the given variable assignments.
    pub fn with_initial(initial: Vec<Variables>) -> Self {
        let n = initial.len();
        let mut b = DeposetBuilder::new(n);
        for (p, vars) in initial.into_iter().enumerate() {
            b.states[p][0] = LocalState::new(vars);
        }
        b
    }

    /// Permit `finish()` to succeed with sent-but-unreceived messages.
    /// In-flight messages are dropped from the deposet (the `;` relation is
    /// only defined for delivered messages), matching the paper's model.
    pub fn allow_in_flight(&mut self) -> &mut Self {
        self.allow_in_flight = true;
        self
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.states.len()
    }

    /// The id of the current (latest) state of process `p`.
    pub fn current(&self, p: impl Into<ProcessId>) -> StateId {
        let p = p.into();
        StateId::new(p, (self.states[p.index()].len() - 1) as u32)
    }

    /// Read a variable in the current state of `p` (unset = `None`).
    pub fn var(&self, p: impl Into<ProcessId>, name: &str) -> Option<i64> {
        let p = p.into();
        self.states[p.index()].last().unwrap().vars.get(name)
    }

    /// Set variables on the *initial* state of `p`. Panics if `p` already
    /// has events (the initial assignment would then be ambiguous).
    pub fn init_vars(&mut self, p: impl Into<ProcessId>, updates: &[(&str, i64)]) -> &mut Self {
        let p = p.into();
        assert!(
            self.states[p.index()].len() == 1,
            "init_vars must be called before any event on {p}"
        );
        for (k, v) in updates {
            self.states[p.index()][0].vars.set(k, *v);
        }
        self
    }

    /// Attach a label to the current state of `p` (used to name states like
    /// the paper's `a` … `f` in Figure 4).
    pub fn label(&mut self, p: impl Into<ProcessId>, label: impl Into<String>) -> &mut Self {
        let p = p.into();
        self.states[p.index()].last_mut().unwrap().label = Some(label.into());
        self
    }

    fn push_state(&mut self, p: ProcessId, ev: EventKind, updates: &[(&str, i64)]) -> StateId {
        let pi = p.index();
        let mut next = LocalState::new(self.states[pi].last().unwrap().vars.clone());
        for (k, v) in updates {
            next.vars.set(k, *v);
        }
        self.states[pi].push(next);
        self.events[pi].push(ev);
        self.current(p)
    }

    /// Append an internal event on `p`; the new state inherits the previous
    /// variables with `updates` applied. Returns the new state's id.
    pub fn internal(&mut self, p: impl Into<ProcessId>, updates: &[(&str, i64)]) -> StateId {
        self.push_state(p.into(), EventKind::Internal, updates)
    }

    /// Append a send event on `p`. The message is in flight until a matching
    /// [`recv`](Self::recv) consumes the returned token.
    pub fn send(&mut self, p: impl Into<ProcessId>, tag: &str) -> MsgToken {
        self.send_with(p, tag, &[])
    }

    /// [`send`](Self::send) that also updates variables on the post-send
    /// state.
    pub fn send_with(
        &mut self,
        p: impl Into<ProcessId>,
        tag: &str,
        updates: &[(&str, i64)],
    ) -> MsgToken {
        let p = p.into();
        let from = self.current(p);
        let id = MsgId(self.messages.len() as u32);
        self.messages.push(PendingMessage {
            tag: tag.to_owned(),
            from,
            to: None,
        });
        self.push_state(p, EventKind::Send(id), updates);
        MsgToken { id }
    }

    /// Append a receive event on `p` consuming `token`; the new state
    /// inherits previous variables with `updates` applied.
    ///
    /// # Panics
    /// Panics if the receiving process is the sender *and* the send has not
    /// happened yet — impossible by token flow, so no check is needed; and
    /// if the token was forged (out of range).
    pub fn recv(
        &mut self,
        p: impl Into<ProcessId>,
        token: MsgToken,
        updates: &[(&str, i64)],
    ) -> StateId {
        let p = p.into();
        let to = self.push_state(p, EventKind::Recv(token.id), updates);
        let pm = &mut self.messages[token.id.index()];
        debug_assert!(
            pm.to.is_none(),
            "token is affine; double receive impossible"
        );
        pm.to = Some(to);
        to
    }

    /// Finalize: validate, compute vector clocks, and return the deposet.
    pub fn finish(self) -> Result<Deposet, BuildError> {
        let in_flight: Vec<MsgId> = self
            .messages
            .iter()
            .enumerate()
            .filter(|(_, m)| m.to.is_none())
            .map(|(i, _)| MsgId(i as u32))
            .collect();
        let (mut states, mut events) = (self.states, self.events);
        let mut messages = Vec::with_capacity(self.messages.len());
        if in_flight.is_empty() {
            for (i, m) in self.messages.into_iter().enumerate() {
                messages.push(Message {
                    id: MsgId(i as u32),
                    tag: m.tag,
                    from: m.from,
                    to: m.to.expect("checked"),
                });
            }
        } else if self.allow_in_flight {
            // Drop in-flight messages: rewrite their send events to Internal
            // and renumber the rest densely.
            let mut remap = vec![u32::MAX; self.messages.len()];
            let mut next = 0u32;
            for (i, m) in self.messages.iter().enumerate() {
                if m.to.is_some() {
                    remap[i] = next;
                    next += 1;
                }
            }
            for ev in events.iter_mut() {
                for e in ev.iter_mut() {
                    match *e {
                        EventKind::Send(m) if remap[m.index()] == u32::MAX => {
                            *e = EventKind::Internal;
                        }
                        EventKind::Send(m) => *e = EventKind::Send(MsgId(remap[m.index()])),
                        EventKind::Recv(m) => *e = EventKind::Recv(MsgId(remap[m.index()])),
                        EventKind::Internal => {}
                    }
                }
            }
            for (i, m) in self.messages.into_iter().enumerate() {
                if let Some(to) = m.to {
                    messages.push(Message {
                        id: MsgId(remap[i]),
                        tag: m.tag,
                        from: m.from,
                        to,
                    });
                }
            }
        } else {
            return Err(BuildError::InFlightMessages(in_flight));
        }
        // `states` is moved as-is.
        let states_taken = std::mem::take(&mut states);
        let events_taken = std::mem::take(&mut events);
        Deposet::from_parts(states_taken, events_taken, messages).map_err(BuildError::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_yields_single_state_processes() {
        let d = DeposetBuilder::new(3).finish().unwrap();
        assert_eq!(d.process_count(), 3);
        for p in d.processes() {
            assert_eq!(d.len_of(p), 1);
            assert_eq!(d.bottom(p), d.top(p));
        }
    }

    #[test]
    fn internal_event_inherits_and_updates_vars() {
        let mut b = DeposetBuilder::new(1);
        b.init_vars(0, &[("x", 1), ("y", 2)]);
        let s = b.internal(0, &[("y", 3)]);
        let d = b.finish().unwrap();
        assert_eq!(d.state(s).vars.get("x"), Some(1), "inherited");
        assert_eq!(d.state(s).vars.get("y"), Some(3), "updated");
        let bottom = d.bottom(ProcessId(0));
        assert_eq!(
            d.state(bottom).vars.get("y"),
            Some(2),
            "old state untouched"
        );
    }

    #[test]
    #[should_panic(expected = "init_vars must be called before any event")]
    fn init_vars_after_event_panics() {
        let mut b = DeposetBuilder::new(1);
        b.internal(0, &[]);
        b.init_vars(0, &[("x", 1)]);
    }

    #[test]
    fn unreceived_message_is_an_error_by_default() {
        let mut b = DeposetBuilder::new(2);
        let _tok = b.send(0, "lost");
        let err = b.finish().unwrap_err();
        assert_eq!(err, BuildError::InFlightMessages(vec![MsgId(0)]));
    }

    #[test]
    fn allow_in_flight_drops_lost_messages() {
        let mut b = DeposetBuilder::new(2);
        let _lost = b.send(0, "lost");
        let kept = b.send(0, "kept");
        b.recv(1, kept, &[]);
        b.allow_in_flight();
        let d = b.finish().unwrap();
        assert_eq!(d.messages().len(), 1);
        assert_eq!(d.messages()[0].tag, "kept");
        // The lost send became an internal event; the kept one is renumbered
        // to MsgId(0) and endpoints still validate (finish() succeeded).
        assert_eq!(d.event(ProcessId(0), 0), EventKind::Internal);
        assert_eq!(d.event(ProcessId(0), 1), EventKind::Send(MsgId(0)));
    }

    #[test]
    fn self_message_is_valid_and_causal() {
        let mut b = DeposetBuilder::new(1);
        let tok = b.send(0, "self");
        b.internal(0, &[]);
        let to = b.recv(0, tok, &[]);
        let d = b.finish().unwrap();
        assert!(d.remotely_precedes(StateId::new(0usize, 0), to));
        assert!(d.precedes(StateId::new(0usize, 0), to));
    }

    #[test]
    fn labels_attach_to_current_state() {
        let mut b = DeposetBuilder::new(1);
        b.internal(0, &[]);
        b.label(0, "e");
        let d = b.finish().unwrap();
        assert_eq!(d.state(StateId::new(0usize, 1)).label.as_deref(), Some("e"));
        assert_eq!(d.state(StateId::new(0usize, 0)).label, None);
    }

    #[test]
    fn current_and_var_track_latest_state() {
        let mut b = DeposetBuilder::new(2);
        assert_eq!(b.current(0), StateId::new(0usize, 0));
        b.internal(0, &[("x", 9)]);
        assert_eq!(b.current(0), StateId::new(0usize, 1));
        assert_eq!(b.var(0, "x"), Some(9));
        assert_eq!(b.var(1, "x"), None);
    }

    #[test]
    fn builder_chain_matches_figure_style_computation() {
        // P0: ⊥ —send→ s1 —internal→ s2
        // P1: ⊥ —recv→ s1
        let mut b = DeposetBuilder::new(2);
        let t = b.send(0, "m");
        b.internal(0, &[]);
        b.recv(1, t, &[]);
        let d = b.finish().unwrap();
        assert_eq!(d.len_of(ProcessId(0)), 3);
        assert_eq!(d.len_of(ProcessId(1)), 2);
        assert!(d.precedes(StateId::new(0usize, 0), StateId::new(1usize, 1)));
        assert!(d.concurrent(StateId::new(0usize, 1), StateId::new(1usize, 1)));
    }
}
