//! False-intervals of local predicates.
//!
//! The paper's Section 5 divides each process's state sequence into maximal
//! runs that are *true* or *false* with respect to its local predicate
//! `lᵢ`; the control algorithm operates exclusively on the *false intervals*
//! (`I.lo` / `I.hi` are the first and last states of a maximal false run).
//! Extraction happens once per (deposet, predicate) pair so that predicate
//! evaluation cost is paid once. The scanning itself lives in the
//! computation [`crate::store`] (`truth_of_process` + `intervals_from_truth`);
//! extraction composes the two per process, fanned out with
//! [`crate::par::ordered_map`].

use crate::model::Deposet;
use crate::par::ordered_map;
use crate::predicate::{DisjunctivePredicate, LocalPredicate};
use pctl_causality::{ProcessId, StateId};
use serde::{Deserialize, Serialize};

/// A maximal run of consecutive states on one process where the local
/// predicate is false. `lo ≤ hi`, both inclusive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Owning process.
    pub process: ProcessId,
    /// Index of the first false state.
    pub lo: u32,
    /// Index of the last false state.
    pub hi: u32,
}

impl Interval {
    /// `I.lo` as a state id.
    pub fn lo_state(&self) -> StateId {
        StateId {
            process: self.process,
            index: self.lo,
        }
    }

    /// `I.hi` as a state id.
    pub fn hi_state(&self) -> StateId {
        StateId {
            process: self.process,
            index: self.hi,
        }
    }

    /// Number of states in the interval. Widened before the `+ 1` so a
    /// full-range interval (`lo = 0`, `hi = u32::MAX`) reports its true
    /// length instead of wrapping to 0.
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize + 1
    }

    /// Intervals are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether state index `k` lies inside the interval.
    pub fn contains_index(&self, k: u32) -> bool {
        self.lo <= k && k <= self.hi
    }
}

/// Per-process sorted false-interval lists for a disjunctive predicate.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FalseIntervals {
    per_proc: Vec<Vec<Interval>>,
}

impl FalseIntervals {
    /// Extract the false intervals of each `lᵢ` from `dep`.
    ///
    /// # Panics
    /// Panics if the predicate arity differs from the process count.
    pub fn extract(dep: &Deposet, pred: &DisjunctivePredicate) -> Self {
        assert_eq!(
            pred.arity(),
            dep.process_count(),
            "disjunctive predicate arity must equal process count"
        );
        let procs: Vec<ProcessId> = dep.processes().collect();
        let per_proc = ordered_map(&procs, |_, &p| extract_one(dep, p, pred.local(p)));
        FalseIntervals { per_proc }
    }

    /// Extract from explicit per-process local predicates.
    pub fn extract_each(dep: &Deposet, locals: &[LocalPredicate]) -> Self {
        assert_eq!(locals.len(), dep.process_count());
        let procs: Vec<ProcessId> = dep.processes().collect();
        let per_proc = ordered_map(&procs, |i, &p| extract_one(dep, p, &locals[i]));
        FalseIntervals { per_proc }
    }

    /// Build from precomputed interval lists (must be sorted and disjoint
    /// per process — callers from tests/generators).
    pub fn from_raw(per_proc: Vec<Vec<Interval>>) -> Self {
        for (p, iv) in per_proc.iter().enumerate() {
            for w in iv.windows(2) {
                // checked: an interval ending at u32::MAX leaves no room
                // for a successor, and `hi + 1` must not wrap into passing.
                assert!(
                    w[0].hi.checked_add(1).is_some_and(|b| b < w[1].lo),
                    "intervals on P{p} must be disjoint, non-adjacent and sorted"
                );
            }
            for i in iv {
                assert!(i.lo <= i.hi && i.process == ProcessId(p as u32));
            }
        }
        FalseIntervals { per_proc }
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.per_proc.len()
    }

    /// The false intervals of process `p`, in increasing order.
    pub fn of(&self, p: ProcessId) -> &[Interval] {
        &self.per_proc[p.index()]
    }

    /// Maximum number of false intervals on any process (the paper's `p`).
    pub fn max_per_process(&self) -> usize {
        self.per_proc.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of false intervals.
    pub fn total(&self) -> usize {
        self.per_proc.iter().map(Vec::len).sum()
    }

    /// The first false interval of `p` whose `lo` is at or after state
    /// index `from` — the algorithm's `N(i)` lookup is built on this.
    pub fn next_at_or_after(&self, p: ProcessId, from: u32) -> Option<&Interval> {
        let iv = &self.per_proc[p.index()];
        let pos = iv.partition_point(|i| i.lo < from);
        iv.get(pos)
    }

    /// An empty interval set over `n` processes (all-true columns so far) —
    /// the starting point for incremental growth.
    pub(crate) fn empty(n: usize) -> Self {
        FalseIntervals {
            per_proc: vec![Vec::new(); n],
        }
    }

    /// Record the truth value of the newly appended state `k` of process
    /// `p`, growing the interval list in place: a false state either extends
    /// the trailing false run (when it ends at `k - 1`) or opens a new one.
    ///
    /// Appending index `k` to a column of length `k` keeps this exactly
    /// equivalent to re-running [`crate::store::intervals_from_truth`] on
    /// the grown column — the invariant the incremental session store's
    /// prefix-equivalence proptest pins down.
    pub(crate) fn extend_for_append(&mut self, p: ProcessId, k: u32, truth: bool) {
        if truth {
            return;
        }
        let iv = &mut self.per_proc[p.index()];
        match iv.last_mut() {
            Some(last) if last.hi + 1 == k => last.hi = k,
            _ => iv.push(Interval {
                process: p,
                lo: k,
                hi: k,
            }),
        }
    }

    /// The false interval of `p` containing state index `k`, if any.
    pub fn containing(&self, p: ProcessId, k: u32) -> Option<&Interval> {
        let iv = &self.per_proc[p.index()];
        let pos = iv.partition_point(|i| i.hi < k);
        iv.get(pos).filter(|i| i.contains_index(k))
    }
}

fn extract_one(dep: &Deposet, p: ProcessId, local: &LocalPredicate) -> Vec<Interval> {
    let truth = crate::store::truth_of_process(dep, p, local);
    crate::store::intervals_from_truth(p, &truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DeposetBuilder;
    use crate::predicate::DisjunctivePredicate;

    /// One process whose `ok` variable follows the given pattern.
    fn pattern_dep(pattern: &[i64]) -> Deposet {
        let mut b = DeposetBuilder::new(1);
        b.init_vars(0, &[("ok", pattern[0])]);
        for &v in &pattern[1..] {
            b.internal(0, &[("ok", v)]);
        }
        b.finish().unwrap()
    }

    fn intervals_for(pattern: &[i64]) -> Vec<(u32, u32)> {
        let d = pattern_dep(pattern);
        let f = FalseIntervals::extract(&d, &DisjunctivePredicate::at_least_one(1, "ok"));
        f.of(ProcessId(0)).iter().map(|i| (i.lo, i.hi)).collect()
    }

    #[test]
    fn extraction_finds_maximal_runs() {
        assert_eq!(intervals_for(&[1, 0, 0, 1, 0, 1]), vec![(1, 2), (4, 4)]);
        assert_eq!(
            intervals_for(&[0, 0, 0]),
            vec![(0, 2)],
            "all-false is one run"
        );
        assert_eq!(intervals_for(&[1, 1, 1]), vec![], "all-true has no runs");
        assert_eq!(intervals_for(&[0, 1, 0]), vec![(0, 0), (2, 2)]);
    }

    #[test]
    fn interval_accessors() {
        let i = Interval {
            process: ProcessId(2),
            lo: 3,
            hi: 5,
        };
        assert_eq!(i.lo_state(), StateId::new(2usize, 3));
        assert_eq!(i.hi_state(), StateId::new(2usize, 5));
        assert_eq!(i.len(), 3);
        assert!(i.contains_index(4));
        assert!(!i.contains_index(6));
        assert!(!i.is_empty());
    }

    #[test]
    fn next_at_or_after_and_containing() {
        let d = pattern_dep(&[1, 0, 0, 1, 0, 1]);
        let f = FalseIntervals::extract(&d, &DisjunctivePredicate::at_least_one(1, "ok"));
        let p = ProcessId(0);
        assert_eq!(f.next_at_or_after(p, 0).map(|i| i.lo), Some(1));
        assert_eq!(f.next_at_or_after(p, 1).map(|i| i.lo), Some(1));
        assert_eq!(f.next_at_or_after(p, 2).map(|i| i.lo), Some(4));
        assert_eq!(f.next_at_or_after(p, 5), None);
        assert_eq!(f.containing(p, 2).map(|i| i.lo), Some(1));
        assert_eq!(f.containing(p, 3), None);
        assert_eq!(f.containing(p, 4).map(|i| (i.lo, i.hi)), Some((4, 4)));
    }

    #[test]
    fn stats() {
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("ok", 1)]);
        b.init_vars(1, &[("ok", 0)]);
        b.internal(0, &[("ok", 0)]);
        b.internal(0, &[("ok", 1)]);
        b.internal(1, &[("ok", 1)]);
        let d = b.finish().unwrap();
        let f = FalseIntervals::extract(&d, &DisjunctivePredicate::at_least_one(2, "ok"));
        assert_eq!(f.total(), 2);
        assert_eq!(f.max_per_process(), 1);
        assert_eq!(f.process_count(), 2);
    }

    #[test]
    fn len_does_not_wrap_on_full_range_intervals() {
        // lo = 0, hi = u32::MAX used to compute (hi - lo + 1) in u32 and
        // wrap to 0 states; the widened arithmetic reports 2^32.
        let i = Interval {
            process: ProcessId(0),
            lo: 0,
            hi: u32::MAX,
        };
        assert_eq!(i.len(), u32::MAX as usize + 1);
        assert!(!i.is_empty());
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn from_raw_rejects_successor_after_hi_u32_max() {
        // `hi + 1` used to wrap to 0 here and incorrectly pass the
        // disjointness check.
        FalseIntervals::from_raw(vec![vec![
            Interval {
                process: ProcessId(0),
                lo: 0,
                hi: u32::MAX,
            },
            Interval {
                process: ProcessId(0),
                lo: 5,
                hi: 6,
            },
        ]]);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn from_raw_rejects_adjacent_intervals() {
        FalseIntervals::from_raw(vec![vec![
            Interval {
                process: ProcessId(0),
                lo: 0,
                hi: 1,
            },
            Interval {
                process: ProcessId(0),
                lo: 2,
                hi: 3,
            },
        ]]);
    }
}
