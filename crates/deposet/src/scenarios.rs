//! Canonical example computations, including the paper's Figure 4.
//!
//! [`replicated_servers`] reconstructs Section 7's running example: a
//! replicated server system with three servers whose availability windows
//! make the safety property *"at least one server is available"* violable
//! at exactly two consistent global states `G` and `H`, and with two
//! labeled states `e` (server 2 recovering) and `f` (server 0 failing)
//! whose concurrency is the example's second bug. The debugging narrative
//! (example binary `active_debugging` and experiment E6) runs the paper's
//! whole C1 → C2 → C3 → C4 cycle on this computation.

use crate::builder::DeposetBuilder;
use crate::global::GlobalState;
use crate::model::Deposet;
use crate::predicate::{DisjunctivePredicate, LocalPredicate};
use pctl_causality::StateId;

/// The Figure 4 scenario: computation plus the two safety predicates and
/// the landmarks the narrative talks about.
pub struct Figure4 {
    /// The traced computation `C1`.
    pub deposet: Deposet,
    /// Safety property for bug 1: at least one server available.
    pub availability: DisjunctivePredicate,
    /// Safety property for bug 2: `e` must happen before `f`, encoded
    /// disjunctively as `after_e ∨ before_f` (the paper's example (3)).
    pub order_e_before_f: DisjunctivePredicate,
    /// The two consistent global states where bug 1 is possible.
    pub g: GlobalState,
    /// See [`Figure4::g`].
    pub h: GlobalState,
    /// State `e`: server 2 becomes available again.
    pub e: StateId,
    /// State `f`: server 0 becomes unavailable.
    pub f: StateId,
}

/// Build the Figure 4 computation `C1`.
///
/// Per-process layout (`avail` = server availability):
///
/// ```text
/// P0:  s0 avail ── s1 ✖(f) ── s2 ✖ ── s3 avail
/// P1:  s0 avail ── s1 ✖    ── s2 avail ── s3 (recv status)
/// P2:  s0 avail ── s1 ✖    ── s2 avail(e) ── s3 (send status→P1 … state)
/// ```
///
/// No causality crosses the unavailability windows, so both
/// `G = ⟨1,1,1⟩` and `H = ⟨2,1,1⟩` are consistent all-unavailable states,
/// and `e ∥ f`.
pub fn replicated_servers() -> Figure4 {
    let mut b = DeposetBuilder::new(3);
    // P0: fails at f, stays down one extra state, recovers.
    b.init_vars(0, &[("avail", 1), ("before_f", 1)]);
    b.internal(0, &[("avail", 0), ("before_f", 0)]);
    b.label(0, "f");
    b.internal(0, &[]);
    b.internal(0, &[("avail", 1)]);
    // P1: one-state outage.
    b.init_vars(1, &[("avail", 1)]);
    b.internal(1, &[("avail", 0)]);
    b.internal(1, &[("avail", 1)]);
    // P2: one-state outage, then recovery labeled e.
    b.init_vars(2, &[("avail", 1), ("after_e", 0)]);
    b.internal(2, &[("avail", 0)]);
    b.internal(2, &[("avail", 1), ("after_e", 1)]);
    b.label(2, "e");
    // A status message P2 → P1 after both have recovered (application
    // traffic; it does not relate the outage windows).
    let t = b.send(2, "status");
    b.recv(1, t, &[]);
    let deposet = b.finish().expect("figure 4 computation is valid");

    let availability = DisjunctivePredicate::at_least_one(3, "avail");
    let order_e_before_f = DisjunctivePredicate::new(vec![
        LocalPredicate::var("before_f"),
        LocalPredicate::False,
        LocalPredicate::var("after_e"),
    ]);
    Figure4 {
        g: GlobalState::from_indices(vec![1, 1, 1]),
        h: GlobalState::from_indices(vec![2, 1, 1]),
        e: StateId::new(2usize, 2),
        f: StateId::new(0usize, 1),
        deposet,
        availability,
        order_e_before_f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g_and_h_are_the_only_all_unavailable_cuts() {
        let fig = replicated_servers();
        let dep = &fig.deposet;
        assert!(fig.g.is_consistent(dep));
        assert!(fig.h.is_consistent(dep));
        assert!(!fig.availability.eval(dep, &fig.g));
        assert!(!fig.availability.eval(dep, &fig.h));
        let violations: Vec<GlobalState> =
            crate::lattice::find_all_consistent(dep, 100_000, |d, g| !fig.availability.eval(d, g))
                .unwrap();
        assert_eq!(violations, vec![fig.g.clone(), fig.h.clone()]);
    }

    #[test]
    fn e_and_f_are_concurrent_in_c1() {
        let fig = replicated_servers();
        assert!(fig.deposet.concurrent(fig.e, fig.f));
        assert_eq!(fig.deposet.state(fig.e).label.as_deref(), Some("e"));
        assert_eq!(fig.deposet.state(fig.f).label.as_deref(), Some("f"));
    }

    #[test]
    fn order_predicate_is_violated_exactly_when_f_before_e() {
        let fig = replicated_servers();
        let dep = &fig.deposet;
        for g in crate::lattice::consistent_global_states(dep, 100_000).unwrap() {
            let f_passed = g.index_of(fig.f.process) >= fig.f.index;
            let e_passed = g.index_of(fig.e.process) >= fig.e.index;
            assert_eq!(
                fig.order_e_before_f.eval(dep, &g),
                !f_passed || e_passed,
                "cut {g:?}"
            );
        }
    }

    #[test]
    fn both_predicates_are_feasible_for_c1() {
        use crate::sequences::find_satisfying_sequence;
        let fig = replicated_servers();
        let dep = &fig.deposet;
        let avail = fig.availability.clone();
        assert!(
            find_satisfying_sequence(dep, 1_000_000, move |d, g| avail.eval(d, g))
                .unwrap()
                .is_some()
        );
        let order = fig.order_e_before_f.clone();
        assert!(
            find_satisfying_sequence(dep, 1_000_000, move |d, g| order.eval(d, g))
                .unwrap()
                .is_some()
        );
    }
}
