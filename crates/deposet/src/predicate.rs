//! Local and global predicates.
//!
//! Following the paper (Section 3): a *local predicate* for process `P_i` is
//! a boolean function of `P_i`'s variables; a *global predicate* `B` is a
//! boolean combination (`¬ ∨ ∧`) of local predicates. `B` is *disjunctive*
//! when it can be written `l₁ ∨ l₂ ∨ … ∨ lₙ` with `lᵢ` local to `Pᵢ`.
//!
//! Predicates are plain data (serde-able), so a debugging session's safety
//! properties can be stored alongside the trace and replayed later.

use crate::model::Deposet;
use crate::state::LocalState;
use pctl_causality::ProcessId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A boolean function of a single process's variables.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalPredicate {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Boolean variable is true (nonzero). Unset variables read as false.
    Var(String),
    /// Comparison of a variable against a constant. Unset variables read as 0.
    Cmp {
        /// Variable name.
        var: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand constant.
        value: i64,
    },
    /// Negation.
    Not(Box<LocalPredicate>),
    /// Conjunction (empty = true).
    And(Vec<LocalPredicate>),
    /// Disjunction (empty = false).
    Or(Vec<LocalPredicate>),
}

/// Comparison operators for [`LocalPredicate::Cmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl LocalPredicate {
    /// Shorthand: boolean variable is true.
    pub fn var(name: impl Into<String>) -> Self {
        LocalPredicate::Var(name.into())
    }

    /// Shorthand: boolean variable is false.
    pub fn not_var(name: impl Into<String>) -> Self {
        LocalPredicate::Not(Box::new(LocalPredicate::Var(name.into())))
    }

    /// Shorthand: `var op value`.
    pub fn cmp(var: impl Into<String>, op: CmpOp, value: i64) -> Self {
        LocalPredicate::Cmp {
            var: var.into(),
            op,
            value,
        }
    }

    /// Evaluate against a local state.
    pub fn eval(&self, state: &LocalState) -> bool {
        match self {
            LocalPredicate::True => true,
            LocalPredicate::False => false,
            LocalPredicate::Var(name) => state.vars.get_bool(name),
            LocalPredicate::Cmp { var, op, value } => {
                op.apply(state.vars.get(var).unwrap_or(0), *value)
            }
            LocalPredicate::Not(p) => !p.eval(state),
            LocalPredicate::And(ps) => ps.iter().all(|p| p.eval(state)),
            LocalPredicate::Or(ps) => ps.iter().any(|p| p.eval(state)),
        }
    }

    /// Negate, flattening double negations.
    pub fn negated(self) -> Self {
        match self {
            LocalPredicate::True => LocalPredicate::False,
            LocalPredicate::False => LocalPredicate::True,
            LocalPredicate::Not(inner) => *inner,
            other => LocalPredicate::Not(Box::new(other)),
        }
    }
}

impl fmt::Display for LocalPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocalPredicate::True => write!(f, "true"),
            LocalPredicate::False => write!(f, "false"),
            LocalPredicate::Var(v) => write!(f, "{v}"),
            LocalPredicate::Cmp { var, op, value } => {
                let op = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "{var} {op} {value}")
            }
            LocalPredicate::Not(p) => write!(f, "¬({p})"),
            LocalPredicate::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            LocalPredicate::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A global predicate: boolean combination of process-bound local
/// predicates, evaluated on global states.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GlobalPredicate {
    /// Constant.
    Const(bool),
    /// `pred` evaluated on the local state of `process` within the global
    /// state.
    Local {
        /// Which process's state the predicate reads.
        process: ProcessId,
        /// The local predicate.
        pred: LocalPredicate,
    },
    /// Negation.
    Not(Box<GlobalPredicate>),
    /// Conjunction (empty = true).
    And(Vec<GlobalPredicate>),
    /// Disjunction (empty = false).
    Or(Vec<GlobalPredicate>),
}

impl GlobalPredicate {
    /// Bind a local predicate to a process.
    pub fn local(process: impl Into<ProcessId>, pred: LocalPredicate) -> Self {
        GlobalPredicate::Local {
            process: process.into(),
            pred,
        }
    }

    /// Evaluate on the global state `g` (a vector of per-process state
    /// indices) of `dep`.
    ///
    /// # Panics
    /// Panics if `g` has the wrong arity or refers to out-of-range states.
    pub fn eval(&self, dep: &Deposet, g: &crate::global::GlobalState) -> bool {
        match self {
            GlobalPredicate::Const(b) => *b,
            GlobalPredicate::Local { process, pred } => pred.eval(dep.state(g.state_of(*process))),
            GlobalPredicate::Not(p) => !p.eval(dep, g),
            GlobalPredicate::And(ps) => ps.iter().all(|p| p.eval(dep, g)),
            GlobalPredicate::Or(ps) => ps.iter().any(|p| p.eval(dep, g)),
        }
    }
}

/// A disjunctive predicate `B = l₁ ∨ … ∨ lₙ`, one local predicate per
/// process. This is the class for which the paper gives efficient control
/// algorithms (Sections 5 and 6).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisjunctivePredicate {
    locals: Vec<LocalPredicate>,
}

impl DisjunctivePredicate {
    /// Build from one local predicate per process (index = process id).
    pub fn new(locals: Vec<LocalPredicate>) -> Self {
        DisjunctivePredicate { locals }
    }

    /// Two-process mutual exclusion `¬cs₀ ∨ ¬cs₁` generalised to n
    /// processes: *at least one process outside its critical section*
    /// ((n−1)-mutual exclusion; the paper's examples (1) and (4)).
    pub fn at_least_one_not(n: usize, var: &str) -> Self {
        DisjunctivePredicate {
            locals: (0..n).map(|_| LocalPredicate::not_var(var)).collect(),
        }
    }

    /// *At least one process has `var` true* (the paper's example (2):
    /// at least one server is available).
    pub fn at_least_one(n: usize, var: &str) -> Self {
        DisjunctivePredicate {
            locals: (0..n).map(|_| LocalPredicate::var(var)).collect(),
        }
    }

    /// Number of processes the predicate covers.
    pub fn arity(&self) -> usize {
        self.locals.len()
    }

    /// The local predicate of process `p`.
    pub fn local(&self, p: ProcessId) -> &LocalPredicate {
        &self.locals[p.index()]
    }

    /// All local predicates, indexed by process.
    pub fn locals(&self) -> &[LocalPredicate] {
        &self.locals
    }

    /// Evaluate on a global state: true iff some local disjunct holds.
    pub fn eval(&self, dep: &Deposet, g: &crate::global::GlobalState) -> bool {
        (0..self.locals.len()).any(|i| {
            let p = ProcessId(i as u32);
            self.locals[i].eval(dep.state(g.state_of(p)))
        })
    }

    /// Lower into the general [`GlobalPredicate`] form.
    pub fn to_global(&self) -> GlobalPredicate {
        GlobalPredicate::Or(
            self.locals
                .iter()
                .enumerate()
                .map(|(i, l)| GlobalPredicate::local(i, l.clone()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Variables;

    fn st(pairs: &[(&str, i64)]) -> LocalState {
        LocalState::new(Variables::from_pairs(pairs.iter().copied()))
    }

    #[test]
    fn var_predicates() {
        let p = LocalPredicate::var("cs");
        assert!(p.eval(&st(&[("cs", 1)])));
        assert!(!p.eval(&st(&[("cs", 0)])));
        assert!(!p.eval(&st(&[])), "unset variable reads false");
        assert!(LocalPredicate::not_var("cs").eval(&st(&[])));
    }

    #[test]
    fn cmp_predicates() {
        let p = LocalPredicate::cmp("x", CmpOp::Ge, 5);
        assert!(p.eval(&st(&[("x", 5)])));
        assert!(!p.eval(&st(&[("x", 4)])));
        assert!(!p.eval(&st(&[])), "unset variable reads 0");
        assert!(LocalPredicate::cmp("x", CmpOp::Lt, 1).eval(&st(&[])));
        assert!(LocalPredicate::cmp("x", CmpOp::Ne, 3).eval(&st(&[("x", 2)])));
        assert!(LocalPredicate::cmp("x", CmpOp::Eq, 2).eval(&st(&[("x", 2)])));
        assert!(LocalPredicate::cmp("x", CmpOp::Le, 2).eval(&st(&[("x", 2)])));
        assert!(LocalPredicate::cmp("x", CmpOp::Gt, 1).eval(&st(&[("x", 2)])));
    }

    #[test]
    fn boolean_connectives() {
        let p = LocalPredicate::And(vec![
            LocalPredicate::var("a"),
            LocalPredicate::Or(vec![LocalPredicate::var("b"), LocalPredicate::var("c")]),
        ]);
        assert!(p.eval(&st(&[("a", 1), ("c", 1)])));
        assert!(!p.eval(&st(&[("a", 1)])));
        assert!(
            LocalPredicate::And(vec![]).eval(&st(&[])),
            "empty ∧ is true"
        );
        assert!(
            !LocalPredicate::Or(vec![]).eval(&st(&[])),
            "empty ∨ is false"
        );
    }

    #[test]
    fn negated_flattens_double_negation() {
        let p = LocalPredicate::var("x").negated().negated();
        assert_eq!(p, LocalPredicate::var("x"));
        assert_eq!(LocalPredicate::True.negated(), LocalPredicate::False);
        assert_eq!(LocalPredicate::False.negated(), LocalPredicate::True);
    }

    #[test]
    fn display_is_readable() {
        let p = LocalPredicate::Or(vec![
            LocalPredicate::not_var("cs"),
            LocalPredicate::cmp("x", CmpOp::Lt, 3),
        ]);
        assert_eq!(format!("{p}"), "(¬(cs) ∨ x < 3)");
    }

    #[test]
    fn disjunctive_constructors() {
        let d = DisjunctivePredicate::at_least_one(3, "avail");
        assert_eq!(d.arity(), 3);
        assert_eq!(d.local(ProcessId(1)), &LocalPredicate::var("avail"));
        let m = DisjunctivePredicate::at_least_one_not(2, "cs");
        assert_eq!(m.local(ProcessId(0)), &LocalPredicate::not_var("cs"));
    }

    #[test]
    fn predicate_serde_roundtrip() {
        let d = DisjunctivePredicate::at_least_one(2, "ok").to_global();
        let json = serde_json::to_string(&d).unwrap();
        let back: GlobalPredicate = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
